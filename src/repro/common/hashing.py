"""Seed-independent hashing for placement decisions.

Python's builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so
anything that routes work by hash — affinity scheduling in the cluster
simulation, hash-partitioned exchanges in staged execution — would place
differently on every run and make experiments unreproducible.  Everything
that partitions by value goes through :func:`stable_hash` instead, which
is CRC32-based and therefore identical across processes and platforms.
"""

from __future__ import annotations

import zlib
from typing import Any


def stable_hash(value: Any) -> int:
    """Deterministic 32-bit hash of a Python value.

    Strings and bytes hash their contents directly; everything else
    (numbers, None, tuples of key values) hashes its ``repr``, which is
    stable for the scalar types that can appear in partition keys.
    """
    if isinstance(value, bytes):
        data = value
    elif isinstance(value, str):
        data = value.encode("utf-8", "surrogatepass")
    else:
        data = repr(value).encode("utf-8", "surrogatepass")
    return zlib.crc32(data)
