"""A consistent-hash ring with virtual nodes for affinity placement.

The affinity scheduler used to place a data key with ``stable_hash(key) %
len(workers)`` over the *sorted* worker list.  Modulo placement has a
fatal property for a distributed cache: removing (or adding) one worker
changes ``len(workers)``, which remaps almost every key to a different
worker — a single crash empties the whole fleet's warm caches, not just
the crashed worker's share.

A consistent-hash ring fixes this.  Every node owns ``vnodes`` points on
a 32-bit ring (virtual nodes smooth the load across few physical nodes);
a key belongs to the first node point clockwise of ``stable_hash(key)``.
Removing a node deletes only *its* points, so only the keys that mapped
to those points move — in expectation ``1/N`` of the keyspace, and the
remap test bounds it at ``~2/N`` — while every other key keeps its home.

All hashing goes through :func:`repro.common.hashing.stable_hash`
(CRC32), so placement is identical across processes and platforms.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional

from repro.common.hashing import stable_hash

DEFAULT_VNODES = 64


class ConsistentHashRing:
    """Hash ring mapping string keys to member node names.

    ``vnodes`` points per node; lookup is O(log(nodes * vnodes)) via
    bisect over the sorted point list.  Hash collisions between two
    nodes' points resolve deterministically to the lexicographically
    smallest colliding node name, so two rings built from the same
    membership are always identical regardless of add/remove order.
    """

    def __init__(
        self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._points_by_node: dict[str, list[int]] = {}
        # point hash -> sorted names of member nodes hashing there (ties
        # are ~impossible with CRC32 but must not corrupt the ring).
        self._owners: dict[int, list[str]] = {}
        self._points: list[int] = []
        for node in nodes:
            self.add(node)

    # -- membership -----------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self._points_by_node:
            return
        points = sorted({stable_hash(f"{node}#vnode{i}") for i in range(self.vnodes)})
        self._points_by_node[node] = points
        for point in points:
            owners = self._owners.get(point)
            if owners is None:
                self._owners[point] = [node]
                bisect.insort(self._points, point)
            elif node not in owners:
                bisect.insort(owners, node)

    def remove(self, node: str) -> None:
        points = self._points_by_node.pop(node, None)
        if points is None:
            return
        for point in points:
            owners = self._owners[point]
            owners.remove(node)
            if not owners:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                del self._points[index]

    def __contains__(self, node: str) -> bool:
        return node in self._points_by_node

    def __len__(self) -> int:
        return len(self._points_by_node)

    def nodes(self) -> set[str]:
        return set(self._points_by_node)

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: str) -> Optional[str]:
        """The node owning ``key``, or None when the ring is empty."""
        if not self._points:
            return None
        point = stable_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0  # wrap around
        return self._owners[self._points[index]][0]
