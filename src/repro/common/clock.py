"""Deterministic simulated time.

The paper's experiments run on 100-200 node clusters against remote storage
(HDFS, S3) and remote query systems (Druid, Pinot).  A single-process Python
reproduction cannot measure those distributed costs with wall-clock time, so
every substrate in this repository charges its modeled latencies to a
``SimulatedClock``.  The clock is deterministic: the same query on the same
data always advances it by the same amount, which makes benchmark output
reproducible across machines.

Operators that do *real* algorithmic work (decoding values, probing hash
tables) are additionally measured with wall-clock time by the benchmark
harness; the simulated clock only covers costs that exist because the real
deployment is distributed.
"""

from __future__ import annotations

import time


class SimulatedClock:
    """A monotonically advancing virtual clock measured in milliseconds.

    Components call :meth:`advance` to charge latency and :meth:`now_ms` to
    read virtual time.  ``parallel_advance`` models work fanned out across
    ``ways`` parallel units: the clock advances by the slowest lane.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now_ms(self) -> float:
        """Return the current virtual time in milliseconds."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def parallel_advance(self, lane_costs_ms: list[float]) -> float:
        """Advance by the maximum of ``lane_costs_ms`` (parallel execution).

        An empty list of lanes costs nothing.
        """
        if lane_costs_ms:
            self.advance(max(lane_costs_ms))
        return self._now_ms

    def reset(self, start_ms: float = 0.0) -> None:
        """Rewind the clock; used between benchmark iterations."""
        self._now_ms = float(start_ms)

    class _Span:
        """Context manager that reports elapsed virtual time."""

        def __init__(self, clock: "SimulatedClock") -> None:
            self._clock = clock
            self.start_ms = 0.0
            self.elapsed_ms = 0.0

        def __enter__(self) -> "SimulatedClock._Span":
            self.start_ms = self._clock.now_ms()
            return self

        def __exit__(self, *exc_info: object) -> None:
            self.elapsed_ms = self._clock.now_ms() - self.start_ms

    def span(self) -> "SimulatedClock._Span":
        """Measure virtual time elapsed inside a ``with`` block."""
        return SimulatedClock._Span(self)


class SystemClock:
    """Wall-clock with the same read interface as :class:`SimulatedClock`.

    Used by components that genuinely run locally (e.g. the benchmark
    harness); ``advance`` is a no-op because real time advances by itself.
    """

    def now_ms(self) -> float:
        return time.monotonic() * 1000.0

    def advance(self, delta_ms: float) -> float:
        return self.now_ms()

    def parallel_advance(self, lane_costs_ms: list[float]) -> float:
        return self.now_ms()
