"""Shared infrastructure: simulated clock, errors, configuration, ids."""

from repro.common.clock import SimulatedClock, SystemClock
from repro.common.errors import (
    PrestoError,
    SyntaxError_,
    SemanticError,
    PlanningError,
    ExecutionError,
    InsufficientResourcesError,
    SchemaEvolutionError,
    ConnectorError,
    StorageError,
)

__all__ = [
    "SimulatedClock",
    "SystemClock",
    "PrestoError",
    "SyntaxError_",
    "SemanticError",
    "PlanningError",
    "ExecutionError",
    "InsufficientResourcesError",
    "SchemaEvolutionError",
    "ConnectorError",
    "StorageError",
]
