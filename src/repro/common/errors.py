"""Exception hierarchy for the engine.

Mirrors Presto's user-facing error classes: syntax errors from the parser,
semantic errors from the analyzer, planning errors from the optimizer, and
execution errors from the runtime.  ``InsufficientResourcesError`` reproduces
the "Insufficient Resource" failure the paper's section XII.C describes for
over-large joins.
"""

from __future__ import annotations


class PrestoError(Exception):
    """Base class for all engine errors."""


class SyntaxError_(PrestoError):
    """SQL text failed to lex or parse.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SemanticError(PrestoError):
    """Query references unknown tables/columns or misuses types."""


class PlanningError(PrestoError):
    """The optimizer could not produce a valid physical plan."""


class ExecutionError(PrestoError):
    """A task failed at runtime."""


class InsufficientResourcesError(ExecutionError):
    """Query exceeded cluster memory limits (paper section XII.C)."""

    def __init__(self, message: str = "Insufficient Resources") -> None:
        super().__init__(message)


class SchemaEvolutionError(PrestoError):
    """A schema change violates the company-wide evolution rules (V.A)."""


class ConnectorError(PrestoError):
    """A connector failed to serve metadata or data."""


class StorageError(PrestoError):
    """A simulated storage system (HDFS/S3) failed a request."""


class GatewayError(PrestoError):
    """The federation gateway could not route a query (VIII)."""
