"""Exception hierarchy and error taxonomy for the engine.

Mirrors Presto's user-facing error classes: syntax errors from the parser,
semantic errors from the analyzer, planning errors from the optimizer, and
execution errors from the runtime.  ``InsufficientResourcesError`` reproduces
the "Insufficient Resource" failure the paper's section XII.C describes for
over-large joins.

Every error carries an :class:`ErrorCategory`, mirroring Presto's
standardized error categories (``USER_ERROR`` / ``INTERNAL_ERROR`` /
``INSUFFICIENT_RESOURCES`` / ``EXTERNAL``).  The category decides the
retry policy at every level of the fault-tolerance stack: the
``StageScheduler`` retries a failing task only when its error is
``retryable`` (INTERNAL_ERROR and EXTERNAL — transient infrastructure
problems), while USER_ERRORs fail fast (re-running a bad query cannot
help) and INSUFFICIENT_RESOURCES escalates instead of retrying (the
paper's answer is falling back to Presto-on-Spark, not a retry loop).
The federation gateway applies the same test when deciding whether to
fail a query over to another cluster.
"""

from __future__ import annotations

import enum


class ErrorCategory(enum.Enum):
    """Presto's standardized error categories (section XII.C)."""

    USER_ERROR = "USER_ERROR"
    INTERNAL_ERROR = "INTERNAL_ERROR"
    INSUFFICIENT_RESOURCES = "INSUFFICIENT_RESOURCES"
    EXTERNAL = "EXTERNAL"

    @property
    def retryable(self) -> bool:
        """Whether a retry can plausibly succeed.

        Transient infrastructure failures (INTERNAL_ERROR, EXTERNAL) are
        retried; USER_ERRORs are deterministic and INSUFFICIENT_RESOURCES
        needs a bigger engine (Presto on Spark), not another attempt.
        """
        return self in (ErrorCategory.INTERNAL_ERROR, ErrorCategory.EXTERNAL)


class PrestoError(Exception):
    """Base class for all engine errors."""

    category: ErrorCategory = ErrorCategory.INTERNAL_ERROR

    @property
    def retryable(self) -> bool:
        return self.category.retryable


class SyntaxError_(PrestoError):
    """SQL text failed to lex or parse.

    Named with a trailing underscore to avoid shadowing the builtin.
    """

    category = ErrorCategory.USER_ERROR

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        location = f" at line {line}:{column}" if line else ""
        super().__init__(f"{message}{location}")


class SemanticError(PrestoError):
    """Query references unknown tables/columns or misuses types."""

    category = ErrorCategory.USER_ERROR


class PlanningError(PrestoError):
    """The optimizer could not produce a valid physical plan."""


class ExecutionError(PrestoError):
    """A task failed at runtime."""


class InsufficientResourcesError(ExecutionError):
    """Query exceeded cluster memory limits (paper section XII.C)."""

    category = ErrorCategory.INSUFFICIENT_RESOURCES

    def __init__(self, message: str = "Insufficient Resources") -> None:
        super().__init__(message)


class AdmissionRejectedError(InsufficientResourcesError):
    """The cluster shed the query at admission (queue over its SLO).

    Carries ``retry_after_ms``, the estimated queue drain time — the
    INSUFFICIENT_RESOURCES category makes the rejection non-retryable
    through the ordinary failover path (re-routing a shed query to the
    same overloaded fleet cannot help); clients back off and resubmit
    after the hint instead.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


class InjectedFaultError(ExecutionError):
    """A failure produced by the deterministic fault injector.

    Carries the category the injector was configured with, so retry
    policies treat an injected fault exactly like the real failure it
    stands in for.
    """

    def __init__(
        self,
        message: str,
        category: ErrorCategory = ErrorCategory.INTERNAL_ERROR,
    ) -> None:
        super().__init__(message)
        self.category = category


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task simulated-time budget."""


class SchemaEvolutionError(PrestoError):
    """A schema change violates the company-wide evolution rules (V.A)."""

    category = ErrorCategory.USER_ERROR


class ConnectorError(PrestoError):
    """A connector failed to serve metadata or data."""

    category = ErrorCategory.EXTERNAL


class StorageError(PrestoError):
    """A simulated storage system (HDFS/S3) failed a request."""

    category = ErrorCategory.EXTERNAL


class GatewayError(PrestoError):
    """The federation gateway could not route a query (VIII)."""
