"""Geospatial plugin (section VI).

Well-Known Text geometries (:mod:`repro.geo.wkt`), point-in-polygon tests
with cost proportional to polygon vertex count (:mod:`repro.geo.geometry`),
a QuadTree spatial index built on the fly (:mod:`repro.geo.quadtree`), and
the Presto function surface — ``st_point``, ``st_contains``,
``build_geo_index``, ``geo_contains`` (:mod:`repro.geo.functions`).
"""

from repro.geo.geometry import BoundingBox, Geometry, MultiPolygon, Point, Polygon
from repro.geo.quadtree import GeoIndex, QuadTree
from repro.geo.wkt import format_wkt, parse_wkt

__all__ = [
    "BoundingBox",
    "Geometry",
    "MultiPolygon",
    "Point",
    "Polygon",
    "GeoIndex",
    "QuadTree",
    "format_wkt",
    "parse_wkt",
]
