"""QuadTree spatial index (section VI.D, figure 11).

"Quadtrees represent a partition of space in two dimensions by decomposing
the region into four quadrants, sub-quadrants, and so on until the contents
of the cells meet some criterion of data occupancy."

We index geofence *bounding rectangles*: a geometry is stored in the
deepest node whose quadrant fully contains its bounding box.  A point probe
walks one root-to-leaf path and collects the geometries stored along it,
so "the majority of bounded rectangles that do not contain target point
could be filtered out" and ``st_contains`` runs only on the survivors.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.geo.geometry import BoundingBox, Geometry, Point


class QuadTree:
    """A region quadtree over axis-aligned bounding boxes."""

    DEFAULT_CAPACITY = 8
    DEFAULT_MAX_DEPTH = 16

    def __init__(
        self,
        bounds: BoundingBox,
        capacity: int = DEFAULT_CAPACITY,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> None:
        self.bounds = bounds
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _Node(bounds, 0)
        self._size = 0

    def insert(self, item_id: int, box: BoundingBox) -> None:
        """Insert an item identified by ``item_id`` with bounding box ``box``."""
        self._root.insert(item_id, box, self.capacity, self.max_depth)
        self._size += 1

    def query_point(self, x: float, y: float) -> list[int]:
        """Ids of all items whose bounding box contains (x, y)."""
        result: list[int] = []
        self._root.collect_point(x, y, result)
        return result

    def query_box(self, box: BoundingBox) -> list[int]:
        """Ids of all items whose bounding box intersects ``box``."""
        result: list[int] = []
        self._root.collect_box(box, result)
        return result

    def __len__(self) -> int:
        return self._size

    def depth(self) -> int:
        return self._root.max_subtree_depth()


class _Node:
    __slots__ = ("bounds", "depth", "items", "children")

    def __init__(self, bounds: BoundingBox, depth: int) -> None:
        self.bounds = bounds
        self.depth = depth
        self.items: list[tuple[int, BoundingBox]] = []
        self.children: Optional[list["_Node"]] = None

    def insert(self, item_id: int, box: BoundingBox, capacity: int, max_depth: int) -> None:
        if self.children is None:
            self.items.append((item_id, box))
            if len(self.items) > capacity and self.depth < max_depth:
                self._split(capacity, max_depth)
            return
        child = self._child_containing(box)
        if child is None:
            self.items.append((item_id, box))
        else:
            child.insert(item_id, box, capacity, max_depth)

    def _split(self, capacity: int, max_depth: int) -> None:
        b = self.bounds
        mid_x = (b.min_x + b.max_x) / 2
        mid_y = (b.min_y + b.max_y) / 2
        self.children = [
            _Node(BoundingBox(b.min_x, b.min_y, mid_x, mid_y), self.depth + 1),
            _Node(BoundingBox(mid_x, b.min_y, b.max_x, mid_y), self.depth + 1),
            _Node(BoundingBox(b.min_x, mid_y, mid_x, b.max_y), self.depth + 1),
            _Node(BoundingBox(mid_x, mid_y, b.max_x, b.max_y), self.depth + 1),
        ]
        staying: list[tuple[int, BoundingBox]] = []
        for item_id, box in self.items:
            child = self._child_containing(box)
            if child is None:
                staying.append((item_id, box))
            else:
                child.insert(item_id, box, capacity, max_depth)
        self.items = staying

    def _child_containing(self, box: BoundingBox) -> Optional["_Node"]:
        assert self.children is not None
        for child in self.children:
            cb = child.bounds
            if (
                cb.min_x <= box.min_x
                and box.max_x <= cb.max_x
                and cb.min_y <= box.min_y
                and box.max_y <= cb.max_y
            ):
                return child
        return None

    def collect_point(self, x: float, y: float, result: list[int]) -> None:
        for item_id, box in self.items:
            if box.contains(x, y):
                result.append(item_id)
        if self.children is not None:
            for child in self.children:
                if child.bounds.contains(x, y):
                    child.collect_point(x, y, result)

    def collect_box(self, box: BoundingBox, result: list[int]) -> None:
        for item_id, item_box in self.items:
            if item_box.intersects(box):
                result.append(item_id)
        if self.children is not None:
            for child in self.children:
                if child.bounds.intersects(box):
                    child.collect_box(box, result)

    def max_subtree_depth(self) -> int:
        if self.children is None:
            return self.depth
        return max(child.max_subtree_depth() for child in self.children)


class GeoIndex:
    """The product of ``build_geo_index``: a QuadTree over geofences.

    Serializes/deserializes geospatial polygons into a QuadTree (section
    VI.E).  ``candidates(point)`` filters out geofences whose bounding
    rectangle cannot contain the point; callers then run the exact
    ``st_contains`` only on survivors.
    """

    def __init__(self, tree: QuadTree, geometries: dict[int, Geometry]) -> None:
        self._tree = tree
        self._geometries = geometries

    @classmethod
    def build(cls, items: Iterable[tuple[int, Geometry]]) -> "GeoIndex":
        items = [(i, g) for i, g in items if g is not None]
        if not items:
            return cls(QuadTree(BoundingBox(0, 0, 1, 1)), {})
        bounds = items[0][1].bounding_box()
        for _, geometry in items[1:]:
            bounds = bounds.union(geometry.bounding_box())
        tree = QuadTree(bounds)
        geometries: dict[int, Geometry] = {}
        for item_id, geometry in items:
            tree.insert(item_id, geometry.bounding_box())
            geometries[item_id] = geometry
        return cls(tree, geometries)

    def candidates(self, point: Point) -> list[int]:
        """Ids of geofences whose bounding box contains ``point``."""
        return self._tree.query_point(point.x, point.y)

    def containing(self, point: Point) -> list[int]:
        """Exact: ids of geofences that truly contain ``point``."""
        return [
            item_id
            for item_id in self.candidates(point)
            if self._geometries[item_id].contains_point(point)
        ]

    def geometry(self, item_id: int) -> Geometry:
        return self._geometries[item_id]

    def __len__(self) -> int:
        return len(self._geometries)
