"""Presto Geospatial plugin functions (section VI.E).

Registers the geo function surface on the default registry at import time,
"Using the Presto plugin framework":

- ``st_point(lng, lat)`` — construct a point.
- ``st_contains(shape, point)`` — exact containment test.
- ``st_geometry_from_text(wkt)`` / ``st_as_text(geom)`` — WKT conversion.
- ``st_x`` / ``st_y`` / ``st_distance`` — accessors.
- ``build_geo_index(shape)`` — *aggregation* serializing polygons into a
  QuadTree (figure 13).
- ``geo_contains(index, point)`` — QuadTree-accelerated containment.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.functions import (
    AggregateFunction,
    FunctionRegistry,
    ScalarFunction,
    default_registry,
)
from repro.core.types import (
    BOOLEAN,
    DOUBLE,
    GEOMETRY,
    PrestoType,
    VARCHAR,
)
from repro.geo.geometry import Geometry, Point
from repro.geo.quadtree import GeoIndex
from repro.geo.wkt import format_wkt, parse_wkt


def _fixed(signature: Sequence[PrestoType], return_type: PrestoType):
    expected = tuple(signature)

    def resolve(arg_types: Sequence[PrestoType]) -> Optional[PrestoType]:
        from repro.core.types import UNKNOWN, common_super_type

        if len(arg_types) != len(expected):
            return None
        for got, want in zip(arg_types, expected):
            if got is UNKNOWN:
                continue
            if common_super_type(got, want) != want:
                return None
        return return_type

    return resolve


def _st_contains(shape: Geometry, point: Geometry) -> bool:
    if not isinstance(point, Point):
        raise ValueError("st_contains second argument must be a point")
    return shape.contains_point(point)


def _geo_contains(index: GeoIndex, point: Geometry) -> bool:
    if not isinstance(point, Point):
        raise ValueError("geo_contains second argument must be a point")
    return bool(index.containing(point))


def register_geo_functions(registry: FunctionRegistry) -> None:
    """Install the plugin's scalar and aggregate functions."""

    def scalar(name, signature, return_type, fn):
        registry.register_scalar(
            ScalarFunction(name, _fixed(signature, return_type), fn)
        )

    scalar("st_point", [DOUBLE, DOUBLE], GEOMETRY, lambda x, y: Point(float(x), float(y)))
    scalar("st_contains", [GEOMETRY, GEOMETRY], BOOLEAN, _st_contains)
    scalar("st_within", [GEOMETRY, GEOMETRY], BOOLEAN, lambda a, b: _st_contains(b, a))
    scalar("st_geometry_from_text", [VARCHAR], GEOMETRY, parse_wkt)
    scalar("st_as_text", [GEOMETRY], VARCHAR, format_wkt)
    scalar("st_x", [GEOMETRY], DOUBLE, lambda p: p.x)
    scalar("st_y", [GEOMETRY], DOUBLE, lambda p: p.y)
    scalar(
        "st_distance",
        [GEOMETRY, GEOMETRY],
        DOUBLE,
        lambda a, b: a.distance(b),
    )
    scalar("geo_contains", [GEOMETRY, GEOMETRY], BOOLEAN, _geo_contains)

    def resolve_build_geo_index(arg_types: Sequence[PrestoType]) -> Optional[PrestoType]:
        if len(arg_types) == 1 and arg_types[0] is GEOMETRY:
            return GEOMETRY
        return None

    registry.register_aggregate(
        AggregateFunction(
            "build_geo_index",
            resolve_build_geo_index,
            create_state=list,
            add_input=lambda state, args: state + [args[0]] if args[0] is not None else state,
            merge=lambda a, b: a + b,
            finalize=lambda state: GeoIndex.build(list(enumerate(state))),
        )
    )


# Plugin installation happens at import time (module bodies run once).
register_geo_functions(default_registry())
