"""Well-Known Text parsing and formatting (section VI.A).

Supports the geometry kinds the paper's workloads use::

    POINT (77.3548351 28.6973627)
    POLYGON ((x1 y1, x2 y2, ..., x1 y1))
    MULTIPOLYGON (((...)), ((...)))
"""

from __future__ import annotations

from repro.geo.geometry import Geometry, MultiPolygon, Point, Polygon


def parse_wkt(text: str) -> Geometry:
    """Parse a WKT string into a geometry."""
    parser = _WktParser(text)
    geometry = parser.parse()
    parser.expect_end()
    return geometry


def format_wkt(geometry: Geometry) -> str:
    """Serialize a geometry back to WKT."""
    if isinstance(geometry, Point):
        return f"POINT ({_num(geometry.x)} {_num(geometry.y)})"
    if isinstance(geometry, Polygon):
        return f"POLYGON ({_ring(geometry.ring)})"
    if isinstance(geometry, MultiPolygon):
        inner = ", ".join(f"({_ring(p.ring)})" for p in geometry.polygons)
        return f"MULTIPOLYGON ({inner})"
    raise ValueError(f"cannot format {type(geometry).__name__} as WKT")


def _num(value: float) -> str:
    return repr(value) if not float(value).is_integer() else str(int(value))


def _ring(ring: list[tuple[float, float]]) -> str:
    return "(" + ", ".join(f"{_num(x)} {_num(y)}" for x, y in ring) + ")"


class _WktParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> Geometry:
        keyword = self._keyword()
        if keyword == "point":
            self._expect("(")
            x, y = self._coordinate()
            self._expect(")")
            return Point(x, y)
        if keyword == "polygon":
            self._expect("(")
            ring = self._parse_ring()
            # Interior rings (holes) are parsed but not supported.
            while self._peek() == ",":
                raise ValueError("polygons with interior rings are not supported")
            self._expect(")")
            return Polygon(ring)
        if keyword == "multipolygon":
            self._expect("(")
            polygons = [self._parse_polygon_body()]
            while self._peek() == ",":
                self._pos += 1
                polygons.append(self._parse_polygon_body())
            self._expect(")")
            return MultiPolygon(polygons)
        raise ValueError(f"unsupported WKT geometry {keyword!r}")

    def _parse_polygon_body(self) -> Polygon:
        self._expect("(")
        ring = self._parse_ring()
        self._expect(")")
        return Polygon(ring)

    def _parse_ring(self) -> list[tuple[float, float]]:
        self._expect("(")
        points = [self._coordinate()]
        while self._peek() == ",":
            self._pos += 1
            points.append(self._coordinate())
        self._expect(")")
        return points

    def _coordinate(self) -> tuple[float, float]:
        return self._number(), self._number()

    def _number(self) -> float:
        self._skip_ws()
        start = self._pos
        while self._pos < len(self._text) and (
            self._text[self._pos].isdigit() or self._text[self._pos] in "+-.eE"
        ):
            self._pos += 1
        if start == self._pos:
            raise ValueError(f"expected number at {self._pos} in {self._text!r}")
        return float(self._text[start : self._pos])

    def _keyword(self) -> str:
        self._skip_ws()
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos].isalpha():
            self._pos += 1
        return self._text[start : self._pos].lower()

    def _peek(self) -> str | None:
        self._skip_ws()
        return self._text[self._pos] if self._pos < len(self._text) else None

    def _expect(self, ch: str) -> None:
        if self._peek() != ch:
            raise ValueError(f"expected {ch!r} at {self._pos} in {self._text!r}")
        self._pos += 1

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def expect_end(self) -> None:
        self._skip_ws()
        if self._pos != len(self._text):
            raise ValueError(f"trailing input at {self._pos} in {self._text!r}")
