"""Geometry model: points, polygons, multi-polygons, bounding boxes.

Section VI.A: points are (longitude, latitude) pairs; polygons are point
collections whose first and last points match.  ``st_contains`` cost is
"proportional to the number of points in the geofence", which holds here:
point-in-polygon is a ray cast over every edge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned rectangle; the QuadTree indexes these."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "BoundingBox") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y


class Geometry:
    """Base class for all geometries."""

    def bounding_box(self) -> BoundingBox:
        raise NotImplementedError

    def contains_point(self, point: "Point") -> bool:
        raise NotImplementedError

    def ray_cast(self, point: "Point") -> bool:
        """Exact containment without bounding-box shortcuts."""
        return self.contains_point(point)

    def vertex_count(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Point(Geometry):
    """A single location: (longitude, latitude)."""

    x: float
    y: float

    def bounding_box(self) -> BoundingBox:
        return BoundingBox(self.x, self.y, self.x, self.y)

    def contains_point(self, point: "Point") -> bool:
        return self.x == point.x and self.y == point.y

    def vertex_count(self) -> int:
        return 1

    def distance(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Polygon(Geometry):
    """A simple polygon: one exterior ring (first point == last point)."""

    def __init__(self, ring: Sequence[tuple[float, float]]) -> None:
        ring = list(ring)
        if len(ring) < 4:
            raise ValueError("polygon ring needs at least 4 points (closed)")
        if ring[0] != ring[-1]:
            raise ValueError("polygon ring must be closed (first point == last point)")
        self.ring = ring
        import numpy as np

        self._x1 = np.array([p[0] for p in ring[:-1]])
        self._y1 = np.array([p[1] for p in ring[:-1]])
        self._x2 = np.array([p[0] for p in ring[1:]])
        self._y2 = np.array([p[1] for p in ring[1:]])
        self._bbox = BoundingBox(
            float(min(self._x1.min(), self._x2.min())),
            float(min(self._y1.min(), self._y2.min())),
            float(max(self._x1.max(), self._x2.max())),
            float(max(self._y1.max(), self._y2.max())),
        )

    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def vertex_count(self) -> int:
        return len(self.ring) - 1

    def contains_point(self, point: Point) -> bool:
        """Bounding-box shortcut, then an exact ray cast."""
        if not self._bbox.contains(point.x, point.y):
            return False
        return self.ray_cast(point)

    def ray_cast(self, point: Point) -> bool:
        """The exact test, cost proportional to the vertex count.

        This is what the paper's brute force pays for *every* (point,
        geofence) pair: "The time cost of executing st_contains for one
        pair of point and geofence is proportional to the number of points
        in the geofence" (section VI.C).  Boundary points count as inside.
        """
        import numpy as np

        x, y = point.x, point.y
        x1, y1, x2, y2 = self._x1, self._y1, self._x2, self._y2
        # On-edge check: zero cross product and within the segment box.
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        on_edge = (
            (np.abs(cross) <= 1e-12)
            & (np.minimum(x1, x2) - 1e-12 <= x)
            & (x <= np.maximum(x1, x2) + 1e-12)
            & (np.minimum(y1, y2) - 1e-12 <= y)
            & (y <= np.maximum(y1, y2) + 1e-12)
        )
        if on_edge.any():
            return True
        straddles = (y1 > y) != (y2 > y)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_cross = x1 + (y - y1) * (x2 - x1) / (y2 - y1)
        crossings = int(np.count_nonzero(straddles & (x < x_cross)))
        return crossings % 2 == 1

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Polygon) and self.ring == other.ring

    def __hash__(self) -> int:
        return hash(tuple(self.ring))

    def __repr__(self) -> str:
        return f"Polygon({self.vertex_count()} vertices)"


class MultiPolygon(Geometry):
    """A geofence may be "either a polygon or a multi-polygon" (VI.B)."""

    def __init__(self, polygons: Sequence[Polygon]) -> None:
        if not polygons:
            raise ValueError("multipolygon needs at least one polygon")
        self.polygons = list(polygons)
        bbox = self.polygons[0].bounding_box()
        for polygon in self.polygons[1:]:
            bbox = bbox.union(polygon.bounding_box())
        self._bbox = bbox

    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def vertex_count(self) -> int:
        return sum(p.vertex_count() for p in self.polygons)

    def contains_point(self, point: Point) -> bool:
        if not self._bbox.contains(point.x, point.y):
            return False
        return any(p.contains_point(point) for p in self.polygons)

    def ray_cast(self, point: Point) -> bool:
        return any(p.ray_cast(point) for p in self.polygons)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MultiPolygon) and self.polygons == other.polygons

    def __hash__(self) -> int:
        return hash(tuple(self.polygons))

    def __repr__(self) -> str:
        return f"MultiPolygon({len(self.polygons)} polygons, {self.vertex_count()} vertices)"


def _on_segment(
    px: float, py: float, x1: float, y1: float, x2: float, y2: float, eps: float = 1e-12
) -> bool:
    cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
    if abs(cross) > eps:
        return False
    if min(x1, x2) - eps <= px <= max(x1, x2) + eps and min(y1, y2) - eps <= py <= max(
        y1, y2
    ) + eps:
        return True
    return False
