"""Abstract Syntax Tree nodes for the SQL dialect.

These nodes are produced by the parser and consumed by the analyzer, which
lowers them to logical plan nodes over RowExpressions.  Per section IV.B the
AST is *not* what crosses the connector boundary — only the analyzer sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


class Node:
    """Base class for AST nodes."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression(Node):
    pass


@dataclass(frozen=True)
class Literal(Expression):
    """A literal: int, float, str, bool, or None."""

    value: object


@dataclass(frozen=True)
class Identifier(Expression):
    """A possibly-dotted name: ``x``, ``t.x``, ``t.base.city_id``.

    The analyzer decides how many leading parts name a relation/column and
    how many trailing parts are struct field dereferences.
    """

    parts: tuple[str, ...]

    @property
    def name(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*``."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expression):
    operator: str  # '=', '<>', '<', '<=', '>', '>=', '+', '-', '*', '/', '%', 'and', 'or', '||'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    operator: str  # '-', 'not'
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    name: str
    arguments: tuple[Expression, ...]
    distinct: bool = False


@dataclass(frozen=True)
class InPredicate(Expression):
    value: Expression
    candidates: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class BetweenPredicate(Expression):
    value: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class LikePredicate(Expression):
    value: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNullPredicate(Expression):
    value: Expression
    negated: bool = False


@dataclass(frozen=True)
class Cast(Expression):
    expression: Expression
    target_type: str  # type string, parsed later by the analyzer


@dataclass(frozen=True)
class CaseExpression(Expression):
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    when_clauses: tuple[tuple[Expression, Expression], ...]
    default: Optional[Expression] = None


@dataclass(frozen=True)
class LambdaExpression(Expression):
    parameters: tuple[str, ...]
    body: Expression


@dataclass(frozen=True)
class SubscriptExpression(Expression):
    """``arr[i]`` / ``map[key]`` — sugar for element_at."""

    base: Expression
    index: Expression


# ---------------------------------------------------------------------------
# Relations
# ---------------------------------------------------------------------------


class Relation(Node):
    pass


@dataclass(frozen=True)
class TableReference(Relation):
    """``catalog.schema.table`` with fewer parts resolved by the session."""

    parts: tuple[str, ...]
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class SubqueryRelation(Relation):
    query: "Query"
    alias: Optional[str] = None


@dataclass(frozen=True)
class Join(Relation):
    join_type: str  # 'inner', 'left', 'right', 'cross'
    left: Relation
    right: Relation
    condition: Optional[Expression] = None


# ---------------------------------------------------------------------------
# Query
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    expression: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Query(Node):
    """A single SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_relation: Optional[Relation] = None
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    # UNION [ALL] branches appended to this query, in order.  Each entry is
    # (query, distinct) where distinct=True means plain UNION semantics
    # (duplicates eliminated over the combined result).
    unions: tuple[tuple["Query", bool], ...] = ()
