"""SQL lexer.

Produces a flat token stream with line/column positions so parse errors
point at the offending text, mirroring Presto's error reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import SyntaxError_


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    QUOTED_IDENTIFIER = "quoted_identifier"
    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    OPERATOR = "operator"
    END = "end"


KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "join", "inner", "left", "right", "full", "outer", "cross", "on", "as",
    "and", "or", "not", "in", "is", "null", "true", "false", "between",
    "like", "cast", "case", "when", "then", "else", "end", "distinct",
    "asc", "desc", "union", "all", "with", "exists",
}

_OPERATORS = [
    "<>", "<=", ">=", "!=", "->", "||",
    "=", "<", ">", "+", "-", "*", "/", "%", ".", ",", "(", ")", "[", "]",
]


@dataclass(frozen=True)
class Token:
    type: TokenType
    text: str
    line: int
    column: int

    @property
    def value(self) -> str:
        """Normalized token text: keywords and identifiers are lowercased."""
        if self.type in (TokenType.KEYWORD, TokenType.IDENTIFIER):
            return self.text.lower()
        return self.text

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; raises :class:`SyntaxError_` on bad input."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(sql)

    def column() -> int:
        return pos - line_start + 1

    while pos < n:
        ch = sql[pos]

        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue

        # -- comments -----------------------------------------------------
        if sql.startswith("--", pos):
            end = sql.find("\n", pos)
            pos = n if end < 0 else end
            continue
        if sql.startswith("/*", pos):
            end = sql.find("*/", pos + 2)
            if end < 0:
                raise SyntaxError_("unterminated block comment", line, column())
            pos = end + 2
            continue

        # -- string literal -------------------------------------------------
        if ch == "'":
            start_line, start_col = line, column()
            pos += 1
            chars: list[str] = []
            while True:
                if pos >= n:
                    raise SyntaxError_("unterminated string literal", start_line, start_col)
                if sql[pos] == "'":
                    if pos + 1 < n and sql[pos + 1] == "'":  # escaped quote
                        chars.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                chars.append(sql[pos])
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(chars), start_line, start_col))
            continue

        # -- quoted identifier (ANSI double quotes or Spark backticks) --------
        if ch in ('"', "`"):
            start_line, start_col = line, column()
            end = sql.find(ch, pos + 1)
            if end < 0:
                raise SyntaxError_("unterminated quoted identifier", start_line, start_col)
            tokens.append(
                Token(TokenType.QUOTED_IDENTIFIER, sql[pos + 1 : end], start_line, start_col)
            )
            pos = end + 1
            continue

        # -- number -------------------------------------------------------------
        if ch.isdigit():
            start = pos
            start_col = column()
            while pos < n and sql[pos].isdigit():
                pos += 1
            is_decimal = False
            if pos < n and sql[pos] == "." and pos + 1 < n and sql[pos + 1].isdigit():
                is_decimal = True
                pos += 1
                while pos < n and sql[pos].isdigit():
                    pos += 1
            if pos < n and sql[pos] in "eE":
                is_decimal = True
                pos += 1
                if pos < n and sql[pos] in "+-":
                    pos += 1
                while pos < n and sql[pos].isdigit():
                    pos += 1
            kind = TokenType.DECIMAL if is_decimal else TokenType.INTEGER
            tokens.append(Token(kind, sql[start:pos], line, start_col))
            continue

        # -- identifier / keyword -------------------------------------------------
        if ch.isalpha() or ch == "_":
            start = pos
            start_col = column()
            while pos < n and (sql[pos].isalnum() or sql[pos] in "_$"):
                pos += 1
            text = sql[start:pos]
            kind = TokenType.KEYWORD if text.lower() in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(kind, text, line, start_col))
            continue

        # -- operators ------------------------------------------------------------
        for op in _OPERATORS:
            if sql.startswith(op, pos):
                tokens.append(Token(TokenType.OPERATOR, op, line, column()))
                pos += len(op)
                break
        else:
            raise SyntaxError_(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokenType.END, "", line, column()))
    return tokens
