"""AST → SQL text rendering.

Used by the Presto-on-Spark translator (section XII.C): a parsed query is
re-rendered in the target dialect.  ``Dialect`` hooks cover the places
Presto and SparkSQL disagree for our dialect subset (function names,
identifier quoting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sql import ast


@dataclass
class Dialect:
    """Rendering rules for one SQL dialect."""

    name: str = "presto"
    quote_char: str = '"'
    # Function name translations applied at render time.
    function_names: dict[str, str] = field(default_factory=dict)

    def function(self, name: str) -> str:
        return self.function_names.get(name.lower(), name)


PRESTO = Dialect(name="presto")
SPARK = Dialect(
    name="spark",
    quote_char="`",
    function_names={
        "approx_distinct": "approx_count_distinct",
        "strpos": "instr",
    },
)


def format_query(query: ast.Query, dialect: Dialect = PRESTO) -> str:
    """Render a parsed query as SQL text in the given dialect."""
    return _Formatter(dialect).query(query)


class _Formatter:
    def __init__(self, dialect: Dialect) -> None:
        self._dialect = dialect

    def identifier(self, name: str) -> str:
        """Quote identifiers that are not plain names (or are keywords)."""
        from repro.sql.lexer import KEYWORDS

        plain = (
            name
            and (name[0].isalpha() or name[0] == "_")
            and all(ch.isalnum() or ch == "_" for ch in name)
            and name.lower() not in KEYWORDS
            and name == name.lower()
        )
        if plain:
            return name
        quote = self._dialect.quote_char
        return f"{quote}{name}{quote}"

    def query(self, query: ast.Query) -> str:
        parts = ["SELECT"]
        if query.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self.select_item(i) for i in query.select_items))
        if query.from_relation is not None:
            parts.append("FROM " + self.relation(query.from_relation))
        if query.where is not None:
            parts.append("WHERE " + self.expression(query.where))
        if query.group_by:
            parts.append("GROUP BY " + ", ".join(self.expression(e) for e in query.group_by))
        if query.having is not None:
            parts.append("HAVING " + self.expression(query.having))
        if query.order_by:
            rendered = ", ".join(
                self.expression(item.expression) + ("" if item.ascending else " DESC")
                for item in query.order_by
            )
            parts.append("ORDER BY " + rendered)
        if query.limit is not None:
            parts.append(f"LIMIT {query.limit}")
        for branch, branch_distinct in query.unions:
            keyword = "UNION" if branch_distinct else "UNION ALL"
            parts.append(f"{keyword} {self.query(branch)}")
        return " ".join(parts)

    def select_item(self, item: ast.SelectItem) -> str:
        rendered = self.expression(item.expression)
        if item.alias:
            return f"{rendered} AS {self.identifier(item.alias)}"
        return rendered

    def relation(self, relation: ast.Relation) -> str:
        if isinstance(relation, ast.TableReference):
            name = ".".join(self.identifier(p) for p in relation.parts)
            if relation.alias:
                return f"{name} {self.identifier(relation.alias)}"
            return name
        if isinstance(relation, ast.SubqueryRelation):
            inner = self.query(relation.query)
            alias = f" {self.identifier(relation.alias)}" if relation.alias else ""
            return f"({inner}){alias}"
        if isinstance(relation, ast.Join):
            left = self.relation(relation.left)
            right = self.relation(relation.right)
            if relation.join_type == "cross":
                return f"{left} CROSS JOIN {right}"
            keyword = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN", "full": "FULL JOIN"}[
                relation.join_type
            ]
            condition = self.expression(relation.condition)
            return f"{left} {keyword} {right} ON {condition}"
        raise ValueError(f"cannot format relation {type(relation).__name__}")

    def expression(self, expression: ast.Expression) -> str:
        if isinstance(expression, ast.Literal):
            return self.literal(expression.value)
        if isinstance(expression, ast.Identifier):
            return ".".join(self.identifier(p) for p in expression.parts)
        if isinstance(expression, ast.Star):
            return f"{expression.qualifier}.*" if expression.qualifier else "*"
        if isinstance(expression, ast.BinaryOp):
            op = expression.operator.upper() if expression.operator in ("and", "or") else expression.operator
            return f"({self.expression(expression.left)} {op} {self.expression(expression.right)})"
        if isinstance(expression, ast.UnaryOp):
            if expression.operator == "not":
                return f"(NOT {self.expression(expression.operand)})"
            return f"(-{self.expression(expression.operand)})"
        if isinstance(expression, ast.FunctionCall):
            name = self._dialect.function(expression.name)
            if not expression.arguments and name.lower() == "count":
                return "count(*)"
            inner = ", ".join(self.expression(a) for a in expression.arguments)
            distinct = "DISTINCT " if expression.distinct else ""
            return f"{name}({distinct}{inner})"
        if isinstance(expression, ast.InPredicate):
            values = ", ".join(self.expression(c) for c in expression.candidates)
            keyword = "NOT IN" if expression.negated else "IN"
            return f"({self.expression(expression.value)} {keyword} ({values}))"
        if isinstance(expression, ast.BetweenPredicate):
            keyword = "NOT BETWEEN" if expression.negated else "BETWEEN"
            return (
                f"({self.expression(expression.value)} {keyword} "
                f"{self.expression(expression.low)} AND {self.expression(expression.high)})"
            )
        if isinstance(expression, ast.LikePredicate):
            keyword = "NOT LIKE" if expression.negated else "LIKE"
            return f"({self.expression(expression.value)} {keyword} {self.expression(expression.pattern)})"
        if isinstance(expression, ast.IsNullPredicate):
            keyword = "IS NOT NULL" if expression.negated else "IS NULL"
            return f"({self.expression(expression.value)} {keyword})"
        if isinstance(expression, ast.Cast):
            return f"CAST({self.expression(expression.expression)} AS {expression.target_type})"
        if isinstance(expression, ast.CaseExpression):
            clauses = " ".join(
                f"WHEN {self.expression(c)} THEN {self.expression(v)}"
                for c, v in expression.when_clauses
            )
            default = (
                f" ELSE {self.expression(expression.default)}"
                if expression.default is not None
                else ""
            )
            return f"CASE {clauses}{default} END"
        if isinstance(expression, ast.SubscriptExpression):
            return f"{self.expression(expression.base)}[{self.expression(expression.index)}]"
        if isinstance(expression, ast.LambdaExpression):
            params = ", ".join(expression.parameters)
            return f"({params}) -> {self.expression(expression.body)}"
        raise ValueError(f"cannot format expression {type(expression).__name__}")

    def literal(self, value: object) -> str:
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return str(value)
