"""SQL frontend: lexer, AST, and parser.

The coordinator "parses incoming SQL, and tokenizes it into Abstract Syntax
Tree" (section III, figure 1).  This package implements the SQL dialect
subset the paper's workloads exercise: SELECT queries with joins, nested
field dereference (``base.city_id``), aggregation, HAVING, ORDER BY, LIMIT,
IN/BETWEEN/LIKE/IS NULL predicates, CASE, CAST, and lambdas.
"""

from repro.sql.parser import parse_sql
from repro.sql.lexer import tokenize

__all__ = ["parse_sql", "tokenize"]
