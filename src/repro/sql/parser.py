"""Recursive-descent SQL parser.

Grammar (simplified)::

    query      := SELECT [DISTINCT] selectItem (',' selectItem)*
                  [FROM relation] [WHERE expr]
                  [GROUP BY expr (',' expr)*] [HAVING expr]
                  [ORDER BY orderItem (',' orderItem)*] [LIMIT int]
    relation   := tableRef | '(' query ')' [alias] | relation joinClause
    expr       := or-precedence climbing down to primary

Operator precedence (loosest to tightest): OR, AND, NOT, comparison /
IN / BETWEEN / LIKE / IS NULL, additive (+ - ||), multiplicative (* / %),
unary minus, subscript/dereference, primary.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import SyntaxError_
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize


def parse_sql(sql: str) -> ast.Query:
    """Parse one SELECT statement into an AST."""
    parser = _Parser(tokenize(sql))
    query = parser.parse_query()
    parser.expect_end()
    return query


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _check_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in keywords

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        if self._check_keyword(*keywords):
            return self._advance().value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        token = self._peek()
        if not self._check_keyword(keyword):
            raise SyntaxError_(
                f"expected {keyword.upper()}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        self._advance()

    def _check_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.type is TokenType.OPERATOR and token.text in ops

    def _accept_operator(self, *ops: str) -> Optional[str]:
        if self._check_operator(*ops):
            return self._advance().text
        return None

    def _expect_operator(self, op: str) -> None:
        token = self._peek()
        if not self._check_operator(op):
            raise SyntaxError_(
                f"expected {op!r}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        self._advance()

    def expect_end(self) -> None:
        token = self._peek()
        if token.type is not TokenType.END:
            raise SyntaxError_(f"unexpected trailing input {token.text!r}", token.line, token.column)

    def _identifier(self) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            return self._advance().value
        raise SyntaxError_(
            f"expected identifier, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    # -- query ----------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None
        select_items = [self._select_item()]
        while self._accept_operator(","):
            select_items.append(self._select_item())

        from_relation = None
        if self._accept_keyword("from"):
            from_relation = self._relation()

        where = None
        if self._accept_keyword("where"):
            where = self.parse_expression()

        group_by: list[ast.Expression] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expression())
            while self._accept_operator(","):
                group_by.append(self.parse_expression())

        having = None
        if self._accept_keyword("having"):
            having = self.parse_expression()

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_operator(","):
                order_by.append(self._order_item())

        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.INTEGER:
                raise SyntaxError_("LIMIT requires an integer", token.line, token.column)
            limit = int(self._advance().text)

        query = ast.Query(
            select_items=tuple(select_items),
            from_relation=from_relation,
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

        # UNION [ALL|DISTINCT] chains.  ORDER BY / LIMIT bind per branch in
        # this dialect.
        unions: list[tuple[ast.Query, bool]] = []
        while self._accept_keyword("union"):
            if self._accept_keyword("all"):
                branch_distinct = False
            else:
                self._accept_keyword("distinct")
                branch_distinct = True
            branch = self.parse_query()
            # Flatten right-recursive parses into one branch list.
            unions.append((branch, branch_distinct))
            if branch.unions:
                unions.extend(branch.unions)
                unions[-len(branch.unions) - 1] = (
                    ast.Query(
                        select_items=branch.select_items,
                        from_relation=branch.from_relation,
                        where=branch.where,
                        group_by=branch.group_by,
                        having=branch.having,
                        order_by=branch.order_by,
                        limit=branch.limit,
                        distinct=branch.distinct,
                    ),
                    branch_distinct,
                )
        if unions:
            query = ast.Query(
                select_items=query.select_items,
                from_relation=query.from_relation,
                where=query.where,
                group_by=query.group_by,
                having=query.having,
                order_by=query.order_by,
                limit=query.limit,
                distinct=query.distinct,
                unions=tuple(unions),
            )
        return query

    def _select_item(self) -> ast.SelectItem:
        if self._check_operator("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        expression = self.parse_expression()
        # t.* parses as Identifier('t') followed by '.' '*'; handle that here.
        alias = None
        if self._accept_keyword("as"):
            alias = self._identifier()
        elif self._peek().type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            alias = self._identifier()
        return ast.SelectItem(expression, alias)

    def _order_item(self) -> ast.OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expression, ascending)

    # -- relations ----------------------------------------------------------------

    def _relation(self) -> ast.Relation:
        relation = self._relation_primary()
        while True:
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                right = self._relation_primary()
                relation = ast.Join("cross", relation, right)
                continue
            join_type = None
            if self._check_keyword("join"):
                join_type = "inner"
                self._advance()
            elif self._check_keyword("inner"):
                self._advance()
                self._expect_keyword("join")
                join_type = "inner"
            elif self._check_keyword("left", "right", "full"):
                join_type = self._advance().value
                self._accept_keyword("outer")
                self._expect_keyword("join")
            if join_type is None:
                break
            right = self._relation_primary()
            self._expect_keyword("on")
            condition = self.parse_expression()
            relation = ast.Join(join_type, relation, right, condition)
        return relation

    def _relation_primary(self) -> ast.Relation:
        if self._accept_operator("("):
            query = self.parse_query()
            self._expect_operator(")")
            alias = self._relation_alias()
            return ast.SubqueryRelation(query, alias)
        parts = [self._identifier()]
        while self._check_operator(".") and self._peek(1).type in (
            TokenType.IDENTIFIER,
            TokenType.QUOTED_IDENTIFIER,
        ):
            self._advance()
            parts.append(self._identifier())
        alias = self._relation_alias()
        return ast.TableReference(tuple(parts), alias)

    def _relation_alias(self) -> Optional[str]:
        if self._accept_keyword("as"):
            return self._identifier()
        if self._peek().type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            return self._identifier()
        return None

    # -- expressions (precedence climbing) -------------------------------------------

    def parse_expression(self) -> ast.Expression:
        return self._or_expression()

    def _or_expression(self) -> ast.Expression:
        left = self._and_expression()
        while self._accept_keyword("or"):
            right = self._and_expression()
            left = ast.BinaryOp("or", left, right)
        return left

    def _and_expression(self) -> ast.Expression:
        left = self._not_expression()
        while self._accept_keyword("and"):
            right = self._not_expression()
            left = ast.BinaryOp("and", left, right)
        return left

    def _not_expression(self) -> ast.Expression:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expression())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        left = self._additive()
        op = self._accept_operator("=", "<>", "!=", "<", "<=", ">", ">=")
        if op is not None:
            right = self._additive()
            return ast.BinaryOp("<>" if op == "!=" else op, left, right)

        negated = False
        if self._check_keyword("not") and self._peek(1).value in ("in", "between", "like"):
            self._advance()
            negated = True

        if self._accept_keyword("in"):
            self._expect_operator("(")
            candidates = [self.parse_expression()]
            while self._accept_operator(","):
                candidates.append(self.parse_expression())
            self._expect_operator(")")
            return ast.InPredicate(left, tuple(candidates), negated)

        if self._accept_keyword("between"):
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return ast.BetweenPredicate(left, low, high, negated)

        if self._accept_keyword("like"):
            pattern = self._additive()
            return ast.LikePredicate(left, pattern, negated)

        if self._accept_keyword("is"):
            is_negated = self._accept_keyword("not") is not None
            self._expect_keyword("null")
            return ast.IsNullPredicate(left, is_negated)

        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            right = self._multiplicative()
            left = ast.BinaryOp(op, left, right)

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            right = self._unary()
            left = ast.BinaryOp(op, left, right)

    def _unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expression:
        expression = self._primary()
        while True:
            if self._accept_operator("["):
                index = self.parse_expression()
                self._expect_operator("]")
                expression = ast.SubscriptExpression(expression, index)
                continue
            # Dotted dereference after a non-identifier primary, e.g. cast(x).f
            if (
                self._check_operator(".")
                and not isinstance(expression, ast.Identifier)
                and self._peek(1).type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER)
            ):
                self._advance()
                field_name = self._identifier()
                if isinstance(expression, ast.Identifier):
                    expression = ast.Identifier(expression.parts + (field_name,))
                else:
                    expression = ast.SubscriptExpression(expression, ast.Literal(field_name))
                continue
            break
        return expression

    def _primary(self) -> ast.Expression:
        token = self._peek()

        if token.type is TokenType.INTEGER:
            self._advance()
            return ast.Literal(int(token.text))
        if token.type is TokenType.DECIMAL:
            self._advance()
            return ast.Literal(float(token.text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.text)
        if self._accept_keyword("true"):
            return ast.Literal(True)
        if self._accept_keyword("false"):
            return ast.Literal(False)
        if self._accept_keyword("null"):
            return ast.Literal(None)

        if self._accept_keyword("cast"):
            self._expect_operator("(")
            inner = self.parse_expression()
            self._expect_keyword("as")
            type_text = self._type_text()
            self._expect_operator(")")
            return ast.Cast(inner, type_text)

        if self._accept_keyword("case"):
            return self._case_expression()

        if self._accept_operator("("):
            # Could be a parenthesized expression or a lambda parameter list.
            if self._is_lambda_parameters():
                return self._lambda_expression()
            inner = self.parse_expression()
            self._expect_operator(")")
            return inner

        if token.type in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
            # Single-parameter lambda: x -> expr
            if self._peek(1).type is TokenType.OPERATOR and self._peek(1).text == "->":
                name = self._identifier()
                self._advance()  # ->
                body = self.parse_expression()
                return ast.LambdaExpression((name,), body)
            return self._identifier_or_call()

        raise SyntaxError_(
            f"unexpected token {token.text or 'end of input'!r}", token.line, token.column
        )

    def _identifier_or_call(self) -> ast.Expression:
        name = self._identifier()
        if self._check_operator("("):
            self._advance()
            distinct = self._accept_keyword("distinct") is not None
            arguments: list[ast.Expression] = []
            if self._check_operator("*"):
                self._advance()  # count(*): zero-argument aggregate
            elif not self._check_operator(")"):
                arguments.append(self.parse_expression())
                while self._accept_operator(","):
                    arguments.append(self.parse_expression())
            self._expect_operator(")")
            return ast.FunctionCall(name, tuple(arguments), distinct)

        parts = [name]
        while self._check_operator(".") and self._peek(1).type in (
            TokenType.IDENTIFIER,
            TokenType.QUOTED_IDENTIFIER,
        ):
            self._advance()
            parts.append(self._identifier())
        if self._check_operator(".") and self._peek(1).text == "*":
            self._advance()
            self._advance()
            return ast.Star(qualifier=".".join(parts))
        return ast.Identifier(tuple(parts))

    def _case_expression(self) -> ast.Expression:
        when_clauses: list[tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("when"):
            condition = self.parse_expression()
            self._expect_keyword("then")
            value = self.parse_expression()
            when_clauses.append((condition, value))
        if not when_clauses:
            token = self._peek()
            raise SyntaxError_("CASE requires at least one WHEN", token.line, token.column)
        default = None
        if self._accept_keyword("else"):
            default = self.parse_expression()
        self._expect_keyword("end")
        return ast.CaseExpression(tuple(when_clauses), default)

    def _is_lambda_parameters(self) -> bool:
        """Look ahead past '(' for ``ident (, ident)* ) ->``."""
        offset = 0
        while True:
            if self._peek(offset).type not in (TokenType.IDENTIFIER, TokenType.QUOTED_IDENTIFIER):
                return False
            offset += 1
            token = self._peek(offset)
            if token.type is TokenType.OPERATOR and token.text == ",":
                offset += 1
                continue
            if token.type is TokenType.OPERATOR and token.text == ")":
                offset += 1
                after = self._peek(offset)
                return after.type is TokenType.OPERATOR and after.text == "->"
            return False

    def _lambda_expression(self) -> ast.Expression:
        parameters = [self._identifier()]
        while self._accept_operator(","):
            parameters.append(self._identifier())
        self._expect_operator(")")
        self._expect_operator("->")
        body = self.parse_expression()
        return ast.LambdaExpression(tuple(parameters), body)

    def _type_text(self) -> str:
        """Consume tokens forming a type expression and return their text."""
        parts: list[str] = [self._identifier()]
        if self._check_operator("("):
            depth = 0
            while True:
                token = self._peek()
                if token.type is TokenType.END:
                    raise SyntaxError_("unterminated type expression", token.line, token.column)
                if self._check_operator("("):
                    depth += 1
                elif self._check_operator(")"):
                    depth -= 1
                    if depth == 0:
                        parts.append(self._advance().text)
                        break
                parts.append(self._advance().text)
                if self._check_operator(","):
                    continue
        return _join_type_tokens(parts)


def _join_type_tokens(parts: list[str]) -> str:
    """Join type tokens with minimal spacing: ``row(a bigint, b varchar)``."""
    out: list[str] = []
    for i, part in enumerate(parts):
        if part in ("(", ")", ","):
            out.append(part)
        else:
            if out and out[-1] not in ("(",) and not out[-1].endswith(","):
                if out[-1] in (")",):
                    out.append(" ")
                elif out[-1] not in ("(",):
                    out.append(" ")
            out.append(part)
    text = "".join(out)
    # Normalize ", " after commas for readability.
    return text.replace(" ,", ",").replace(",", ", ").replace("  ", " ").replace("( ", "(").strip()
