"""Simulated Amazon S3: an object store with latency and failure injection.

Models the S3 behaviours the paper's PrestoS3FileSystem optimizations
target (section IX): per-request latency (so avoided requests are visible),
range GETs (so lazy seek saves work), transient throttling errors (so
exponential backoff is exercised), S3 Select (server-side projection and
filtering), and multipart uploads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.common.errors import StorageError
from repro.storage.filesystem import observe_storage_call


class S3ServerError(StorageError):
    """Transient 5xx/throttling failure; the caller should back off."""


@dataclass(frozen=True)
class S3Object:
    key: str
    size: int
    last_modified_ms: float = 0.0


@dataclass
class S3Stats:
    get_requests: int = 0
    put_requests: int = 0
    list_requests: int = 0
    head_requests: int = 0
    select_requests: int = 0
    multipart_part_uploads: int = 0
    bytes_downloaded: int = 0
    bytes_uploaded: int = 0
    failed_requests: int = 0

    def total_requests(self) -> int:
        return (
            self.get_requests
            + self.put_requests
            + self.list_requests
            + self.head_requests
            + self.select_requests
            + self.multipart_part_uploads
        )

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


class S3Client:
    """The simulated S3 service endpoint.

    ``failure_injector`` is called before each request with the operation
    name; returning True makes that request fail with
    :class:`S3ServerError` (used by the backoff experiments).
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        request_latency_ms: float = 10.0,
        transfer_ms_per_mb: float = 20.0,
        failure_injector: Optional[Callable[[str], bool]] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.request_latency_ms = request_latency_ms
        self.transfer_ms_per_mb = transfer_ms_per_mb
        self.failure_injector = failure_injector
        self.stats = S3Stats()
        self.metrics = None
        self._objects: dict[tuple[str, str], bytes] = {}
        self._mtimes: dict[tuple[str, str], float] = {}
        self._multipart: dict[str, dict] = {}
        self._next_upload_id = 0

    # -- internals ------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Report future requests into ``metrics``."""
        self.metrics = metrics

    def _request(self, operation: str, payload_bytes: int = 0) -> None:
        if self.failure_injector is not None and self.failure_injector(operation):
            self.stats.failed_requests += 1
            self.clock.advance(self.request_latency_ms)
            observe_storage_call(
                "s3", operation, self.request_latency_ms, self.metrics, failed=True
            )
            raise S3ServerError(f"S3 {operation}: service unavailable (injected)")
        latency = (
            self.request_latency_ms + self.transfer_ms_per_mb * payload_bytes / 1_000_000
        )
        self.clock.advance(latency)
        observe_storage_call("s3", operation, latency, self.metrics)

    def _require(self, bucket: str, key: str) -> bytes:
        data = self._objects.get((bucket, key))
        if data is None:
            raise StorageError(f"S3: no such object s3://{bucket}/{key}")
        return data

    # -- object API --------------------------------------------------------------

    def put_object(self, bucket: str, key: str, data: bytes) -> None:
        self._request("PutObject", len(data))
        self.stats.put_requests += 1
        self.stats.bytes_uploaded += len(data)
        self._objects[(bucket, key)] = data
        self._mtimes[(bucket, key)] = self.clock.now_ms()

    def get_object(
        self, bucket: str, key: str, byte_range: Optional[tuple[int, int]] = None
    ) -> bytes:
        data = self._require(bucket, key)
        if byte_range is not None:
            start, end = byte_range
            chunk = data[start:end]
        else:
            chunk = data
        self._request("GetObject", len(chunk))
        self.stats.get_requests += 1
        self.stats.bytes_downloaded += len(chunk)
        return chunk

    def head_object(self, bucket: str, key: str) -> S3Object:
        data = self._require(bucket, key)
        self._request("HeadObject")
        self.stats.head_requests += 1
        return S3Object(key, len(data), self._mtimes.get((bucket, key), 0.0))

    def list_objects(self, bucket: str, prefix: str = "") -> list[S3Object]:
        self._request("ListObjectsV2")
        self.stats.list_requests += 1
        return [
            S3Object(key, len(data), self._mtimes.get((b, key), 0.0))
            for (b, key), data in sorted(self._objects.items())
            if b == bucket and key.startswith(prefix)
        ]

    def delete_object(self, bucket: str, key: str) -> None:
        self._request("DeleteObject")
        self._objects.pop((bucket, key), None)
        self._mtimes.pop((bucket, key), None)

    # -- S3 Select ------------------------------------------------------------------

    def select_object_content(
        self,
        bucket: str,
        key: str,
        projection: Sequence[int],
        predicate: Optional[Callable[[list[str]], bool]] = None,
        delimiter: str = ",",
    ) -> list[list[str]]:
        """Server-side scan of a CSV object: project columns, filter rows.

        Only the *result* bytes are charged as transfer — that is the whole
        point of pushing projections "directly to Amazon S3 to get optimal
        performance" (section IX).
        """
        data = self._require(bucket, key)
        rows: list[list[str]] = []
        result_bytes = 0
        for line in data.decode("utf-8").splitlines():
            if not line:
                continue
            fields = line.split(delimiter)
            if predicate is not None and not predicate(fields):
                continue
            selected = [fields[i] for i in projection]
            result_bytes += sum(len(f) for f in selected)
            rows.append(selected)
        self._request("SelectObjectContent", result_bytes)
        self.stats.select_requests += 1
        self.stats.bytes_downloaded += result_bytes
        return rows

    # -- multipart upload -----------------------------------------------------------

    def create_multipart_upload(self, bucket: str, key: str) -> str:
        self._request("CreateMultipartUpload")
        upload_id = f"upload-{self._next_upload_id}"
        self._next_upload_id += 1
        self._multipart[upload_id] = {"bucket": bucket, "key": key, "parts": {}}
        return upload_id

    def upload_part(self, upload_id: str, part_number: int, data: bytes) -> None:
        if upload_id not in self._multipart:
            raise StorageError(f"S3: unknown multipart upload {upload_id}")
        # The request itself is charged here; the *parallel* wall-clock
        # benefit is modeled by the caller via clock.parallel_advance.
        if self.failure_injector is not None and self.failure_injector("UploadPart"):
            self.stats.failed_requests += 1
            raise S3ServerError("S3 UploadPart: service unavailable (injected)")
        self.stats.multipart_part_uploads += 1
        self.stats.bytes_uploaded += len(data)
        self._multipart[upload_id]["parts"][part_number] = data

    def part_upload_cost_ms(self, part_size: int) -> float:
        return self.request_latency_ms + self.transfer_ms_per_mb * part_size / 1_000_000

    def complete_multipart_upload(self, upload_id: str) -> None:
        upload = self._multipart.pop(upload_id, None)
        if upload is None:
            raise StorageError(f"S3: unknown multipart upload {upload_id}")
        self._request("CompleteMultipartUpload")
        assembled = b"".join(
            data for _, data in sorted(upload["parts"].items())
        )
        self._objects[(upload["bucket"], upload["key"])] = assembled
        self._mtimes[(upload["bucket"], upload["key"])] = self.clock.now_ms()

    def abort_multipart_upload(self, upload_id: str) -> None:
        self._multipart.pop(upload_id, None)
