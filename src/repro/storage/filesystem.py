"""The FileSystem interface shared by HDFS and PrestoS3FileSystem.

Mirrors the Hadoop FileSystem API surface Presto uses: ``list_files``
(NameNode listFiles), ``get_file_info`` (getFileInfo), ``open`` for reads,
``create`` for writes.  Both simulated backends implement it so the Hive
connector and the caches are storage-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.trace import current_tracer


def observe_storage_call(
    system: str, operation: str, sim_ms: float, metrics=None, **attributes
) -> None:
    """Account one simulated storage round trip.

    Attaches an instant ``storage`` span to whatever query trace is active
    (storage substrates are deep below the scheduler, so the tracer is
    discovered rather than threaded), and mirrors the call into
    ``storage_requests_total{system,operation}`` /
    ``storage_simulated_ms_total{system}`` when a registry is bound.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.instant(
            "storage", system=system, operation=operation, sim_ms=sim_ms,
            **attributes,
        )
    if metrics is not None:
        metrics.counter(
            "storage_requests_total", system=system, operation=operation
        ).inc()
        metrics.counter("storage_simulated_ms_total", system=system).inc(sim_ms)


@dataclass(frozen=True)
class FileStatus:
    """Metadata for one file, as returned by listFiles/getFileInfo."""

    path: str
    size: int
    modification_time_ms: float = 0.0
    is_directory: bool = False


class SeekableInput:
    """A readable, seekable stream over one file."""

    def read(self, length: int) -> bytes:
        raise NotImplementedError

    def seek(self, position: int) -> None:
        raise NotImplementedError

    def tell(self) -> int:
        raise NotImplementedError

    def size(self) -> int:
        raise NotImplementedError

    def read_fully(self, position: int, length: int) -> bytes:
        self.seek(position)
        return self.read(length)

    def close(self) -> None:
        pass

    def __enter__(self) -> "SeekableInput":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class FileSystem:
    """Minimal Hadoop-style filesystem interface."""

    def list_files(self, directory: str) -> list[FileStatus]:
        """List the files directly under ``directory`` (listFiles)."""
        raise NotImplementedError

    def get_file_info(self, path: str) -> FileStatus:
        """Return one file's status (getFileInfo)."""
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def open(self, path: str) -> SeekableInput:
        raise NotImplementedError

    def create(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def delete(self, path: str) -> None:
        raise NotImplementedError


class BytesInput(SeekableInput):
    """Seekable stream over an in-memory byte buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def read(self, length: int) -> bytes:
        chunk = self._data[self._pos : self._pos + length]
        self._pos += len(chunk)
        return chunk

    def seek(self, position: int) -> None:
        if position < 0 or position > len(self._data):
            raise ValueError(f"seek out of range: {position}")
        self._pos = position

    def tell(self) -> int:
        return self._pos

    def size(self) -> int:
        return len(self._data)
