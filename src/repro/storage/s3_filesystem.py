"""PrestoS3FileSystem: a FileSystem API on top of Amazon S3 (section IX).

Implements the paper's four optimizations:

1. **Lazy seek** — ``seek`` only records the target offset; the range GET
   happens at the next ``read``, so consecutive seeks and seeks that are
   never read cost no requests.
2. **Exponential backoff** — transient S3 errors are retried with
   exponentially growing delays (charged to the simulated clock).
3. **S3 Select** — projections are pushed down so only selected bytes
   leave S3.
4. **Multipart upload** — large objects upload as parallel parts,
   improving throughput and recovery time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.common.errors import StorageError
from repro.storage.filesystem import FileStatus, FileSystem, SeekableInput
from repro.storage.s3 import S3Client, S3ServerError


@dataclass
class S3FileSystemStats:
    """Filesystem-level counters, distinct from raw S3 request stats."""

    seeks_requested: int = 0
    seeks_materialized: int = 0
    retries: int = 0
    backoff_ms_total: float = 0.0
    multipart_uploads: int = 0
    single_part_uploads: int = 0


class PrestoS3FileSystem(FileSystem):
    """FileSystem over S3 with lazy seek, backoff, select, multipart."""

    def __init__(
        self,
        client: S3Client,
        bucket: str,
        lazy_seek: bool = True,
        max_retries: int = 8,
        backoff_base_ms: float = 100.0,
        backoff_max_ms: float = 10_000.0,
        multipart_threshold: int = 16 * 1024 * 1024,
        multipart_part_size: int = 8 * 1024 * 1024,
        read_buffer_size: int = 1024 * 1024,
    ) -> None:
        self.client = client
        self.bucket = bucket
        self.lazy_seek = lazy_seek
        self.max_retries = max_retries
        self.backoff_base_ms = backoff_base_ms
        self.backoff_max_ms = backoff_max_ms
        self.multipart_threshold = multipart_threshold
        self.multipart_part_size = multipart_part_size
        self.read_buffer_size = read_buffer_size
        self.stats = S3FileSystemStats()

    # -- retry with exponential backoff ------------------------------------

    def _with_backoff(self, operation: Callable[[], object]):
        attempt = 0
        while True:
            try:
                return operation()
            except S3ServerError:
                if attempt >= self.max_retries:
                    raise
                delay = min(
                    self.backoff_base_ms * (2**attempt), self.backoff_max_ms
                )
                self.client.clock.advance(delay)
                self.stats.retries += 1
                self.stats.backoff_ms_total += delay
                attempt += 1

    # -- FileSystem API ------------------------------------------------------

    def list_files(self, directory: str) -> list[FileStatus]:
        prefix = directory.strip("/")
        if prefix:
            prefix += "/"
        objects = self._with_backoff(lambda: self.client.list_objects(self.bucket, prefix))
        return [
            FileStatus(f"/{o.key}", o.size, o.last_modified_ms) for o in objects
        ]

    def get_file_info(self, path: str) -> FileStatus:
        key = path.lstrip("/")
        obj = self._with_backoff(lambda: self.client.head_object(self.bucket, key))
        return FileStatus(path, obj.size, obj.last_modified_ms)

    def exists(self, path: str) -> bool:
        try:
            self.get_file_info(path)
            return True
        except StorageError:
            return False

    def open(self, path: str) -> "S3Input":
        key = path.lstrip("/")
        size = self.get_file_info(path).size
        return S3Input(self, key, size)

    def create(self, path: str, data: bytes) -> None:
        key = path.lstrip("/")
        if len(data) < self.multipart_threshold:
            self.stats.single_part_uploads += 1
            self._with_backoff(lambda: self.client.put_object(self.bucket, key, data))
            return
        # Multipart: parts upload in parallel, so wall-clock cost is the
        # slowest part, not the sum (section IX optimization 4).
        self.stats.multipart_uploads += 1
        upload_id = self._with_backoff(
            lambda: self.client.create_multipart_upload(self.bucket, key)
        )
        part_costs: list[float] = []
        part_number = 0
        for start in range(0, len(data), self.multipart_part_size):
            part = data[start : start + self.multipart_part_size]
            part_number += 1
            number = part_number
            self._with_backoff(lambda: self.client.upload_part(upload_id, number, part))
            part_costs.append(self.client.part_upload_cost_ms(len(part)))
        self.client.clock.parallel_advance(part_costs)
        self._with_backoff(lambda: self.client.complete_multipart_upload(upload_id))

    def delete(self, path: str) -> None:
        key = path.lstrip("/")
        self._with_backoff(lambda: self.client.delete_object(self.bucket, key))

    # -- S3 Select passthrough ------------------------------------------------

    def select(
        self,
        path: str,
        projection: Sequence[int],
        predicate: Optional[Callable[[list[str]], bool]] = None,
    ) -> list[list[str]]:
        key = path.lstrip("/")
        return self._with_backoff(
            lambda: self.client.select_object_content(self.bucket, key, projection, predicate)
        )


class S3Input(SeekableInput):
    """Seekable S3 read stream with lazy seek.

    With ``lazy_seek`` (the default), ``seek`` records the target and the
    range GET is issued only when ``read`` needs bytes; without it, every
    seek immediately refills the buffer — the pre-optimization behaviour.
    """

    def __init__(self, fs: PrestoS3FileSystem, key: str, size: int) -> None:
        self._fs = fs
        self._key = key
        self._size = size
        self._position = 0
        # Current buffered window: [buffer_start, buffer_start + len(buffer))
        self._buffer = b""
        self._buffer_start = 0

    def size(self) -> int:
        return self._size

    def tell(self) -> int:
        return self._position

    def seek(self, position: int) -> None:
        if position < 0 or position > self._size:
            raise ValueError(f"seek out of range: {position}")
        self._fs.stats.seeks_requested += 1
        self._position = position
        if not self._fs.lazy_seek:
            # Eager behaviour: materialize the new window immediately.
            self._fill(position)

    def _fill(self, position: int) -> None:
        self._fs.stats.seeks_materialized += 1
        end = min(position + self._fs.read_buffer_size, self._size)
        self._buffer = self._fs._with_backoff(
            lambda: self._fs.client.get_object(
                self._fs.bucket, self._key, (position, end)
            )
        )
        self._buffer_start = position

    def read(self, length: int) -> bytes:
        result = bytearray()
        while length > 0 and self._position < self._size:
            in_buffer = self._position - self._buffer_start
            if 0 <= in_buffer < len(self._buffer):
                chunk = self._buffer[in_buffer : in_buffer + length]
            else:
                self._fill(self._position)
                chunk = self._buffer[: length]
            if not chunk:
                break
            result.extend(chunk)
            self._position += len(chunk)
            length -= len(chunk)
        return bytes(result)
