"""Simulated HDFS: a NameNode with call accounting and latency modeling.

Section VII: "the single Hadoop Distributed File System (HDFS) NameNode
listFiles performance degradation could hurt Presto performance badly."
The NameNode here counts every ``listFiles`` / ``getFileInfo`` call and
charges per-call latency to the simulated clock; the file-list and footer
caches are evaluated by how many of those calls they eliminate.

The NameNode also models load-dependent degradation: latency grows with
the call rate, reproducing the "listFiles stuck" incidents of section
XII.D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.clock import SimulatedClock
from repro.common.errors import StorageError
from repro.storage.filesystem import (
    BytesInput,
    FileStatus,
    FileSystem,
    SeekableInput,
    observe_storage_call,
)


@dataclass
class NameNodeStats:
    list_files_calls: int = 0
    get_file_info_calls: int = 0
    open_calls: int = 0

    def reset(self) -> None:
        self.list_files_calls = 0
        self.get_file_info_calls = 0
        self.open_calls = 0


class NameNode:
    """HDFS metadata server with per-call latency and overload degradation.

    ``list_files_latency_ms`` applies per listFiles call plus a per-entry
    component (big directories are slower to list).  When the metadata
    call rate within the last simulated second exceeds
    ``degradation_threshold_calls_per_sec``, latency multiplies — the
    "single HDFS NameNode listFiles performance degradation [that] could
    hurt Presto performance badly" (sections VII, XII.D).
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        list_files_latency_ms: float = 20.0,
        per_entry_latency_ms: float = 0.01,
        get_file_info_latency_ms: float = 2.0,
        degradation_threshold_calls_per_sec: int = 1000,
        degradation_factor: float = 10.0,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.list_files_latency_ms = list_files_latency_ms
        self.per_entry_latency_ms = per_entry_latency_ms
        self.get_file_info_latency_ms = get_file_info_latency_ms
        self.degradation_threshold_calls_per_sec = degradation_threshold_calls_per_sec
        self.degradation_factor = degradation_factor
        self.stats = NameNodeStats()
        self.metrics = None
        # path → FileStatus for files; directories implied by prefixes
        self._files: dict[str, FileStatus] = {}
        self._data: dict[str, bytes] = {}
        from collections import deque

        self._recent_calls: "deque[float]" = deque()

    def bind_metrics(self, metrics) -> None:
        """Report future metadata RPCs into ``metrics``."""
        self.metrics = metrics

    def _overload_multiplier(self) -> float:
        """Latency multiplier based on the last simulated second's rate."""
        now = self.clock.now_ms()
        self._recent_calls.append(now)
        while self._recent_calls and self._recent_calls[0] < now - 1_000.0:
            self._recent_calls.popleft()
        if len(self._recent_calls) > self.degradation_threshold_calls_per_sec:
            return self.degradation_factor
        return 1.0

    # -- namespace management ------------------------------------------------

    def put_file(self, path: str, data: bytes, modification_time_ms: float = 0.0) -> None:
        path = _normalize(path)
        self._files[path] = FileStatus(path, len(data), modification_time_ms)
        self._data[path] = data

    def delete_file(self, path: str) -> None:
        path = _normalize(path)
        self._files.pop(path, None)
        self._data.pop(path, None)

    def file_data(self, path: str) -> bytes:
        path = _normalize(path)
        if path not in self._data:
            raise StorageError(f"HDFS: no such file {path}")
        return self._data[path]

    # -- metadata RPCs (the calls the caches eliminate) -------------------------

    def list_files(self, directory: str) -> list[FileStatus]:
        self.stats.list_files_calls += 1
        multiplier = self._overload_multiplier()
        directory = _normalize(directory).rstrip("/") + "/"
        entries = [
            status
            for path, status in sorted(self._files.items())
            if path.startswith(directory) and "/" not in path[len(directory) :]
        ]
        latency = multiplier * (
            self.list_files_latency_ms + self.per_entry_latency_ms * len(entries)
        )
        self.clock.advance(latency)
        observe_storage_call(
            "hdfs", "listFiles", latency, self.metrics, entries=len(entries)
        )
        return entries

    def get_file_info(self, path: str) -> FileStatus:
        self.stats.get_file_info_calls += 1
        latency = self.get_file_info_latency_ms * self._overload_multiplier()
        self.clock.advance(latency)
        observe_storage_call("hdfs", "getFileInfo", latency, self.metrics)
        path = _normalize(path)
        status = self._files.get(path)
        if status is None:
            raise StorageError(f"HDFS: no such file {path}")
        return status

    def exists(self, path: str) -> bool:
        path = _normalize(path)
        if path in self._files:
            return True
        prefix = path.rstrip("/") + "/"
        return any(p.startswith(prefix) for p in self._files)


class HdfsFileSystem(FileSystem):
    """FileSystem facade over a NameNode (+ implicit datanodes)."""

    def __init__(
        self,
        namenode: Optional[NameNode] = None,
        read_latency_ms_per_mb: float = 5.0,
    ) -> None:
        self.namenode = namenode or NameNode()
        self.read_latency_ms_per_mb = read_latency_ms_per_mb

    @property
    def clock(self) -> SimulatedClock:
        return self.namenode.clock

    def list_files(self, directory: str) -> list[FileStatus]:
        return self.namenode.list_files(directory)

    def get_file_info(self, path: str) -> FileStatus:
        return self.namenode.get_file_info(path)

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def open(self, path: str) -> SeekableInput:
        self.namenode.stats.open_calls += 1
        data = self.namenode.file_data(path)
        latency = self.read_latency_ms_per_mb * len(data) / 1_000_000
        self.clock.advance(latency)
        observe_storage_call(
            "hdfs", "open", latency, self.namenode.metrics, bytes=len(data)
        )
        return BytesInput(data)

    def create(self, path: str, data: bytes) -> None:
        self.namenode.put_file(path, data, self.clock.now_ms())

    def delete(self, path: str) -> None:
        self.namenode.delete_file(path)


def _normalize(path: str) -> str:
    if path.startswith("hdfs://"):
        path = path[len("hdfs://") :]
        path = path[path.index("/") :] if "/" in path else "/"
    if not path.startswith("/"):
        path = "/" + path
    return path
