"""Simulated storage substrates: filesystem interface, HDFS, S3.

These stand in for the remote storage systems of the paper's deployments.
They hold real data (in memory) and charge modeled latencies to the
simulated clock, so cache/IO experiments measure genuine calls avoided.
"""

from repro.storage.filesystem import FileStatus, FileSystem
from repro.storage.hdfs import HdfsFileSystem, NameNode
from repro.storage.s3 import S3Client, S3Object, S3ServerError
from repro.storage.s3_filesystem import PrestoS3FileSystem, S3FileSystemStats

__all__ = [
    "FileStatus",
    "FileSystem",
    "HdfsFileSystem",
    "NameNode",
    "S3Client",
    "S3Object",
    "S3ServerError",
    "PrestoS3FileSystem",
    "S3FileSystemStats",
]
