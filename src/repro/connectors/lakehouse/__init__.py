"""Update-able data lake tables (section IV).

"We also implemented Presto-Iceberg-connector and Presto-Hoodie-connector,
which enables Presto querying update-able data lakes."  This package
implements an Iceberg-style table format — snapshot-versioned manifests
over immutable Parquet data files with copy-on-write row-level updates and
deletes — plus its Presto connector with snapshot time travel.
"""

from repro.connectors.lakehouse.table_format import IcebergTable, Snapshot
from repro.connectors.lakehouse.connector import IcebergConnector

__all__ = ["IcebergTable", "Snapshot", "IcebergConnector"]
