"""The Presto-Iceberg connector: querying update-able data lakes.

Tables resolve by name; time travel uses the Iceberg-style suffix
``table$snapshot=<id>`` to pin a historical snapshot.  Scans split per
data file; predicate pushdown reaches the Parquet reader as in the Hive
connector.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.connectors.lakehouse.table_format import IcebergTable
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.expressions import (
    RowExpression,
    and_,
    expression_from_dict,
)
from repro.core.page import Page
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.reader_new import NewParquetReader

SNAPSHOT_SUFFIX = "$snapshot="


class IcebergConnector(Connector):
    """Connector over a set of registered :class:`IcebergTable` objects."""

    name = "iceberg"

    def __init__(self, schema_name: str = "lake") -> None:
        self.schema_name = schema_name
        self._tables: dict[str, IcebergTable] = {}
        self._metadata = _IcebergMetadata(self)
        self._split_manager = _IcebergSplitManager(self)
        self._provider = _IcebergProvider(self)

    def register_table(self, name: str, table: IcebergTable) -> None:
        self._tables[name] = table

    def table(self, name: str) -> IcebergTable:
        table = self._tables.get(name)
        if table is None:
            raise ConnectorError(f"iceberg: no table {name!r}")
        return table

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider


def _parse_table_name(name: str) -> tuple[str, Optional[int]]:
    """``trips$snapshot=3`` → ("trips", 3); plain names → (name, None)."""
    if SNAPSHOT_SUFFIX in name:
        base, _, snapshot = name.partition(SNAPSHOT_SUFFIX)
        try:
            return base, int(snapshot)
        except ValueError as error:
            raise ConnectorError(f"bad snapshot id in {name!r}") from error
    return name, None


class _IcebergMetadata(ConnectorMetadata):
    def __init__(self, connector: IcebergConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [self._connector.schema_name]

    def list_tables(self, schema_name: str) -> list[str]:
        return sorted(self._connector._tables)

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        base, snapshot_id = _parse_table_name(table_name)
        if base not in self._connector._tables:
            return None
        if snapshot_id is not None:
            # Validate eagerly so bad snapshot ids fail at analysis time.
            self._connector.table(base).snapshot(snapshot_id)
        return ConnectorTableHandle(schema_name, table_name)

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        base, _ = _parse_table_name(handle.table_name)
        table = self._connector.table(base)
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(ColumnMetadata(n, t) for n, t in table.columns),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        base, _ = _parse_table_name(handle.table_name)
        columns = {n for n, _ in self._connector.table(base).columns}
        if not all(v.name in columns for v in predicate.variables()):
            return None
        if handle.constraint is not None:
            predicate = and_(expression_from_dict(handle.constraint), predicate)
        return FilterPushdownResult(handle.with_(constraint=predicate.to_dict()), None)

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        return handle.with_(projected_columns=tuple(columns))


class _IcebergSplitManager(ConnectorSplitManager):
    def __init__(self, connector: IcebergConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        base, snapshot_id = _parse_table_name(handle.table_name)
        table = self._connector.table(base)
        snapshot, files = table.scan_files(snapshot_id)
        return [
            ConnectorSplit(
                split_id=f"iceberg:{data_file.path}@{snapshot.snapshot_id}",
                info=(
                    ("path", data_file.path),
                    ("data_version", snapshot.snapshot_id),
                ),
            )
            for data_file in files
        ] or [
            ConnectorSplit(
                split_id=f"iceberg:{base}@{snapshot.snapshot_id}:empty",
                info=(("path", ""), ("data_version", snapshot.snapshot_id)),
            )
        ]


class _IcebergProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: IcebergConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        base, _ = _parse_table_name(handle.table_name)
        table = self._connector.table(base)
        path = split.info_dict()["path"]
        column_types = dict(table.columns)
        if not path:
            yield Page.from_columns(
                [column_types[c.split(".")[0]] for c in columns], [[] for _ in columns]
            )
            return
        file = ParquetFile(table.filesystem.open(path))
        predicate = (
            expression_from_dict(handle.constraint)
            if handle.constraint is not None
            else None
        )
        reader = NewParquetReader(file, list(columns), predicate=predicate)
        produced = False
        for page in reader.read_pages():
            produced = True
            yield page
        if not produced:
            yield Page.from_columns(
                [column_types[c.split(".")[0]] for c in columns], [[] for _ in columns]
            )
