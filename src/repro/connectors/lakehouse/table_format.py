"""An Iceberg-style table format: snapshots over immutable data files.

Structure on the (simulated) filesystem::

    <location>/data/<uuid>.parquet     immutable data files
    <location>/metadata/...            (implicit: kept in memory here)

Every mutation — append, overwrite-where (update), delete-where — commits
a new :class:`Snapshot` listing the exact set of live data files.  Readers
pin a snapshot, so queries are isolated from concurrent writes and *time
travel* to any historical snapshot is free.  Updates and deletes use
copy-on-write: affected files are rewritten without the matching rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.core.blocks import Block
from repro.core.evaluator import Evaluator
from repro.core.expressions import RowExpression
from repro.core.page import Page
from repro.core.types import PrestoType
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.storage.filesystem import FileSystem


@dataclass(frozen=True)
class DataFile:
    """One immutable data file tracked by a manifest."""

    path: str
    row_count: int


@dataclass(frozen=True)
class Snapshot:
    """One committed table version: the set of live data files.

    ``properties`` is the snapshot summary — small string key/value pairs
    committed atomically with the file list (Iceberg's snapshot summary
    map).  The streaming pipeline stores its sealed offset watermark here,
    which is what makes hybrid reads exactly-once: a row's visibility is
    decided by one atomically-committed value, never by two systems
    agreeing.
    """

    snapshot_id: int
    operation: str  # 'append' | 'overwrite' | 'delete'
    files: tuple[DataFile, ...]
    parent_id: Optional[int] = None
    properties: tuple[tuple[str, str], ...] = ()

    @property
    def row_count(self) -> int:
        return sum(f.row_count for f in self.files)

    def properties_dict(self) -> dict[str, str]:
        return dict(self.properties)


class IcebergTable:
    """A snapshot-versioned table over immutable Parquet files."""

    def __init__(
        self,
        filesystem: FileSystem,
        location: str,
        columns: Sequence[tuple[str, PrestoType]],
        row_group_size: int = 10_000,
    ) -> None:
        self.filesystem = filesystem
        self.location = location.rstrip("/")
        self.columns = list(columns)
        self.schema = ParquetSchema(self.columns)
        self.row_group_size = row_group_size
        self._snapshots: list[Snapshot] = [Snapshot(0, "create", ())]
        self._file_ids = itertools.count()
        self._evaluator = Evaluator()

    # -- snapshot access -----------------------------------------------------

    def current_snapshot(self) -> Snapshot:
        return self._snapshots[-1]

    def snapshot(self, snapshot_id: int) -> Snapshot:
        for snapshot in self._snapshots:
            if snapshot.snapshot_id == snapshot_id:
                return snapshot
        raise ConnectorError(f"no snapshot {snapshot_id} in {self.location}")

    def history(self) -> list[Snapshot]:
        return list(self._snapshots)

    def _commit(
        self,
        operation: str,
        files: Sequence[DataFile],
        properties: Sequence[tuple[str, str]] = (),
    ) -> Snapshot:
        parent = self.current_snapshot()
        snapshot = Snapshot(
            parent.snapshot_id + 1,
            operation,
            tuple(files),
            parent.snapshot_id,
            tuple(properties),
        )
        self._snapshots.append(snapshot)
        return snapshot

    # -- writes ----------------------------------------------------------------

    def write_data_file(self, rows: Sequence[tuple]) -> DataFile:
        page = Page.from_rows([t for _, t in self.columns], list(rows))
        blob = NativeParquetWriter(
            self.schema, row_group_size=self.row_group_size
        ).write_pages([page])
        path = f"{self.location}/data/{next(self._file_ids):08d}.parquet"
        self.filesystem.create(path, blob)
        return DataFile(path, len(rows))

    def append(
        self,
        rows: Sequence[tuple],
        properties: Sequence[tuple[str, str]] = (),
    ) -> Snapshot:
        """Append rows as a new data file (fast, no rewrites)."""
        if not rows:
            return self._commit("append", self.current_snapshot().files, properties)
        new_file = self.write_data_file(rows)
        return self.commit_add_files([new_file], properties=properties)

    def commit_add_files(
        self,
        new_files: Sequence[DataFile],
        operation: str = "append",
        properties: Sequence[tuple[str, str]] = (),
    ) -> Snapshot:
        """Atomically commit already-written data files as a new snapshot.

        The write/commit split is what gives writers (the streaming
        compactor) a real commit point: a crash after :meth:`write_data_file`
        but before this call leaves an orphan file the table never
        references — invisible to every reader, exactly like an aborted
        Iceberg commit.
        """
        return self._commit(
            operation, self.current_snapshot().files + tuple(new_files), properties
        )

    def delete_where(self, predicate: RowExpression) -> Snapshot:
        """Row-level delete: copy-on-write rewrite of affected files."""
        return self._rewrite(predicate, update=None, operation="delete")

    def update_where(
        self,
        predicate: RowExpression,
        update: Callable[[tuple], tuple],
    ) -> Snapshot:
        """Row-level update: matching rows are transformed, others kept."""
        return self._rewrite(predicate, update=update, operation="overwrite")

    def _rewrite(
        self,
        predicate: RowExpression,
        update: Optional[Callable[[tuple], tuple]],
        operation: str,
    ) -> Snapshot:
        column_names = [n for n, _ in self.columns]
        kept_files: list[DataFile] = []
        rewritten: list[DataFile] = []
        for data_file in self.current_snapshot().files:
            rows = self.read_file_rows(data_file)
            matches = self._matching_mask(rows, predicate)
            if not any(matches):
                kept_files.append(data_file)  # untouched files stay as-is
                continue
            new_rows: list[tuple] = []
            for row, matched in zip(rows, matches):
                if not matched:
                    new_rows.append(row)
                elif update is not None:
                    new_rows.append(update(row))
            if new_rows:
                rewritten.append(self.write_data_file(new_rows))
        return self._commit(operation, kept_files + rewritten)

    # -- reads ---------------------------------------------------------------------

    def read_file_rows(self, data_file: DataFile) -> list[tuple]:
        file = ParquetFile(self.filesystem.open(data_file.path))
        reader = NewParquetReader(file, [n for n, _ in self.columns])
        return [row for page in reader.read_pages() for row in page.loaded().rows()]

    def _matching_mask(
        self, rows: list[tuple], predicate: RowExpression
    ) -> list[bool]:
        from repro.core.blocks import block_from_values

        if not rows:
            return []
        bindings: dict[str, Block] = {}
        for index, (name, presto_type) in enumerate(self.columns):
            bindings[name] = block_from_values(
                presto_type, [row[index] for row in rows]
            )
        mask = self._evaluator.filter_mask(predicate, bindings, len(rows))
        return [bool(m) for m in mask]

    def scan_files(self, snapshot_id: Optional[int] = None) -> tuple[Snapshot, tuple[DataFile, ...]]:
        snapshot = (
            self.current_snapshot() if snapshot_id is None else self.snapshot(snapshot_id)
        )
        return snapshot, snapshot.files
