"""Presto connectors: unified SQL on heterogeneous storage without data copy.

Section IV: a connector provides ``ConnectorMetadata`` (schemas/tables/
columns), ``ConnectorSplitManager`` (how data divides into parallel splits),
``ConnectorSplit`` (one processing unit), and
``ConnectorRecordSetProvider`` (how streams become Presto pages).  Tables
are addressed as ``catalog.schema.table`` where the catalog names the
connector instance.

Pushdown (IV.A/IV.B) is negotiated through the metadata interface: the
optimizer offers filters, projections, limits and aggregations as
serialized RowExpressions and the connector absorbs what its storage can
evaluate natively.
"""

from repro.connectors.spi import (
    Catalog,
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    AggregationFunction,
    AggregationPushdownResult,
    FilterPushdownResult,
    TableMetadata,
)
from repro.connectors.memory import MemoryConnector

__all__ = [
    "Catalog",
    "ColumnMetadata",
    "Connector",
    "ConnectorMetadata",
    "ConnectorRecordSetProvider",
    "ConnectorSplit",
    "ConnectorSplitManager",
    "ConnectorTableHandle",
    "AggregationFunction",
    "AggregationPushdownResult",
    "FilterPushdownResult",
    "TableMetadata",
    "MemoryConnector",
]
