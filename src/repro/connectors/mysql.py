"""Simulated MySQL server and the Presto-MySQL connector.

"MySQL is used widely in all companies with transaction support" (section
IV).  The simulated server is a row store that can evaluate arbitrary
predicates, projections and limits server-side; the connector pushes all
three down so "only filtered, projected, and limited rows" stream into the
engine — tables are addressed as ``mysql.schemaName.tableName``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.common.errors import ConnectorError
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.blocks import PrimitiveBlock
from repro.core.evaluator import Evaluator
from repro.core.expressions import RowExpression, and_, expression_from_dict
from repro.core.page import Page
from repro.core.types import PrestoType


@dataclass
class MySqlStats:
    queries: int = 0
    rows_examined: int = 0
    rows_returned: int = 0


class MySqlServer:
    """A toy row-store standing in for MySQL."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self.stats = MySqlStats()
        self._tables: dict[tuple[str, str], tuple[list[tuple[str, PrestoType]], list[tuple]]] = {}
        self._evaluator = Evaluator()
        # Latency model: connection overhead plus per-row evaluation/transfer.
        self.query_latency_ms = 2.0
        self.row_eval_ms = 0.0005
        self.row_transfer_ms = 0.002

    def create_table(
        self,
        database: str,
        table: str,
        columns: Sequence[tuple[str, PrestoType]],
        rows: Sequence[tuple] = (),
    ) -> None:
        self._tables[(database, table)] = (list(columns), [tuple(r) for r in rows])

    def insert(self, database: str, table: str, rows: Sequence[tuple]) -> None:
        self._require(database, table)[1].extend(tuple(r) for r in rows)

    def _require(self, database: str, table: str):
        entry = self._tables.get((database, table))
        if entry is None:
            raise ConnectorError(f"mysql: no table {database}.{table}")
        return entry

    def databases(self) -> list[str]:
        return sorted({d for d, _ in self._tables})

    def tables(self, database: str) -> list[str]:
        return sorted(t for d, t in self._tables if d == database)

    def columns(self, database: str, table: str) -> list[tuple[str, PrestoType]]:
        return list(self._require(database, table)[0])

    def execute(
        self,
        database: str,
        table: str,
        projection: Sequence[str],
        predicate: Optional[RowExpression] = None,
        limit: Optional[int] = None,
    ) -> list[tuple]:
        """Run a structured query server-side (WHERE, SELECT list, LIMIT)."""
        columns, rows = self._require(database, table)
        names = [n for n, _ in columns]
        types = dict(columns)
        self.stats.queries += 1
        self.stats.rows_examined += len(rows)
        self.clock.advance(self.query_latency_ms + len(rows) * self.row_eval_ms)

        if predicate is not None:
            bindings = {
                name: PrimitiveBlock.from_values(
                    types[name], [row[names.index(name)] for row in rows]
                )
                for name in {v.name for v in predicate.variables()}
            }
            mask = self._evaluator.filter_mask(predicate, bindings, len(rows))
            rows = [row for row, keep in zip(rows, mask) if keep]
        if limit is not None:
            rows = rows[:limit]
        indexes = [names.index(c) for c in projection]
        result = [tuple(row[i] for i in indexes) for row in rows]
        self.stats.rows_returned += len(result)
        self.clock.advance(len(result) * self.row_transfer_ms)
        return result


class MySqlConnector(Connector):
    """Presto-MySQL connector with filter/projection/limit pushdown."""

    name = "mysql"

    def __init__(self, server: MySqlServer) -> None:
        self.server = server
        self._metadata = _MySqlMetadata(self)
        self._split_manager = _MySqlSplitManager()
        self._provider = _MySqlProvider(self)

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider


class _MySqlMetadata(ConnectorMetadata):
    def __init__(self, connector: MySqlConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return self._connector.server.databases()

    def list_tables(self, schema_name: str) -> list[str]:
        return self._connector.server.tables(schema_name)

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        try:
            self._connector.server.columns(schema_name, table_name)
        except ConnectorError:
            return None
        return ConnectorTableHandle(schema_name, table_name)

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        columns = self._connector.server.columns(handle.schema_name, handle.table_name)
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(ColumnMetadata(n, t) for n, t in columns),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        columns = {
            n for n, _ in self._connector.server.columns(handle.schema_name, handle.table_name)
        }
        if not all(v.name in columns for v in predicate.variables()):
            return None
        if handle.constraint is not None:
            predicate = and_(expression_from_dict(handle.constraint), predicate)
        return FilterPushdownResult(handle.with_(constraint=predicate.to_dict()), None)

    def apply_limit(
        self, handle: ConnectorTableHandle, limit: int
    ) -> Optional[ConnectorTableHandle]:
        if handle.limit is not None and handle.limit <= limit:
            return None
        return handle.with_(limit=limit)

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        top_level: list[str] = []
        for path in columns:
            top = path.split(".")[0]
            if top not in top_level:
                top_level.append(top)
        return handle.with_(projected_columns=tuple(top_level))


class _MySqlSplitManager(ConnectorSplitManager):
    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        # MySQL is a single server: one split, no parallel scanning.
        return [
            ConnectorSplit(
                split_id=f"mysql:{handle.schema_name}.{handle.table_name}"
            )
        ]


class _MySqlProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: MySqlConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        server = self._connector.server
        predicate = (
            expression_from_dict(handle.constraint)
            if handle.constraint is not None
            else None
        )
        rows = server.execute(
            handle.schema_name,
            handle.table_name,
            projection=list(columns),
            predicate=predicate,
            limit=handle.limit,
        )
        types = dict(server.columns(handle.schema_name, handle.table_name))
        yield Page.from_rows([types[c] for c in columns], rows)
