"""In-memory connector.

The simplest connector: tables are Python row lists held in memory, split
into fixed-size shards for parallel scanning.  It supports projection
pushdown (trivially — it only materializes requested columns) and declines
filter/limit/aggregation pushdown, making it the baseline against which the
pushdown-capable connectors (Druid, Pinot, MySQL) are compared.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.core.page import Page
from repro.core.types import PrestoType
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    TableMetadata,
)


class _MemoryTable:
    def __init__(self, metadata: TableMetadata, rows: list[tuple]) -> None:
        self.metadata = metadata
        self.rows = rows
        # ANALYZE results plus the row count they were computed at, so
        # stale statistics are dropped after inserts rather than served.
        self.statistics = None
        self.statistics_row_count = -1


class MemoryConnector(Connector):
    """Connector over in-memory row lists, sharded into splits."""

    name = "memory"

    def __init__(self, split_size: int = 10_000) -> None:
        self._tables: dict[tuple[str, str], _MemoryTable] = {}
        self._split_size = split_size
        self._metadata = _MemoryMetadata(self)
        self._split_manager = _MemorySplitManager(self)
        self._provider = _MemoryRecordSetProvider(self)

    # -- population API ----------------------------------------------------

    def create_table(
        self,
        schema_name: str,
        table_name: str,
        columns: Sequence[tuple[str, PrestoType]],
        rows: Sequence[Sequence[Any]] = (),
    ) -> None:
        """Create (or replace) a table with the given columns and rows."""
        metadata = TableMetadata(
            schema_name,
            table_name,
            tuple(ColumnMetadata(n, t) for n, t in columns),
        )
        self._tables[(schema_name, table_name)] = _MemoryTable(
            metadata, [tuple(r) for r in rows]
        )

    def insert(self, schema_name: str, table_name: str, rows: Sequence[Sequence[Any]]) -> None:
        table = self._table(schema_name, table_name)
        table.rows.extend(tuple(r) for r in rows)

    def _table(self, schema_name: str, table_name: str) -> _MemoryTable:
        table = self._tables.get((schema_name, table_name))
        if table is None:
            raise ConnectorError(f"memory table {schema_name}.{table_name} does not exist")
        return table

    # -- SPI ---------------------------------------------------------------

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider


class _MemoryMetadata(ConnectorMetadata):
    def __init__(self, connector: MemoryConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return sorted({s for s, _ in self._connector._tables})

    def list_tables(self, schema_name: str) -> list[str]:
        return sorted(t for s, t in self._connector._tables if s == schema_name)

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        if (schema_name, table_name) in self._connector._tables:
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        return self._connector._table(handle.schema_name, handle.table_name).metadata

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        return handle.with_(projected_columns=tuple(columns))

    def collect_table_statistics(self, handle: ConnectorTableHandle):
        """ANALYZE: exact statistics, trivially — the rows are in memory."""
        from repro.metastore.statistics import statistics_from_rows

        table = self._connector._table(handle.schema_name, handle.table_name)
        table.statistics = statistics_from_rows(
            table.metadata.column_names(), table.rows
        )
        table.statistics_row_count = len(table.rows)
        return table.statistics

    def get_table_statistics(self, handle: ConnectorTableHandle):
        table = self._connector._table(handle.schema_name, handle.table_name)
        if table.statistics_row_count != len(table.rows):
            return None  # inserts since ANALYZE: stats are stale
        return table.statistics


class _MemorySplitManager(ConnectorSplitManager):
    def __init__(self, connector: MemoryConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        table = self._connector._table(handle.schema_name, handle.table_name)
        size = self._connector._split_size
        splits = []
        total = len(table.rows)
        for start in range(0, max(total, 1), size):
            end = min(start + size, total)
            splits.append(
                ConnectorSplit(
                    split_id=f"memory:{handle.schema_name}.{handle.table_name}:{start}-{end}",
                    # Row count doubles as the data version: inserts bump it.
                    info=(("start", start), ("end", end), ("data_version", total)),
                )
            )
        return splits


class _MemoryRecordSetProvider(ConnectorRecordSetProvider):
    PAGE_SIZE = 4096

    def __init__(self, connector: MemoryConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        table = self._connector._table(handle.schema_name, handle.table_name)
        info = split.info_dict()
        rows = table.rows[info["start"] : info["end"]]
        all_names = table.metadata.column_names()
        indexes = [all_names.index(c) for c in columns]
        types = [table.metadata.column(c).type for c in columns]
        for start in range(0, len(rows), self.PAGE_SIZE):
            chunk = rows[start : start + self.PAGE_SIZE]
            yield Page.from_rows(types, [tuple(row[i] for i in indexes) for row in chunk])
        if not rows:
            yield Page.from_rows(types, [])
