"""Connector Service Provider Interface.

The four interfaces the paper names in section IV, plus the pushdown
negotiation surface of sections IV.A and IV.B:

- :class:`ConnectorMetadata` — "defines schemas, tables, columns etc."
- :class:`ConnectorSplitManager` — "defines how Presto divide the
  underlying data into splits, and process them in parallel."
- :class:`ConnectorSplit` — "defines one processing unit, or one shard of
  underlying data."
- :class:`ConnectorRecordSetProvider` — "defines upon getting data streams
  from underlying systems, how Presto parse and transform them into Presto
  engine" (pages).

Pushdown contracts return ``None`` when the connector cannot absorb the
construct, in which case the engine evaluates it itself.  Expressions cross
this boundary as serialized RowExpression dicts — the self-contained
representation of Table I — and are deserialized connector-side, which is
how real Presto keeps connectors decoupled from engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.core.expressions import RowExpression
from repro.core.functions import FunctionHandle
from repro.core.page import Page
from repro.core.types import PrestoType


@dataclass(frozen=True)
class ColumnMetadata:
    """One column of a connector table."""

    name: str
    type: PrestoType
    comment: str = ""


@dataclass(frozen=True)
class TableMetadata:
    """Schema of one connector table."""

    schema_name: str
    table_name: str
    columns: tuple[ColumnMetadata, ...]

    def column(self, name: str) -> ColumnMetadata:
        for column in self.columns:
            if column.name == name:
                return column
        raise ConnectorError(f"column {name!r} not found in {self.schema_name}.{self.table_name}")

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


@dataclass(frozen=True)
class ConnectorTableHandle:
    """Opaque-to-the-engine handle identifying a table plus absorbed pushdowns.

    ``constraint`` / ``limit`` / ``aggregation`` record what the connector
    has agreed to evaluate natively; ``projected_columns`` records projection
    pushdown.  All pushed expressions are stored in serialized form so the
    handle itself stays self-contained.
    """

    schema_name: str
    table_name: str
    constraint: Optional[dict] = None  # serialized RowExpression
    limit: Optional[int] = None
    projected_columns: Optional[tuple[str, ...]] = None
    aggregation: Optional[dict] = None  # serialized AggregationPushdown spec
    # Runtime dynamic filter over connector column names (serialized
    # RowExpression), injected by the scheduler after a join's build side
    # completes — never present in planned handles.  Connectors that
    # understand it (hive) prune partitions/row groups with it; everyone
    # else safely ignores it (the scan re-applies the filter to pages).
    dynamic_filter: Optional[dict] = None

    def with_(self, **updates: Any) -> "ConnectorTableHandle":
        return replace(self, **updates)


@dataclass(frozen=True)
class ConnectorSplit:
    """One shard of underlying data, the unit of parallel processing."""

    split_id: str
    # Hosts that hold this split's data; the affinity scheduler prefers them.
    addresses: tuple[str, ...] = ()
    # Connector-specific payload (file path, segment id, row range, ...).
    info: tuple[tuple[str, Any], ...] = ()

    def info_dict(self) -> dict:
        return dict(self.info)


@dataclass(frozen=True)
class AggregationFunction:
    """One aggregate offered for pushdown: resolved handle + input columns."""

    function_handle: FunctionHandle
    inputs: tuple[str, ...]  # column names
    output_name: str

    def to_dict(self) -> dict:
        return {
            "functionHandle": self.function_handle.to_dict(),
            "inputs": list(self.inputs),
            "outputName": self.output_name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AggregationFunction":
        return cls(
            FunctionHandle.from_dict(data["functionHandle"]),
            tuple(data["inputs"]),
            data["outputName"],
        )


@dataclass(frozen=True)
class FilterPushdownResult:
    """Outcome of offering a filter to a connector.

    ``handle`` has absorbed what the connector can evaluate;
    ``remaining_expression`` (serialized) is what the engine must still
    evaluate itself; ``None`` remaining means fully absorbed.
    """

    handle: ConnectorTableHandle
    remaining_expression: Optional[dict]


@dataclass(frozen=True)
class AggregationPushdownResult:
    """Outcome of offering an aggregation to a connector.

    ``output_columns`` describes the (grouping keys + aggregate results)
    the connector will stream back, in order.
    """

    handle: ConnectorTableHandle
    output_columns: tuple[ColumnMetadata, ...]


class ConnectorMetadata:
    """Schemas, tables, columns — and the pushdown negotiation surface."""

    def list_schemas(self) -> list[str]:
        raise NotImplementedError

    def list_tables(self, schema_name: str) -> list[str]:
        raise NotImplementedError

    def get_table_handle(self, schema_name: str, table_name: str) -> Optional[ConnectorTableHandle]:
        raise NotImplementedError

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        raise NotImplementedError

    # -- statistics (cost-based planning) ----------------------------------

    def collect_table_statistics(self, handle: ConnectorTableHandle):
        """ANALYZE: compute (and persist) this table's statistics.

        Returns a :class:`repro.metastore.statistics.TableStatistics` or
        ``None`` when the connector cannot produce statistics.  Default:
        decline.
        """
        return None

    def get_table_statistics(self, handle: ConnectorTableHandle):
        """Previously collected statistics, or ``None`` when unanalyzed.

        Statistics are advisory — consumers must plan identically to the
        stats-free engine when this returns ``None``.
        """
        return None

    # -- pushdown negotiation (sections IV.A / IV.B) -----------------------

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        """Offer ``predicate`` for native evaluation.  Default: decline."""
        return None

    def apply_limit(
        self, handle: ConnectorTableHandle, limit: int
    ) -> Optional[ConnectorTableHandle]:
        """Offer a row limit.  Default: decline."""
        return None

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        """Offer a column projection.  Default: decline."""
        return None

    def apply_aggregation(
        self,
        handle: ConnectorTableHandle,
        aggregations: Sequence[AggregationFunction],
        grouping_columns: Sequence[str],
    ) -> Optional[AggregationPushdownResult]:
        """Offer an aggregation (section IV.B).  Default: decline."""
        return None


class ConnectorSplitManager:
    """Divides a table (as constrained by its handle) into parallel splits."""

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        raise NotImplementedError


class ConnectorRecordSetProvider:
    """Streams a split's data into the engine as pages."""

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        raise NotImplementedError


class Connector:
    """A bundle of the four SPI objects, registered under a catalog name."""

    name: str = "connector"

    def metadata(self) -> ConnectorMetadata:
        raise NotImplementedError

    def split_manager(self) -> ConnectorSplitManager:
        raise NotImplementedError

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        raise NotImplementedError


class Catalog:
    """Registry of connectors by catalog name.

    ``catalog.schema.table`` naming (section IV) resolves through here:
    the catalog part selects the connector.
    """

    def __init__(self) -> None:
        self._connectors: dict[str, Connector] = {}

    def register(self, catalog_name: str, connector: Connector) -> None:
        self._connectors[catalog_name.lower()] = connector

    def connector(self, catalog_name: str) -> Connector:
        connector = self._connectors.get(catalog_name.lower())
        if connector is None:
            raise ConnectorError(f"catalog {catalog_name!r} not registered")
        return connector

    def has_catalog(self, catalog_name: str) -> bool:
        return catalog_name.lower() in self._connectors

    def catalog_names(self) -> list[str]:
        return sorted(self._connectors)
