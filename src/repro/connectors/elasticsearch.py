"""Simulated Elasticsearch and the Presto-Elasticsearch connector.

Section IV: "In Presto-Elasticsearch-connector, we map each Elasticsearch
index into a table.  Each Elasticsearch field is mapped into a column."
The simulated cluster stores JSON documents with inverted indexes on
keyword fields; term and range queries are pushed down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.common.errors import ConnectorError
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    and_,
    combine_conjuncts,
    conjuncts,
    expression_from_dict,
)
from repro.core.page import Page
from repro.core.types import BIGINT, DOUBLE, PrestoType, VARCHAR


@dataclass
class EsStats:
    searches: int = 0
    docs_examined: int = 0
    docs_returned: int = 0


class ElasticsearchCluster:
    """Documents in indices, sharded, with keyword inverted indexes."""

    def __init__(
        self, clock: Optional[SimulatedClock] = None, shards_per_index: int = 3
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.shards_per_index = shards_per_index
        self.stats = EsStats()
        self._indices: dict[str, tuple[list[tuple[str, PrestoType]], list[list[dict]]]] = {}
        self.search_latency_ms = 5.0
        self.doc_match_ms = 0.0002
        self.doc_fetch_ms = 0.001

    def create_index(
        self, name: str, fields: Sequence[tuple[str, PrestoType]]
    ) -> None:
        self._indices[name] = (
            list(fields),
            [[] for _ in range(self.shards_per_index)],
        )

    def index_document(self, index: str, document: dict) -> None:
        fields, shards = self._require(index)
        shard = hash(str(sorted(document.items()))) % len(shards)
        shards[shard].append(document)

    def index_documents(self, index: str, documents: Sequence[dict]) -> None:
        for document in documents:
            self.index_document(index, document)

    def _require(self, index: str):
        entry = self._indices.get(index)
        if entry is None:
            raise ConnectorError(f"elasticsearch: no index {index!r}")
        return entry

    def indices(self) -> list[str]:
        return sorted(self._indices)

    def fields(self, index: str) -> list[tuple[str, PrestoType]]:
        return list(self._require(index)[0])

    def search_shard(
        self,
        index: str,
        shard: int,
        term_filters: Sequence[tuple[str, list[Any]]],
        range_filters: dict[str, tuple[Optional[float], Optional[float]]],
        source_fields: Sequence[str],
        size: Optional[int] = None,
    ) -> list[dict]:
        """Execute a bool query on one shard.

        ``term_filters`` is a list of (field, allowed values) requirements,
        all of which must hold (bool/must with terms clauses).
        """
        _, shards = self._require(index)
        documents = shards[shard]
        self.stats.searches += 1
        self.stats.docs_examined += len(documents)
        self.clock.advance(self.search_latency_ms + len(documents) * self.doc_match_ms)

        hits: list[dict] = []
        for document in documents:
            if not all(
                document.get(field) in values for field, values in term_filters
            ):
                continue
            in_range = True
            for field, (low, high) in range_filters.items():
                value = document.get(field)
                if value is None:
                    in_range = False
                    break
                if low is not None and value < low:
                    in_range = False
                    break
                if high is not None and value > high:
                    in_range = False
                    break
            if not in_range:
                continue
            hits.append({f: document.get(f) for f in source_fields})
            if size is not None and len(hits) >= size:
                break
        self.stats.docs_returned += len(hits)
        self.clock.advance(len(hits) * self.doc_fetch_ms)
        return hits


class ElasticsearchConnector(Connector):
    """Presto-Elasticsearch connector: index → table, field → column."""

    name = "elasticsearch"

    def __init__(self, cluster: ElasticsearchCluster, schema_name: str = "default") -> None:
        self.cluster = cluster
        self.schema_name = schema_name
        self._metadata = _EsMetadata(self)
        self._split_manager = _EsSplitManager(self)
        self._provider = _EsProvider(self)

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider


class _EsMetadata(ConnectorMetadata):
    def __init__(self, connector: ElasticsearchConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [self._connector.schema_name]

    def list_tables(self, schema_name: str) -> list[str]:
        return self._connector.cluster.indices()

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        if table_name in self._connector.cluster.indices():
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        fields = self._connector.cluster.fields(handle.table_name)
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(ColumnMetadata(n, t) for n, t in fields),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        """Absorb term (equality/IN) and range conjuncts; leave the rest."""
        absorbed: list[RowExpression] = []
        remaining: list[RowExpression] = []
        for conjunct in conjuncts(predicate):
            if _as_term_or_range(conjunct) is not None:
                absorbed.append(conjunct)
            else:
                remaining.append(conjunct)
        if not absorbed:
            return None
        if handle.constraint is not None:
            absorbed.insert(0, expression_from_dict(handle.constraint))
        remaining_expression = combine_conjuncts(remaining)
        return FilterPushdownResult(
            handle.with_(constraint=and_(*absorbed).to_dict()),
            None if remaining_expression is None else remaining_expression.to_dict(),
        )

    def apply_limit(
        self, handle: ConnectorTableHandle, limit: int
    ) -> Optional[ConnectorTableHandle]:
        if handle.limit is not None and handle.limit <= limit:
            return None
        return handle.with_(limit=limit)

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        top_level: list[str] = []
        for path in columns:
            top = path.split(".")[0]
            if top not in top_level:
                top_level.append(top)
        return handle.with_(projected_columns=tuple(top_level))


class _EsSplitManager(ConnectorSplitManager):
    def __init__(self, connector: ElasticsearchConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        shards = self._connector.cluster.shards_per_index
        return [
            ConnectorSplit(
                split_id=f"es:{handle.table_name}:{shard}",
                info=(("shard", shard),),
            )
            for shard in range(shards)
        ]


class _EsProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: ElasticsearchConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        cluster = self._connector.cluster
        term_filters: list[tuple[str, list[Any]]] = []
        range_filters: dict[str, tuple[Optional[float], Optional[float]]] = {}
        if handle.constraint is not None:
            predicate = expression_from_dict(handle.constraint)
            for conjunct in conjuncts(predicate):
                parsed = _as_term_or_range(conjunct)
                if parsed is None:
                    continue
                kind, field, payload = parsed
                if kind == "term":
                    term_filters.append((field, payload))
                else:
                    low, high = range_filters.get(field, (None, None))
                    new_low, new_high = payload
                    low = new_low if low is None else max(low, new_low) if new_low is not None else low
                    high = new_high if high is None else min(high, new_high) if new_high is not None else high
                    range_filters[field] = (low, high)
        hits = cluster.search_shard(
            handle.table_name,
            split.info_dict()["shard"],
            term_filters,
            range_filters,
            source_fields=list(columns),
            size=handle.limit,
        )
        types = dict(cluster.fields(handle.table_name))
        yield Page.from_rows(
            [types[c] for c in columns],
            [tuple(hit.get(c) for c in columns) for hit in hits],
        )


def _as_term_or_range(conjunct: RowExpression):
    """Classify a conjunct as a term query, range query, or neither."""
    if (
        isinstance(conjunct, CallExpression)
        and len(conjunct.arguments) == 2
        and isinstance(conjunct.arguments[0], VariableReferenceExpression)
        and isinstance(conjunct.arguments[1], ConstantExpression)
    ):
        field = conjunct.arguments[0].name
        value = conjunct.arguments[1].value
        name = conjunct.function_handle.name
        if name == "equal":
            return ("term", field, [value])
        # Only inclusive bounds map onto the simulated range query; strict
        # comparisons stay engine-side to keep semantics exact.
        if name == "greater_than_or_equal":
            return ("range", field, (value, None))
        if name == "less_than_or_equal":
            return ("range", field, (None, value))
    if (
        isinstance(conjunct, SpecialFormExpression)
        and conjunct.form is SpecialForm.IN
        and isinstance(conjunct.arguments[0], VariableReferenceExpression)
        and all(isinstance(a, ConstantExpression) for a in conjunct.arguments[1:])
    ):
        return (
            "term",
            conjunct.arguments[0].name,
            [a.value for a in conjunct.arguments[1:]],
        )
    return None
