"""Presto-Hive connector: tables on HDFS/S3 in the Parquet-like format.

The workhorse connector of the paper's deployments: partitioned tables in
a Hive metastore, data files on a (simulated) distributed filesystem, read
through the old or new Parquet reader, accelerated by the file-list and
footer caches of section VII.
"""

from repro.connectors.hive.connector import HiveConnector
from repro.connectors.hive.writer import write_hive_partition

__all__ = ["HiveConnector", "write_hive_partition"]
