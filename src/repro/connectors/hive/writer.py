"""Helpers for writing Hive partitions in the Parquet-like format."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.page import Page
from repro.core.types import PrestoType
from repro.formats.parquet import compression
from repro.formats.parquet.schema import ParquetSchema
from repro.formats.parquet.writer_native import NativeParquetWriter
from repro.metastore.metastore import HiveMetastore
from repro.storage.filesystem import FileSystem


def write_hive_partition(
    metastore: HiveMetastore,
    filesystem: FileSystem,
    database: str,
    table: str,
    partition_values: Sequence[str],
    pages: Sequence[Page],
    files: int = 1,
    sealed: bool = True,
    codec: str = compression.SNAPPY,
    row_group_size: int = 10_000,
) -> list[str]:
    """Write pages as one or more Parquet files into a new partition.

    Returns the written file paths.  ``files`` > 1 spreads rows round-robin
    across that many files (more splits → more parallelism).
    """
    info = metastore.get_table(database, table)
    schema = ParquetSchema(list(info.columns))
    partition = metastore.add_partition(
        database, table, partition_values, sealed=sealed
    )

    import numpy as np

    # Split pages round-robin by file index.
    per_file_pages: list[list[Page]] = [[] for _ in range(files)]
    for page in pages:
        if files == 1:
            per_file_pages[0].append(page)
            continue
        for index in range(files):
            positions = np.arange(index, page.position_count, files)
            per_file_pages[index].append(page.take(positions))

    paths: list[str] = []
    writer = NativeParquetWriter(schema, codec=codec, row_group_size=row_group_size)
    for index, file_pages in enumerate(per_file_pages):
        blob = writer.write_pages(file_pages)
        path = f"{partition.location}/part-{index:05d}.parquet"
        filesystem.create(path, blob)
        paths.append(path)
    return paths
