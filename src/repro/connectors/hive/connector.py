"""The Hive connector implementation.

Pushdown behaviour:

- **partition pruning** — predicate conjuncts over partition keys are
  absorbed and evaluated against partition values at split enumeration;
- **predicate pushdown** — when configured with the new reader, conjuncts
  over scalar (possibly nested) data columns are absorbed and evaluated by
  the reader while scanning (sections V.F/V.G);
- **projection pushdown** — requested (possibly dotted) column paths reach
  the reader as nested column pruning (section V.D).

Split = one data file of one matching partition.  The file-list cache and
footer cache plug in here when provided.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.core.blocks import Block, block_from_values
from repro.core.evaluator import Evaluator, constant_block
from repro.core.expressions import (
    RowExpression,
    combine_conjuncts,
    conjuncts,
    expression_from_dict,
)
from repro.core.page import Page
from repro.core.types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    INTEGER,
    PrestoType,
    RowType,
)
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.formats.parquet.encoding import decode_plain_scalar
from repro.formats.parquet.file import ParquetFile, read_footer
from repro.formats.parquet.options import ReaderOptions
from repro.formats.parquet.reader_new import NewParquetReader
from repro.formats.parquet.reader_old import OldParquetReader
from repro.metastore.metastore import HiveMetastore, TableInfo
from repro.metastore.statistics import ColumnStatisticsEntry, TableStatistics
from repro.storage.filesystem import FileSystem

OLD_READER = "old"
NEW_READER = "new"


class HiveConnector(Connector):
    """Connector over a Hive metastore and a distributed filesystem."""

    name = "hive"

    def __init__(
        self,
        metastore: HiveMetastore,
        filesystem: FileSystem,
        reader: str = NEW_READER,
        reader_options: Optional[ReaderOptions] = None,
        file_list_cache: Optional[FileListCache] = None,
        footer_cache: Optional[FileHandleAndFooterCache] = None,
        data_cache=None,
    ) -> None:
        if reader not in (OLD_READER, NEW_READER):
            raise ValueError(f"unknown reader kind {reader!r}")
        self.metastore = metastore
        self.filesystem = filesystem
        self.reader = reader
        self.reader_options = reader_options or ReaderOptions()
        self.file_list_cache = file_list_cache
        self.footer_cache = footer_cache
        # Optional worker-local TieredDataCache for raw segment bytes;
        # attached per-file so reads skip storage IO on cache hits.
        self.data_cache = data_cache
        self._evaluator = Evaluator()
        self._metadata = _HiveMetadata(self)
        self._split_manager = _HiveSplitManager(self)
        self._provider = _HiveRecordSetProvider(self)

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider

    # -- shared internals ---------------------------------------------------

    def _table(self, handle: ConnectorTableHandle) -> TableInfo:
        return self.metastore.get_table(handle.schema_name, handle.table_name)

    def _list_files(self, location: str, sealed: bool):
        if self.file_list_cache is not None:
            return self.file_list_cache.list_files(location, sealed)
        return self.filesystem.list_files(location)

    def _open_parquet(self, path: str) -> ParquetFile:
        if self.footer_cache is not None:
            file = self.footer_cache.open_parquet(path)
        else:
            # A worker checks the file handle (getFileInfo) before reading;
            # the footer cache exists precisely to absorb these calls
            # (VII.B).
            self.filesystem.get_file_info(path)
            file = ParquetFile(self.filesystem.open(path))
        if self.data_cache is not None:
            file.attach_data_cache(self.data_cache, path)
        return file


class _HiveMetadata(ConnectorMetadata):
    def __init__(self, connector: HiveConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return self._connector.metastore.list_databases()

    def list_tables(self, schema_name: str) -> list[str]:
        return self._connector.metastore.list_tables(schema_name)

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        if self._connector.metastore.has_table(schema_name, table_name):
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        table = self._connector._table(handle)
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(ColumnMetadata(n, t) for n, t in table.all_columns()),
        )

    # -- statistics (ANALYZE TABLE) ----------------------------------------

    def collect_table_statistics(
        self, handle: ConnectorTableHandle
    ) -> TableStatistics:
        """Derive table statistics from parquet footers, persist, return.

        Row counts, min/max and null fractions come straight from the
        footer ``ColumnStatistics`` — no data pages are read.  NDV is
        exact for dictionary-encoded columns (the dictionary segments are
        unioned across files) and for partition keys; for plain-encoded
        columns it falls back to a range heuristic for integers and the
        non-null count otherwise.
        """
        connector = self._connector
        table = connector._table(handle)
        statistics = self._footer_statistics(table)
        connector.metastore.set_table_statistics(
            handle.schema_name, handle.table_name, statistics
        )
        return statistics

    def get_table_statistics(
        self, handle: ConnectorTableHandle
    ) -> Optional[TableStatistics]:
        return self._connector.metastore.get_table_statistics(
            handle.schema_name, handle.table_name
        )

    def _footer_statistics(self, table: TableInfo) -> TableStatistics:
        connector = self._connector
        scalar_columns = [(n, t) for n, t in table.columns if not t.is_nested()]
        accumulators = {name: _ColumnAccumulator(t) for name, t in scalar_columns}
        row_count = 0

        locations: list[tuple[str, tuple[str, ...], bool]] = [
            (p.location, p.values, p.sealed) for p in table.partitions.values()
        ]
        if not table.partition_keys and not table.partitions:
            locations.append((table.location, (), True))
        for location, _, sealed in locations:
            for status in connector._list_files(location, sealed):
                file = connector._open_parquet(status.path)
                for group_index, group in enumerate(file.metadata.row_groups):
                    row_count += group.num_rows
                    for name, _ in scalar_columns:
                        chunk = group.columns.get(name)
                        if chunk is None:
                            # Schema evolution: the column postdates this
                            # file, so every slot reads as null.
                            accumulators[name].add_missing(group.num_rows)
                            continue
                        dictionary = None
                        if chunk.has_dictionary:
                            data = file.read_segment(group_index, name, "dict")
                            dictionary = decode_plain_scalar(
                                data, accumulators[name].presto_type,
                                _count_prefixed_entries(data),
                            )
                        accumulators[name].add_chunk(chunk.statistics, dictionary)

        columns = {
            name: accumulator.finish() for name, accumulator in accumulators.items()
        }
        for index, (key, key_type) in enumerate(table.partition_keys):
            values = [
                _coerce(partition.values[index], key_type)
                for partition in table.partitions.values()
            ]
            columns[key] = ColumnStatisticsEntry(
                ndv=len(set(values)),
                min_value=min(values) if values else None,
                max_value=max(values) if values else None,
                null_fraction=0.0,
            )
        return TableStatistics(row_count=row_count, columns=columns)

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        table = self._connector._table(handle)
        partition_keys = set(table.partition_key_names())
        data_leaf_paths = self._scalar_leaf_paths(table)

        partition_terms: list[RowExpression] = []
        data_terms: list[RowExpression] = []
        remaining: list[RowExpression] = []
        data_pushdown_allowed = (
            self._connector.reader == NEW_READER
            and self._connector.reader_options.predicate_pushdown
        )
        for conjunct in conjuncts(predicate):
            names = {v.name for v in conjunct.variables()}
            if names and names <= partition_keys:
                partition_terms.append(conjunct)
                continue
            # Nested field access arrives as DEREFERENCE chains; normalize
            # them into dotted-path variables the reader understands.
            normalized = _dereferences_to_paths(conjunct)
            normalized_names = {v.name for v in normalized.variables()}
            if (
                data_pushdown_allowed
                and normalized_names
                and normalized_names <= data_leaf_paths
            ):
                data_terms.append(normalized)
            else:
                remaining.append(conjunct)
        if not partition_terms and not data_terms:
            return None

        constraint = dict(handle.constraint or {})
        if partition_terms:
            existing = constraint.get("partition")
            terms = ([expression_from_dict(existing)] if existing else []) + partition_terms
            constraint["partition"] = combine_conjuncts(terms).to_dict()
        if data_terms:
            existing = constraint.get("data")
            terms = ([expression_from_dict(existing)] if existing else []) + data_terms
            constraint["data"] = combine_conjuncts(terms).to_dict()

        remaining_expression = combine_conjuncts(remaining)
        return FilterPushdownResult(
            handle.with_(constraint=constraint),
            None if remaining_expression is None else remaining_expression.to_dict(),
        )

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        return handle.with_(projected_columns=tuple(columns))

    def _scalar_leaf_paths(self, table: TableInfo) -> set[str]:
        """Dotted paths of scalar leaves reachable through structs only."""
        paths: set[str] = set()

        def walk(prefix: str, presto_type: PrestoType) -> None:
            if isinstance(presto_type, RowType):
                for f in presto_type.fields:
                    walk(f"{prefix}.{f.name}", f.type)
            elif not presto_type.is_nested():
                paths.add(prefix)

        for name, presto_type in table.columns:
            walk(name, presto_type)
        return paths


class _HiveSplitManager(ConnectorSplitManager):
    def __init__(self, connector: HiveConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        connector = self._connector
        table = connector._table(handle)
        constraint = handle.constraint or {}
        partition_predicate = (
            expression_from_dict(constraint["partition"])
            if constraint.get("partition")
            else None
        )
        # Runtime dynamic filters: conjuncts over partition keys prune
        # partitions right here, before any file is even listed.
        dynamic_partition, _ = _split_dynamic_conjuncts(
            handle.dynamic_filter, table
        )
        if dynamic_partition is not None:
            terms = (
                [partition_predicate] if partition_predicate is not None else []
            ) + [dynamic_partition]
            partition_predicate = combine_conjuncts(terms)

        partitions = connector.metastore.list_partitions(
            handle.schema_name, handle.table_name
        )
        if partition_predicate is not None:
            partitions = self._prune_partitions(table, partitions, partition_predicate)

        splits: list[ConnectorSplit] = []
        for partition in partitions:
            for status in connector._list_files(partition.location, partition.sealed):
                splits.append(
                    ConnectorSplit(
                        split_id=f"hive:{status.path}",
                        info=(
                            ("path", status.path),
                            ("partition_values", partition.values),
                            ("sealed", partition.sealed),
                            # Version for the fragment result cache; a
                            # rewritten file gets a new modification time.
                            ("data_version", status.modification_time_ms),
                        ),
                    )
                )
        if not table.partition_keys and not table.partitions:
            # Unpartitioned table: files live directly at the table location.
            for status in connector._list_files(table.location, True):
                splits.append(
                    ConnectorSplit(
                        split_id=f"hive:{status.path}",
                        info=(("path", status.path), ("partition_values", ()), ("sealed", True)),
                    )
                )
        return splits

    def _prune_partitions(
        self,
        table: TableInfo,
        partitions: Sequence,
        predicate: RowExpression,
    ) -> list:
        """Batched partition pruning: one page over all partitions.

        Each partition key becomes one column whose rows are the
        per-partition values, so the predicate is evaluated with a single
        ``filter_mask`` call instead of one position_count=1 evaluation
        per partition.
        """
        partitions = list(partitions)
        if not partitions:
            return partitions
        bindings: dict[str, Block] = {}
        for index, (key, key_type) in enumerate(table.partition_keys):
            bindings[key] = block_from_values(
                key_type,
                [_coerce(partition.values[index], key_type) for partition in partitions],
            )
        mask = self._connector._evaluator.filter_mask(
            predicate, bindings, len(partitions)
        )
        return [partition for partition, keep in zip(partitions, mask) if keep]


class _HiveRecordSetProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: HiveConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        connector = self._connector
        table = connector._table(handle)
        info = split.info_dict()
        path = info["path"]
        partition_values = dict(
            zip(table.partition_key_names(), info["partition_values"])
        )
        partition_types = dict(table.partition_keys)
        data_column_names = [n for n, _ in table.columns]

        data_columns = [c for c in columns if c in data_column_names]
        file = connector._open_parquet(path)

        if connector.reader == OLD_READER:
            return self._pages_old_reader(
                file, table, columns, data_columns, partition_values, partition_types
            )

        constraint = handle.constraint or {}
        predicate = (
            expression_from_dict(constraint["data"]) if constraint.get("data") else None
        )
        # Runtime dynamic filters.  Partition-key conjuncts are evaluated
        # against this split's partition values (they must never reach the
        # reader's row mask — a partition key is not a file leaf, so it
        # would decode as all-null and wrongly drop every row); the data
        # conjuncts ride into the reader as its dynamic predicate.
        dynamic_partition, dynamic_data = _split_dynamic_conjuncts(
            handle.dynamic_filter, table
        )
        if dynamic_partition is not None and not self._partition_matches(
            dynamic_partition, partition_values, partition_types
        ):
            return iter([self._empty_page(columns, table, partition_types)])
        # Schema evolution: columns added to the table after this file was
        # written are absent from the file schema and read as nulls.
        file_top_level = set(file.schema.column_names())
        present = [c for c in data_columns if c in file_top_level]
        restrict = self._restriction(handle, present)
        reader = NewParquetReader(
            file,
            present,
            options=connector.reader_options,
            predicate=predicate,
            restrict=restrict,
            dynamic_predicate=dynamic_data,
        )
        return _ReaderPages(
            self._stream_new_reader(
                reader, columns, present, partition_values, partition_types, table
            ),
            reader.stats,
        )

    def _stream_new_reader(
        self,
        reader: NewParquetReader,
        columns: Sequence[str],
        present: list[str],
        partition_values: dict,
        partition_types: dict,
        table: TableInfo,
    ) -> Iterator[Page]:
        produced = False
        for page in reader.read_pages():
            produced = True
            yield self._attach_partition_columns(
                page, columns, present, partition_values, partition_types, table
            )
        if not produced:
            yield self._empty_page(columns, table, partition_types)

    def _partition_matches(
        self,
        predicate: RowExpression,
        partition_values: dict,
        partition_types: dict,
    ) -> bool:
        bindings: dict[str, Block] = {
            key: constant_block(
                _coerce(value, partition_types[key]), partition_types[key], 1
            )
            for key, value in partition_values.items()
        }
        mask = self._connector._evaluator.filter_mask(predicate, bindings, 1)
        return bool(mask[0])

    def _restriction(
        self, handle: ConnectorTableHandle, data_columns: list[str]
    ) -> Optional[dict[str, list[str]]]:
        if not handle.projected_columns:
            return None
        restrict: dict[str, list[str]] = {}
        for path in handle.projected_columns:
            top = path.split(".")[0]
            if top in data_columns and "." in path:
                restrict.setdefault(top, []).append(path)
        # A bare top-level request means "whole column": drop restriction.
        for path in handle.projected_columns:
            if "." not in path:
                restrict.pop(path, None)
        return restrict or None

    def _pages_old_reader(
        self,
        file: ParquetFile,
        table: TableInfo,
        columns: Sequence[str],
        data_columns: list[str],
        partition_values: dict,
        partition_types: dict,
    ) -> Iterator[Page]:
        reader = OldParquetReader(file)
        file_columns = file.schema.column_names()
        produced = False
        for page in reader.read_pages():
            produced = True
            blocks: list[Block] = []
            for column in columns:
                if column in partition_values:
                    blocks.append(
                        constant_block(
                            _coerce(partition_values[column], partition_types[column]),
                            partition_types[column],
                            page.position_count,
                        )
                    )
                elif column in file_columns:
                    blocks.append(page.block(file_columns.index(column)))
                else:
                    # Column added to the table after this file was written.
                    column_type = dict(table.columns)[column]
                    blocks.append(constant_block(None, column_type, page.position_count))
            yield Page(blocks, page.position_count)
        if not produced:
            yield self._empty_page(columns, table, partition_types)

    def _attach_partition_columns(
        self,
        page: Page,
        columns: Sequence[str],
        present_columns: list[str],
        partition_values: dict,
        partition_types: dict,
        table: TableInfo,
    ) -> Page:
        blocks: list[Block] = []
        for column in columns:
            if column in partition_values:
                blocks.append(
                    constant_block(
                        _coerce(partition_values[column], partition_types[column]),
                        partition_types[column],
                        page.position_count,
                    )
                )
            elif column in present_columns:
                blocks.append(page.block(present_columns.index(column)))
            else:
                column_type = dict(table.columns)[column]
                blocks.append(constant_block(None, column_type, page.position_count))
        return Page(blocks, page.position_count)

    def _empty_page(
        self, columns: Sequence[str], table: TableInfo, partition_types: dict
    ) -> Page:
        all_types = dict(table.all_columns())
        return Page.from_columns([all_types[c] for c in columns], [[] for _ in columns])


class _ReaderPages:
    """Page iterator that exposes the backing reader's statistics.

    The scan operator picks up ``reader_stats`` (duck-typed via getattr)
    after draining the split, folding row-group skip counts into the
    query stats; values are final only once iteration completes.
    """

    def __init__(self, pages: Iterator[Page], reader_stats) -> None:
        self._pages = pages
        self.reader_stats = reader_stats

    def __iter__(self) -> "_ReaderPages":
        return self

    def __next__(self) -> Page:
        return next(self._pages)


def _split_dynamic_conjuncts(
    dynamic: Optional[dict], table: TableInfo
) -> tuple[Optional[RowExpression], Optional[RowExpression]]:
    """Split a serialized dynamic filter into (partition, data) predicates.

    Conjuncts whose variables are all partition keys go left; everything
    else goes right (each dynamic filter conjunct targets one column, so
    mixed conjuncts cannot occur).
    """
    if not dynamic:
        return None, None
    partition_keys = set(table.partition_key_names())
    partition_terms: list[RowExpression] = []
    data_terms: list[RowExpression] = []
    for conjunct in conjuncts(expression_from_dict(dynamic)):
        names = {v.name for v in conjunct.variables()}
        if names and names <= partition_keys:
            partition_terms.append(conjunct)
        else:
            data_terms.append(conjunct)
    return (
        combine_conjuncts(partition_terms) if partition_terms else None,
        combine_conjuncts(data_terms) if data_terms else None,
    )


class _ColumnAccumulator:
    """Folds per-chunk footer statistics into one column's table stats."""

    def __init__(self, presto_type: PrestoType) -> None:
        self.presto_type = presto_type
        self.min_value: Any = None
        self.max_value: Any = None
        self.null_count = 0
        self.total = 0
        # Exact distinct values while every chunk is dictionary-encoded;
        # None once any chunk forces the heuristic fallback.
        self.dictionary_values: Optional[set] = set()

    def add_missing(self, num_rows: int) -> None:
        self.total += num_rows
        self.null_count += num_rows

    def add_chunk(self, statistics, dictionary: Optional[list]) -> None:
        self.total += statistics.num_values
        self.null_count += statistics.null_count
        low, high = statistics.min_value, statistics.max_value
        if low is not None and low == low:  # skip absent or NaN bounds
            self.min_value = low if self.min_value is None else min(self.min_value, low)
        if high is not None and high == high:
            self.max_value = high if self.max_value is None else max(self.max_value, high)
        if self.dictionary_values is not None:
            if dictionary is None:
                self.dictionary_values = None
            else:
                self.dictionary_values.update(dictionary)

    def finish(self) -> ColumnStatisticsEntry:
        defined = self.total - self.null_count
        if self.dictionary_values is not None:
            ndv = len(self.dictionary_values)
        elif (
            self.presto_type in (BIGINT, INTEGER)
            and self.min_value is not None
            and self.max_value is not None
        ):
            ndv = min(defined, int(self.max_value) - int(self.min_value) + 1)
        elif self.presto_type is BOOLEAN:
            ndv = min(defined, 2)
        else:
            ndv = defined
        return ColumnStatisticsEntry(
            ndv=max(ndv, 0),
            min_value=self.min_value,
            max_value=self.max_value,
            null_fraction=(self.null_count / self.total) if self.total else 0.0,
        )


def _count_prefixed_entries(data: bytes) -> int:
    """Entry count of a length-prefixed PLAIN segment (dictionary pages)."""
    import struct

    count = 0
    pos = 0
    while pos < len(data):
        (length,) = struct.unpack_from("<I", data, pos)
        pos += 4 + length
        count += 1
    return count


def _dereferences_to_paths(expression: RowExpression) -> RowExpression:
    """Rewrite DEREFERENCE(var, 'f')... chains as dotted-path variables."""
    from repro.core.expressions import (
        CallExpression,
        ConstantExpression,
        SpecialForm,
        SpecialFormExpression,
        VariableReferenceExpression,
    )

    def chain(expr) -> Optional[str]:
        if isinstance(expr, VariableReferenceExpression):
            return expr.name
        if (
            isinstance(expr, SpecialFormExpression)
            and expr.form is SpecialForm.DEREFERENCE
            and isinstance(expr.arguments[1], ConstantExpression)
        ):
            base = chain(expr.arguments[0])
            if base is not None:
                return f"{base}.{expr.arguments[1].value}"
        return None

    def rewrite(expr: RowExpression) -> RowExpression:
        if (
            isinstance(expr, SpecialFormExpression)
            and expr.form is SpecialForm.DEREFERENCE
        ):
            path = chain(expr)
            if path is not None:
                return VariableReferenceExpression(path, expr.type)
        if isinstance(expr, CallExpression):
            return CallExpression(
                expr.display_name,
                expr.function_handle,
                expr.type,
                tuple(rewrite(a) for a in expr.arguments),
            )
        if isinstance(expr, SpecialFormExpression):
            return SpecialFormExpression(
                expr.form, expr.type, tuple(rewrite(a) for a in expr.arguments)
            )
        return expr

    return rewrite(expression)


def _coerce(value: str, presto_type: PrestoType) -> Any:
    """Convert a partition value string to its typed representation."""
    if presto_type in (BIGINT, INTEGER):
        return int(value)
    if presto_type is DOUBLE:
        return float(value)
    if presto_type is BOOLEAN:
        return value.lower() in ("true", "1", "t")
    return value
