"""Simulated Pinot cluster and the Presto-Pinot connector.

Pinot's execution profile differs from Druid's in degree, not kind
(star-tree pre-aggregation makes grouped aggregations slightly cheaper,
broker fan-out slightly leaner); the connector surface is identical.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimulatedClock
from repro.connectors.realtime.connector import RealtimeOlapConnector
from repro.connectors.realtime.store import RealtimeOlapStore, StoreCostModel


class PinotCluster(RealtimeOlapStore):
    """Pinot: star-tree indexes, low-latency broker."""

    def __init__(
        self,
        nodes: int = 100,
        clock: Optional[SimulatedClock] = None,
        cost_model: Optional[StoreCostModel] = None,
    ) -> None:
        super().__init__(
            name="pinot",
            nodes=nodes,
            clock=clock,
            cost_model=cost_model
            or StoreCostModel(
                base_latency_ms=10.0,
                index_lookup_ms=0.04,
                scan_ns_per_value=4.5,
                aggregate_ns_per_value=4.0,
            ),
        )


class PinotConnector(RealtimeOlapConnector):
    """Presto-Pinot connector."""

    def __init__(self, cluster: PinotCluster, schema_name: str = "pinot") -> None:
        super().__init__(cluster, schema_name)
        self.name = "pinot"
