"""Simulated real-time OLAP stores (Druid, Pinot) and their connectors.

Section IV.B: "Druid and Pinot are real time systems, which have in memory
bitmap indices, inverted indices, pre-aggregations or dictionaries,
enabling sub-second query latency ... they only have limited support for
joins and subquery.  Presto connectors bridge the gap."
"""

from repro.connectors.realtime.store import (
    NativeQuery,
    RealtimeOlapStore,
    Segment,
    StoreCostModel,
)
from repro.connectors.realtime.connector import RealtimeOlapConnector
from repro.connectors.realtime.druid import DruidCluster, DruidConnector
from repro.connectors.realtime.pinot import PinotCluster, PinotConnector

__all__ = [
    "NativeQuery",
    "RealtimeOlapStore",
    "Segment",
    "StoreCostModel",
    "RealtimeOlapConnector",
    "DruidCluster",
    "DruidConnector",
    "PinotCluster",
    "PinotConnector",
]
