"""A simulated real-time OLAP store: segments, inverted indexes, native
aggregation, and a deterministic latency model.

The store *really executes* queries (filters, group-bys, aggregations over
in-memory segments) so connector results are verifiable, and it *charges*
a cost model calibrated to the systems' defining behaviours: indexed
filters are nearly free, aggregations run close to memory bandwidth, and
segments execute in parallel across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.common.clock import SimulatedClock
from repro.common.errors import ConnectorError
from repro.core.blocks import Block, PrimitiveBlock
from repro.core.evaluator import Evaluator
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    conjuncts,
    expression_from_dict,
)
from repro.core.functions import FunctionHandle, default_registry
from repro.core.types import BIGINT, DOUBLE, PrestoType, VARCHAR


@dataclass(frozen=True)
class NativeQuery:
    """The store's native query model (Druid groupBy/scan, Pinot SQL-ish).

    ``filter`` is a serialized RowExpression over column names — the
    self-contained representation connectors push down (Table I).
    ``aggregations`` are serialized
    :class:`~repro.connectors.spi.AggregationFunction` dicts.
    """

    datasource: str
    columns: tuple[str, ...] = ()
    filter: Optional[dict] = None
    grouping: tuple[str, ...] = ()
    aggregations: tuple[dict, ...] = ()
    limit: Optional[int] = None

    @property
    def is_aggregation(self) -> bool:
        return bool(self.aggregations) or bool(self.grouping)


@dataclass
class StoreCostModel:
    """Latency model parameters (milliseconds / nanoseconds)."""

    base_latency_ms: float = 15.0  # broker round trip + planning
    index_lookup_ms: float = 0.05  # bitmap/inverted index probe per conjunct
    scan_ns_per_value: float = 4.0  # full-column scan per value
    aggregate_ns_per_value: float = 6.0  # aggregation work per kept value
    result_ms_per_row: float = 0.0008  # serializing result rows


@dataclass
class Segment:
    """One immutable segment: columnar data plus inverted indexes."""

    columns: dict[str, list[Any]]
    inverted: dict[str, dict[Any, np.ndarray]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("segment columns must have equal lengths")
        self.num_rows = lengths.pop() if lengths else 0

    def build_inverted_index(self, column: str) -> None:
        """Build an inverted index (value → row ids) for a column."""
        postings: dict[Any, list[int]] = {}
        for row_id, value in enumerate(self.columns[column]):
            postings.setdefault(value, []).append(row_id)
        self.inverted[column] = {
            value: np.array(rows, dtype=np.int64) for value, rows in postings.items()
        }


class RealtimeOlapStore:
    """The simulated cluster: datasources → segments, spread over nodes."""

    def __init__(
        self,
        name: str = "realtime",
        nodes: int = 100,
        clock: Optional[SimulatedClock] = None,
        cost_model: Optional[StoreCostModel] = None,
    ) -> None:
        self.name = name
        self.nodes = nodes
        self.clock = clock or SimulatedClock()
        self.cost = cost_model or StoreCostModel()
        self._datasources: dict[str, tuple[list[tuple[str, PrestoType]], list[Segment]]] = {}
        self._evaluator = Evaluator()
        self.queries_served = 0

    # -- data management ------------------------------------------------------

    def create_datasource(
        self, name: str, columns: Sequence[tuple[str, PrestoType]]
    ) -> None:
        self._datasources[name] = (list(columns), [])

    def add_segment(self, datasource: str, rows: Sequence[tuple]) -> Segment:
        columns, segments = self._require(datasource)
        segment = Segment(
            {name: [row[i] for row in rows] for i, (name, _) in enumerate(columns)}
        )
        for column, presto_type in columns:
            if presto_type is VARCHAR or presto_type is BIGINT:
                segment.build_inverted_index(column)
        segments.append(segment)
        return segment

    def remove_segment(self, datasource: str, segment: Segment) -> None:
        """Drop one segment (by identity) from a datasource.

        Real-time stores hand their in-memory tail segments off to deep
        storage and drop them; the streaming compactor does the same after
        sealing a tail segment into a lakehouse snapshot.
        """
        _, segments = self._require(datasource)
        segments.remove(segment)

    def datasource_names(self) -> list[str]:
        return sorted(self._datasources)

    def datasource_columns(self, name: str) -> list[tuple[str, PrestoType]]:
        return list(self._require(name)[0])

    def segments(self, datasource: str) -> list[Segment]:
        return self._require(datasource)[1]

    def _require(self, datasource: str):
        entry = self._datasources.get(datasource)
        if entry is None:
            raise ConnectorError(f"{self.name}: no datasource {datasource!r}")
        return entry

    # -- native query execution ---------------------------------------------------

    def query(self, native: NativeQuery) -> list[tuple]:
        """Full-cluster native query: segments fan out across nodes.

        This is the baseline of figure 16 — what a user gets by querying
        Druid/Pinot directly.
        """
        self.queries_served += 1
        _, segments = self._require(native.datasource)
        per_segment_results: list[list[tuple]] = []
        per_segment_cost: list[float] = []
        for segment in segments:
            rows, cost_ms = self._execute_segment(segment, native)
            per_segment_results.append(rows)
            per_segment_cost.append(cost_ms)
        # Segments run in parallel across nodes; each node sums its share.
        node_costs = [0.0] * max(self.nodes, 1)
        for index, cost_ms in enumerate(per_segment_cost):
            node_costs[index % len(node_costs)] += cost_ms
        self.clock.advance(self.cost.base_latency_ms)
        self.clock.parallel_advance(node_costs)
        merged = self._merge(native, per_segment_results)
        self.clock.advance(len(merged) * self.cost.result_ms_per_row)
        return merged

    def query_segment(self, datasource: str, segment_index: int, native: NativeQuery) -> list[tuple]:
        """Single-segment query, the unit a connector split executes.

        Only the segment's own cost is charged — the engine's scheduler
        accounts for cross-split parallelism.
        """
        rows, cost_ms = self.query_segment_costed(datasource, segment_index, native)
        self.clock.advance(cost_ms)
        return rows

    def query_segment_costed(
        self, datasource: str, segment_index: int, native: NativeQuery
    ) -> tuple[list[tuple], float]:
        """Like :meth:`query_segment` but returns the cost instead of
        charging it, so a parallel caller can account lanes itself."""
        self.queries_served += 1
        _, segments = self._require(datasource)
        rows, cost_ms = self._execute_segment(segments[segment_index], native)
        return rows, cost_ms + len(rows) * self.cost.result_ms_per_row

    # -- execution internals ---------------------------------------------------------

    def _execute_segment(
        self, segment: Segment, native: NativeQuery
    ) -> tuple[list[tuple], float]:
        cost_ms = 0.0
        predicate = (
            expression_from_dict(native.filter) if native.filter is not None else None
        )

        selected: Optional[np.ndarray] = None
        residual_conjuncts: list[RowExpression] = []
        if predicate is not None:
            indexed_row_sets: list[np.ndarray] = []
            for conjunct in conjuncts(predicate):
                rows = self._probe_index(segment, conjunct)
                if rows is not None:
                    indexed_row_sets.append(rows)
                    cost_ms += self.cost.index_lookup_ms
                else:
                    residual_conjuncts.append(conjunct)
            if indexed_row_sets:
                selected = indexed_row_sets[0]
                for rows in indexed_row_sets[1:]:
                    selected = np.intersect1d(selected, rows, assume_unique=True)

        if selected is None:
            selected = np.arange(segment.num_rows)
            if predicate is not None and residual_conjuncts:
                cost_ms += (
                    segment.num_rows
                    * len(residual_conjuncts)
                    * self.cost.scan_ns_per_value
                    / 1e6
                )
        elif residual_conjuncts:
            cost_ms += (
                len(selected) * len(residual_conjuncts) * self.cost.scan_ns_per_value / 1e6
            )

        if residual_conjuncts:
            from repro.core.expressions import combine_conjuncts

            residual = combine_conjuncts(residual_conjuncts)
            bindings = self._bindings(segment, selected, residual.variables())
            mask = self._evaluator.filter_mask(residual, bindings, len(selected))
            selected = selected[np.nonzero(mask)[0]]

        if native.is_aggregation:
            rows = self._aggregate(segment, selected, native)
            cost_ms += (
                len(selected)
                * max(len(native.aggregations), 1)
                * self.cost.aggregate_ns_per_value
                / 1e6
            )
        else:
            if native.limit is not None:
                selected = selected[: native.limit]
            columns = [list(segment.columns[c]) for c in native.columns]
            rows = [tuple(columns[i][r] for i in range(len(columns))) for r in selected]
            cost_ms += len(selected) * len(native.columns) * self.cost.scan_ns_per_value / 1e6
        return rows, cost_ms

    def _probe_index(
        self, segment: Segment, conjunct: RowExpression
    ) -> Optional[np.ndarray]:
        """Serve equality/IN conjuncts from the inverted index."""
        if (
            isinstance(conjunct, CallExpression)
            and conjunct.function_handle.name == "equal"
            and isinstance(conjunct.arguments[0], VariableReferenceExpression)
            and isinstance(conjunct.arguments[1], ConstantExpression)
        ):
            column = conjunct.arguments[0].name
            if column in segment.inverted:
                return segment.inverted[column].get(
                    conjunct.arguments[1].value, np.array([], dtype=np.int64)
                )
        if (
            isinstance(conjunct, SpecialFormExpression)
            and conjunct.form is SpecialForm.IN
            and isinstance(conjunct.arguments[0], VariableReferenceExpression)
            and all(isinstance(a, ConstantExpression) for a in conjunct.arguments[1:])
        ):
            column = conjunct.arguments[0].name
            if column in segment.inverted:
                parts = [
                    segment.inverted[column].get(a.value, np.array([], dtype=np.int64))
                    for a in conjunct.arguments[1:]
                ]
                return np.unique(np.concatenate(parts)) if parts else np.array([], dtype=np.int64)
        return None

    def _bindings(
        self, segment: Segment, selected: np.ndarray, variables
    ) -> dict[str, Block]:
        bindings: dict[str, Block] = {}
        for variable in variables:
            values = segment.columns[variable.name]
            bindings[variable.name] = PrimitiveBlock.from_values(
                variable.type, [values[r] for r in selected]
            )
        return bindings

    def _aggregate(
        self, segment: Segment, selected: np.ndarray, native: NativeQuery
    ) -> list[tuple]:
        registry = default_registry()
        from repro.connectors.spi import AggregationFunction

        functions = [AggregationFunction.from_dict(a) for a in native.aggregations]
        implementations = [registry.aggregate_for(f.function_handle) for f in functions]
        group_columns = [segment.columns[c] for c in native.grouping]
        agg_inputs = [[segment.columns[c] for c in f.inputs] for f in functions]

        groups: dict[tuple, list[Any]] = {}
        order: list[tuple] = []
        for row_id in selected:
            key = tuple(column[row_id] for column in group_columns)
            states = groups.get(key)
            if states is None:
                states = [impl.create_state() for impl in implementations]
                groups[key] = states
                order.append(key)
            for i, impl in enumerate(implementations):
                arguments = tuple(column[row_id] for column in agg_inputs[i])
                states[i] = impl.add_input(states[i], arguments)
        return [
            key + tuple(impl.finalize(s) for impl, s in zip(implementations, groups[key]))
            for key in order
        ]

    def _merge(
        self, native: NativeQuery, per_segment: list[list[tuple]]
    ) -> list[tuple]:
        if not native.is_aggregation:
            merged = [row for rows in per_segment for row in rows]
            if native.limit is not None:
                merged = merged[: native.limit]
            return merged
        registry = default_registry()
        from repro.connectors.spi import AggregationFunction

        functions = [AggregationFunction.from_dict(a) for a in native.aggregations]
        implementations = [registry.aggregate_for(f.function_handle) for f in functions]
        key_width = len(native.grouping)
        groups: dict[tuple, list[Any]] = {}
        order: list[tuple] = []
        for rows in per_segment:
            for row in rows:
                key = row[:key_width]
                partials = row[key_width:]
                states = groups.get(key)
                if states is None:
                    states = [impl.create_state() for impl in implementations]
                    groups[key] = states
                    order.append(key)
                for i, impl in enumerate(implementations):
                    states[i] = impl.merge(states[i], partials[i])
        merged = [
            key + tuple(impl.finalize(s) for impl, s in zip(implementations, groups[key]))
            for key in order
        ]
        if native.limit is not None:
            merged = merged[: native.limit]
        return merged
