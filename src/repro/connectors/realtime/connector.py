"""The shared Presto connector for real-time OLAP stores (section IV.B).

Implements the full pushdown surface: predicate pushdown (absorbed into
the native query's filter), limit pushdown, projection pushdown, and —
the one figure 2 illustrates — aggregation pushdown, where the store
executes partial aggregations per segment and the engine runs only the
final merge.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.connectors.realtime.store import NativeQuery, RealtimeOlapStore
from repro.connectors.spi import (
    AggregationFunction,
    AggregationPushdownResult,
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.expressions import RowExpression, expression_from_dict
from repro.core.functions import default_registry
from repro.core.page import Page
from repro.core.types import parse_type


class RealtimeOlapConnector(Connector):
    """Connector over a :class:`RealtimeOlapStore` (Druid/Pinot)."""

    # Network cost of streaming a row from the store into the engine.
    stream_ms_per_row: float = 0.001

    def __init__(
        self,
        store: RealtimeOlapStore,
        schema_name: str = "default",
        presto_workers: int = 100,
    ) -> None:
        self.store = store
        self.schema_name = schema_name
        self.presto_workers = presto_workers
        self.name = store.name
        self._metadata = _Metadata(self)
        self._split_manager = _SplitManager(self)
        self._provider = _Provider(self)

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider


class _Metadata(ConnectorMetadata):
    def __init__(self, connector: RealtimeOlapConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [self._connector.schema_name]

    def list_tables(self, schema_name: str) -> list[str]:
        return self._connector.store.datasource_names()

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        if table_name in self._connector.store.datasource_names():
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        columns = self._connector.store.datasource_columns(handle.table_name)
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(ColumnMetadata(n, t) for n, t in columns),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        # The store evaluates arbitrary RowExpressions over its columns, so
        # the whole predicate is absorbed (indexed conjuncts are served from
        # inverted indexes, the rest by scanning).
        columns = {n for n, _ in self._connector.store.datasource_columns(handle.table_name)}
        if not all(v.name in columns for v in predicate.variables()):
            return None
        existing = handle.constraint
        if existing is not None:
            from repro.core.expressions import and_

            predicate = and_(expression_from_dict(existing), predicate)
        return FilterPushdownResult(
            handle.with_(constraint=predicate.to_dict()), None
        )

    def apply_limit(
        self, handle: ConnectorTableHandle, limit: int
    ) -> Optional[ConnectorTableHandle]:
        if handle.limit is not None and handle.limit <= limit:
            return None
        return handle.with_(limit=limit)

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        top_level = []
        for path in columns:
            top = path.split(".")[0]
            if top not in top_level:
                top_level.append(top)
        return handle.with_(projected_columns=tuple(top_level))

    def apply_aggregation(
        self,
        handle: ConnectorTableHandle,
        aggregations: Sequence[AggregationFunction],
        grouping_columns: Sequence[str],
    ) -> Optional[AggregationPushdownResult]:
        if handle.aggregation is not None:
            return None
        store_columns = dict(self._connector.store.datasource_columns(handle.table_name))
        for aggregation in aggregations:
            if not all(c in store_columns for c in aggregation.inputs):
                return None
        if not all(c in store_columns for c in grouping_columns):
            return None
        spec = {
            "grouping": list(grouping_columns),
            "aggregations": [a.to_dict() for a in aggregations],
        }
        output_columns = [
            ColumnMetadata(c, store_columns[c]) for c in grouping_columns
        ] + [
            ColumnMetadata(
                a.output_name, parse_type(a.function_handle.return_type)
            )
            for a in aggregations
        ]
        return AggregationPushdownResult(
            handle.with_(aggregation=spec), tuple(output_columns)
        )


class _SplitManager(ConnectorSplitManager):
    def __init__(self, connector: RealtimeOlapConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        segments = self._connector.store.segments(handle.table_name)
        return [
            ConnectorSplit(
                split_id=f"{self._connector.name}:{handle.table_name}:{index}",
                info=(("segment", index),),
            )
            for index in range(len(segments))
        ] or [
            ConnectorSplit(
                split_id=f"{self._connector.name}:{handle.table_name}:empty",
                info=(("segment", -1),),
            )
        ]


class _Provider(ConnectorRecordSetProvider):
    def __init__(self, connector: RealtimeOlapConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        connector = self._connector
        store = connector.store
        segment_index = split.info_dict()["segment"]

        if handle.aggregation is not None:
            spec = handle.aggregation
            native = NativeQuery(
                datasource=handle.table_name,
                filter=handle.constraint,
                grouping=tuple(spec["grouping"]),
                aggregations=tuple(spec["aggregations"]),
                limit=handle.limit,
            )
            output_names = list(spec["grouping"]) + [
                AggregationFunction.from_dict(a).output_name
                for a in spec["aggregations"]
            ]
            output_types = {
                c.name: c.type
                for c in connector._metadata.apply_aggregation(
                    ConnectorTableHandle(handle.schema_name, handle.table_name),
                    [AggregationFunction.from_dict(a) for a in spec["aggregations"]],
                    spec["grouping"],
                ).output_columns
            }
        else:
            native = NativeQuery(
                datasource=handle.table_name,
                columns=tuple(columns),
                filter=handle.constraint,
                limit=handle.limit,
            )
            output_names = list(columns)
            output_types = dict(store.datasource_columns(handle.table_name))

        if segment_index < 0:
            rows: list[tuple] = []
        else:
            rows, cost_ms = store.query_segment_costed(
                handle.table_name, segment_index, native
            )
            # Splits execute in parallel across Presto workers; charging
            # cost/lanes per split makes the sequential in-process driver
            # accumulate the balanced-parallel wall clock (sum/lanes).
            lanes = max(
                1,
                min(len(store.segments(handle.table_name)), connector.presto_workers),
            )
            store.clock.advance(cost_ms / lanes)
        # Streaming into the engine costs network time per row.
        store.clock.advance(len(rows) * connector.stream_ms_per_row)

        indexes = [output_names.index(c) for c in columns]
        types = [output_types[c] for c in columns]
        yield Page.from_rows(
            types, [tuple(row[i] for i in indexes) for row in rows]
        )
