"""Simulated Druid cluster and the Presto-Druid connector.

Matches the figure 16 testbed shape: a 100-node Druid cluster holding
production-like segments, queried either natively or through Presto with
predicate / limit / aggregation pushdown.
"""

from __future__ import annotations

from typing import Optional

from repro.common.clock import SimulatedClock
from repro.connectors.realtime.connector import RealtimeOlapConnector
from repro.connectors.realtime.store import RealtimeOlapStore, StoreCostModel


class DruidCluster(RealtimeOlapStore):
    """Druid: bitmap-indexed segments, deep storage on HDFS (not modeled
    beyond ingestion), sub-second brokered queries."""

    def __init__(
        self,
        nodes: int = 100,
        clock: Optional[SimulatedClock] = None,
        cost_model: Optional[StoreCostModel] = None,
    ) -> None:
        super().__init__(
            name="druid",
            nodes=nodes,
            clock=clock,
            cost_model=cost_model
            or StoreCostModel(
                base_latency_ms=15.0,
                index_lookup_ms=0.05,
                scan_ns_per_value=4.0,
                aggregate_ns_per_value=6.0,
            ),
        )


class DruidConnector(RealtimeOlapConnector):
    """Presto-Druid connector."""

    def __init__(self, cluster: DruidCluster, schema_name: str = "druid") -> None:
        super().__init__(cluster, schema_name)
        self.name = "druid"
