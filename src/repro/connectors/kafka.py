"""Simulated Kafka and the Presto-Kafka connector (section XI's list).

The simulated broker keeps topics as partitioned append-only logs.  The
connector maps each topic to a table: message fields become columns and
three hidden columns expose log coordinates (``_partition_id``,
``_offset``, ``_timestamp_ms``).  Range predicates on the hidden columns
push down as log seeks, so "tail the last five minutes" queries do not
scan the whole topic.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.common.errors import ConnectorError
from repro.common.hashing import stable_hash
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    VariableReferenceExpression,
    combine_conjuncts,
    conjuncts,
    expression_from_dict,
)
from repro.core.page import Page
from repro.core.types import BIGINT, PrestoType

HIDDEN_COLUMNS: list[tuple[str, PrestoType]] = [
    ("_partition_id", BIGINT),
    ("_offset", BIGINT),
    ("_timestamp_ms", BIGINT),
]


@dataclass
class _Record:
    offset: int
    timestamp_ms: int
    values: tuple


class KafkaBroker:
    """Topics as partitioned, append-only, timestamp-ordered logs."""

    def __init__(
        self, clock: Optional[SimulatedClock] = None, fetch_ms_per_record: float = 0.0005
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.fetch_ms_per_record = fetch_ms_per_record
        self._topics: dict[str, tuple[list[tuple[str, PrestoType]], list[list[_Record]]]] = {}
        self.records_fetched = 0

    def create_topic(
        self,
        name: str,
        fields: Sequence[tuple[str, PrestoType]],
        partitions: int = 3,
    ) -> None:
        self._topics[name] = (list(fields), [[] for _ in range(partitions)])

    def produce(
        self,
        topic: str,
        values: Sequence[Any],
        partition: Optional[int] = None,
        timestamp_ms: Optional[int] = None,
    ) -> int:
        """Append one message; returns its offset."""
        fields, partitions = self._require(topic)
        if len(values) != len(fields):
            raise ConnectorError(
                f"kafka: message has {len(values)} fields, topic {topic!r} has {len(fields)}"
            )
        if partition is None:
            # Key-hash partitioning must be process-stable: builtin hash()
            # of a string varies with PYTHONHASHSEED, which would scatter
            # the same produce sequence differently on every run.
            partition = stable_hash(str(values[0])) % len(partitions)
        log = partitions[partition]
        timestamp = int(
            timestamp_ms if timestamp_ms is not None else self.clock.now_ms()
        )
        if log and timestamp < log[-1].timestamp_ms:
            timestamp = log[-1].timestamp_ms  # logs are time-ordered
        record = _Record(len(log), timestamp, tuple(values))
        log.append(record)
        return record.offset

    def _require(self, topic: str):
        entry = self._topics.get(topic)
        if entry is None:
            raise ConnectorError(f"kafka: no topic {topic!r}")
        return entry

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def fields(self, topic: str) -> list[tuple[str, PrestoType]]:
        return list(self._require(topic)[0])

    def partition_count(self, topic: str) -> int:
        return len(self._require(topic)[1])

    def end_offsets(self, topic: str) -> list[int]:
        """Per-partition log-end offsets (the next offset each would assign).

        A metadata lookup, not a consume: costs no simulated time.  The
        streaming pipeline uses it for consumer-lag gauges.
        """
        return [len(log) for log in self._require(topic)[1]]

    def log_records(self, topic: str, partition: int) -> list[_Record]:
        """The raw partition log, free of charge.

        The differential-oracle surface: test harnesses replay the full
        event log through a batch engine and compare it against hybrid
        reads, and that replay must not perturb the simulated clock or the
        ``records_fetched`` accounting of the run under test.
        """
        return list(self._require(topic)[1][partition])

    def fetch(
        self,
        topic: str,
        partition: int,
        min_offset: int = 0,
        max_offset: Optional[int] = None,
        min_timestamp_ms: Optional[int] = None,
        max_timestamp_ms: Optional[int] = None,
    ) -> list[_Record]:
        """Consume a partition range; only fetched records cost time."""
        _, partitions = self._require(topic)
        log = partitions[partition]
        start = max(min_offset, 0)
        end = len(log) if max_offset is None else min(max_offset + 1, len(log))
        if min_timestamp_ms is not None:
            # Timestamp index: logs are time-ordered, so binary search.
            timestamps = [r.timestamp_ms for r in log]
            start = max(start, bisect.bisect_left(timestamps, min_timestamp_ms))
        records = log[start:end]
        if max_timestamp_ms is not None:
            records = [r for r in records if r.timestamp_ms <= max_timestamp_ms]
        self.records_fetched += len(records)
        self.clock.advance(len(records) * self.fetch_ms_per_record)
        return records


class KafkaConnector(Connector):
    """Presto-Kafka connector: topic → table with hidden log coordinates."""

    name = "kafka"

    def __init__(self, broker: KafkaBroker, schema_name: str = "kafka") -> None:
        self.broker = broker
        self.schema_name = schema_name
        self._metadata = _KafkaMetadata(self)
        self._split_manager = _KafkaSplitManager(self)
        self._provider = _KafkaProvider(self)

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider

    def all_columns(self, topic: str) -> list[tuple[str, PrestoType]]:
        return self.broker.fields(topic) + HIDDEN_COLUMNS


class _KafkaMetadata(ConnectorMetadata):
    def __init__(self, connector: KafkaConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [self._connector.schema_name]

    def list_tables(self, schema_name: str) -> list[str]:
        return self._connector.broker.topics()

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        if table_name in self._connector.broker.topics():
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(
                ColumnMetadata(n, t)
                for n, t in self._connector.all_columns(handle.table_name)
            ),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        """Absorb offset/timestamp range conjuncts as log seeks."""
        absorbed: list[RowExpression] = []
        remaining: list[RowExpression] = []
        for conjunct in conjuncts(predicate):
            if _as_log_range(conjunct) is not None:
                absorbed.append(conjunct)
            else:
                remaining.append(conjunct)
        if not absorbed:
            return None
        if handle.constraint is not None:
            absorbed.insert(0, expression_from_dict(handle.constraint))
        remaining_expression = combine_conjuncts(remaining)
        return FilterPushdownResult(
            handle.with_(constraint=combine_conjuncts(absorbed).to_dict()),
            None if remaining_expression is None else remaining_expression.to_dict(),
        )

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        top_level: list[str] = []
        for path in columns:
            top = path.split(".")[0]
            if top not in top_level:
                top_level.append(top)
        return handle.with_(projected_columns=tuple(top_level))

    def apply_limit(
        self, handle: ConnectorTableHandle, limit: int
    ) -> Optional[ConnectorTableHandle]:
        if handle.limit is not None and handle.limit <= limit:
            return None
        return handle.with_(limit=limit)


def _as_log_range(conjunct: RowExpression) -> Optional[tuple[str, str, int]]:
    """Match ``_offset``/``_timestamp_ms`` range conjuncts."""
    if not (
        isinstance(conjunct, CallExpression)
        and len(conjunct.arguments) == 2
        and isinstance(conjunct.arguments[0], VariableReferenceExpression)
        and isinstance(conjunct.arguments[1], ConstantExpression)
    ):
        return None
    column = conjunct.arguments[0].name
    if column not in ("_offset", "_timestamp_ms"):
        return None
    name = conjunct.function_handle.name
    if name not in ("greater_than_or_equal", "less_than_or_equal", "equal"):
        return None
    return column, name, conjunct.arguments[1].value


class _KafkaSplitManager(ConnectorSplitManager):
    def __init__(self, connector: KafkaConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        count = self._connector.broker.partition_count(handle.table_name)
        return [
            ConnectorSplit(
                split_id=f"kafka:{handle.table_name}:{partition}",
                info=(("partition", partition),),
            )
            for partition in range(count)
        ]


class _KafkaProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: KafkaConnector) -> None:
        self._connector = connector

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        connector = self._connector
        partition = split.info_dict()["partition"]

        ranges = {
            "_offset": [0, None],
            "_timestamp_ms": [None, None],
        }
        if handle.constraint is not None:
            for conjunct in conjuncts(expression_from_dict(handle.constraint)):
                parsed = _as_log_range(conjunct)
                if parsed is None:
                    continue
                column, op, value = parsed
                low, high = ranges[column]
                if op in ("greater_than_or_equal", "equal"):
                    low = value if low is None else max(low, value)
                if op in ("less_than_or_equal", "equal"):
                    high = value if high is None else min(high, value)
                ranges[column] = [low, high]

        records = connector.broker.fetch(
            handle.table_name,
            partition,
            min_offset=ranges["_offset"][0] or 0,
            max_offset=ranges["_offset"][1],
            min_timestamp_ms=ranges["_timestamp_ms"][0],
            max_timestamp_ms=ranges["_timestamp_ms"][1],
        )
        if handle.limit is not None:
            records = records[: handle.limit]

        field_names = [n for n, _ in connector.broker.fields(handle.table_name)]
        types = dict(connector.all_columns(handle.table_name))
        rows = []
        for record in records:
            full = {
                **dict(zip(field_names, record.values)),
                "_partition_id": partition,
                "_offset": record.offset,
                "_timestamp_ms": record.timestamp_ms,
            }
            rows.append(tuple(full[c] for c in columns))
        yield Page.from_rows([types[c] for c in columns], rows)
