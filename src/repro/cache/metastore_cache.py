"""Metastore versioned cache (section VII, "a number of cache techniques").

Caches table metadata keyed by the metastore's global version counter:
any metastore mutation bumps the version and implicitly invalidates every
cached entry, giving strong freshness without explicit invalidation calls.
"""

from __future__ import annotations

from typing import Sequence

from repro.cache.lru import LruCache
from repro.metastore.metastore import HiveMetastore, PartitionInfo, TableInfo


class VersionedMetastoreCache:
    """Read-through cache over :class:`HiveMetastore`, version-keyed."""

    def __init__(
        self, metastore: HiveMetastore, max_entries: int = 10_000, metrics=None
    ) -> None:
        self._metastore = metastore
        self._cache = LruCache(max_entries, name="metastore", metrics=metrics)

    @property
    def stats(self):
        return self._cache.stats

    def bind_metrics(self, metrics) -> None:
        self._cache.bind_metrics(metrics)

    def get_table(self, database: str, name: str) -> TableInfo:
        key = ("table", self._metastore.version, database, name)
        return self._cache.get_or_load(
            key, lambda: self._metastore.get_table(database, name)
        )

    def list_partitions(self, database: str, name: str) -> list[PartitionInfo]:
        key = ("partitions", self._metastore.version, database, name)
        return self._cache.get_or_load(
            key, lambda: self._metastore.list_partitions(database, name)
        )

    def list_tables(self, database: str) -> list[str]:
        key = ("tables", self._metastore.version, database)
        return self._cache.get_or_load(
            key, lambda: self._metastore.list_tables(database)
        )
