"""Worker-local tiered data cache for parquet row-group bytes.

The follow-on literature to the paper ("Metadata Caching in Presto",
"Data Caching for Enterprise-Grade Petabyte-Scale OLAP" — the
RaptorX/Alluxio line) moves past metadata caches to caching the *data*
itself on each worker: a small hot tier in memory backed by a much larger
local-SSD tier, so repeat reads of the same split never touch remote
storage.  This module is that cache, simulated faithfully enough to
answer the sizing and policy questions those papers answer:

- :class:`CacheTier` — one byte-bounded tier with a pluggable
  admission/eviction policy (:class:`LruPolicy`, :class:`LfuPolicy`,
  :class:`TinyLfuPolicy`);
- :class:`TieredDataCache` — hot + SSD tiers with promotion on SSD hit
  and demotion of hot evictions into SSD, per-tier read latencies, and
  labeled metrics (``data_cache_{hits,misses,evictions,
  admission_rejects}_total{worker,tier,policy}``) plus ``data_cache``
  trace instants when a tracer is active;
- :class:`ShadowCache` — a key-only simulation of a ``shadow_factor``×
  larger cache running alongside the real one, answering "what hit ratio
  would we get if we bought more cache?" without buying it.

Everything is deterministic: eviction ties break on recency, the TinyLFU
sketch hashes with :func:`repro.common.hashing.stable_hash`, and no wall
clock or RNG is consulted — same access trace, same cache state.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.common.hashing import stable_hash
from repro.obs.trace import current_tracer

MIB = 1024 * 1024

HOT_TIER = "hot"
SSD_TIER = "ssd"
MISS = "miss"


# -- admission/eviction policies ----------------------------------------------


class LruPolicy:
    """Evict the least-recently-used entry; admit everything."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def record_access(self, key: str) -> None:
        """Called once per cache *read*, hit or miss (TinyLFU's sketch)."""

    def on_hit(self, key: str) -> None:
        self._order.move_to_end(key)

    def on_admit(self, key: str) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_evict(self, key: str) -> None:
        self._order.pop(key, None)

    def victim(self) -> str:
        return next(iter(self._order))

    def admit(self, candidate: str, victim: str) -> bool:
        return True

    def clear(self) -> None:
        self._order.clear()


class LfuPolicy(LruPolicy):
    """Evict the least-frequently-used entry; recency breaks ties.

    Frequencies count hits against *this tier's* residency (they reset
    when the entry is evicted), which is classic in-cache LFU.
    """

    name = "lfu"

    def __init__(self) -> None:
        super().__init__()
        self._counts: dict[str, int] = {}

    def on_hit(self, key: str) -> None:
        super().on_hit(key)
        self._counts[key] = self._counts.get(key, 0) + 1

    def on_admit(self, key: str) -> None:
        super().on_admit(key)
        self._counts[key] = 1

    def on_evict(self, key: str) -> None:
        super().on_evict(key)
        self._counts.pop(key, None)

    def victim(self) -> str:
        # _order iterates least-recently-used first, so the first key with
        # the minimal count is the LRU among the least-frequent — one
        # deterministic choice.
        return min(self._order, key=lambda key: self._counts[key])

    def clear(self) -> None:
        super().clear()
        self._counts.clear()


class FrequencySketch:
    """A small count-min sketch with saturating 4-bit counters and aging.

    The TinyLFU frequency estimator: ``rows`` hash rows over ``width``
    counters each; an increment bumps every row's counter (saturating at
    15), an estimate takes the minimum across rows.  Every
    ``sample_size`` increments all counters halve — the aging step that
    lets yesterday's hot keys cool off.
    """

    def __init__(self, width: int = 1024, rows: int = 4, sample_size: int = 4096) -> None:
        if width < 1 or rows < 1 or sample_size < 1:
            raise ValueError("sketch dimensions must be positive")
        self.width = width
        self.rows = rows
        self.sample_size = sample_size
        self._counters = [[0] * width for _ in range(rows)]
        self._increments = 0

    def _slots(self, key: str) -> list[int]:
        return [
            stable_hash(f"sketch{row}:{key}") % self.width for row in range(self.rows)
        ]

    def increment(self, key: str) -> None:
        for row, slot in enumerate(self._slots(key)):
            if self._counters[row][slot] < 15:
                self._counters[row][slot] += 1
        self._increments += 1
        if self._increments >= self.sample_size:
            self._age()

    def estimate(self, key: str) -> int:
        return min(
            self._counters[row][slot] for row, slot in enumerate(self._slots(key))
        )

    def _age(self) -> None:
        for row in self._counters:
            for slot in range(self.width):
                row[slot] //= 2
        self._increments = 0

    def clear(self) -> None:
        self._counters = [[0] * self.width for _ in range(self.rows)]
        self._increments = 0


class TinyLfuPolicy(LruPolicy):
    """LRU eviction order gated by a TinyLFU admission filter.

    The sketch observes every read (hit or miss); when the tier is full,
    a candidate is admitted only if its estimated access frequency
    exceeds the would-be victim's — a one-hit-wonder scan key never
    displaces a key the workload actually reuses.
    """

    name = "tinylfu"

    def __init__(self, sketch: Optional[FrequencySketch] = None) -> None:
        super().__init__()
        self.sketch = sketch or FrequencySketch()

    def record_access(self, key: str) -> None:
        self.sketch.increment(key)

    def admit(self, candidate: str, victim: str) -> bool:
        return self.sketch.estimate(candidate) > self.sketch.estimate(victim)

    def clear(self) -> None:
        # Keep the sketch: frequency history survives a cache flush, as
        # in W-TinyLFU (the *contents* are gone, the knowledge is not).
        super().clear()


POLICIES: dict[str, Callable[[], LruPolicy]] = {
    "lru": LruPolicy,
    "lfu": LfuPolicy,
    "tinylfu": TinyLfuPolicy,
}


# -- one tier -----------------------------------------------------------------


class CacheTier:
    """One byte-bounded tier: entries, sizes, optional payloads."""

    def __init__(self, name: str, capacity_bytes: int, policy: LruPolicy) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.used_bytes = 0
        self._entries: dict[str, tuple[int, Any]] = {}

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[str]:
        return list(self._entries)

    def get(self, key: str) -> Optional[tuple[int, Any]]:
        entry = self._entries.get(key)
        if entry is not None:
            self.policy.on_hit(key)
        return entry

    def put(self, key: str, size_bytes: int, value: Any = None) -> tuple[bool, list[tuple[str, int, Any]], bool]:
        """Insert; returns ``(admitted, evicted_entries, rejected_by_filter)``.

        Evicts victims until the entry fits.  An admission-filter policy
        (TinyLFU) may refuse the candidate instead of evicting a more
        valuable victim — then nothing changes and ``admitted`` is False.
        """
        if size_bytes > self.capacity_bytes:
            if key in self._entries:
                self.remove(key)
            return False, [], False
        evicted: list[tuple[str, int, Any]] = []
        if key in self._entries:
            old_size, _ = self._entries[key]
            self.used_bytes += size_bytes - old_size
            self._entries[key] = (size_bytes, value)
            self.policy.on_hit(key)
            # A grown entry may push the tier over capacity; the updated
            # key is most-recent, so it is never its own victim here.
            while self.used_bytes > self.capacity_bytes:
                victim = self.policy.victim()
                victim_size, victim_value = self._entries.pop(victim)
                self.used_bytes -= victim_size
                self.policy.on_evict(victim)
                evicted.append((victim, victim_size, victim_value))
            return True, evicted, False
        while self.used_bytes + size_bytes > self.capacity_bytes:
            victim = self.policy.victim()
            if not self.policy.admit(key, victim):
                # Roll back nothing: victims evicted so far were judged
                # colder than the candidate, and they are already gone.
                return False, evicted, True
            victim_size, victim_value = self._entries.pop(victim)
            self.used_bytes -= victim_size
            self.policy.on_evict(victim)
            evicted.append((victim, victim_size, victim_value))
        self._entries[key] = (size_bytes, value)
        self.used_bytes += size_bytes
        self.policy.on_admit(key)
        return True, evicted, False

    def remove(self, key: str) -> Optional[tuple[int, Any]]:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.used_bytes -= entry[0]
            self.policy.on_evict(key)
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.used_bytes = 0
        self.policy.clear()


# -- shadow cache -------------------------------------------------------------


class ShadowCache:
    """Key-only LRU simulation of a larger cache, for sizing decisions.

    Runs every access of the real cache through an LRU of
    ``capacity_bytes`` (typically ``shadow_factor ×`` the real total);
    its hit ratio estimates what that larger cache would achieve.  For an
    LRU-managed real cache the estimate is a guaranteed upper bound on
    the real hit ratio (LRU inclusion: a bigger LRU holds a superset),
    so ``estimated_hit_ratio() ∈ [real hit ratio, 1]``.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity_bytes = capacity_bytes
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self._used = 0

    def access(self, key: str, size_bytes: int) -> bool:
        if key in self._entries:
            self.hits += 1
            self._entries.move_to_end(key)
            return True
        self.misses += 1
        if size_bytes > self.capacity_bytes:
            return False
        while self._used + size_bytes > self.capacity_bytes:
            _, evicted_size = self._entries.popitem(last=False)
            self._used -= evicted_size
        self._entries[key] = size_bytes
        self._used += size_bytes
        return False

    def estimated_hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0


# -- the tiered cache ---------------------------------------------------------


@dataclass(frozen=True)
class DataCacheConfig:
    """Sizing, policy, and latency model of one worker's cache.

    Latencies are simulated milliseconds charged per read; the miss
    latency models only the *extra* remote round-trip — the bulk remote
    read cost lives in the split's own duration.
    """

    policy: str = "lru"
    hot_bytes: int = 64 * MIB
    ssd_bytes: int = 512 * MIB
    hot_read_ms: float = 0.05
    ssd_read_ms: float = 0.5
    miss_read_ms: float = 0.0
    shadow_factor: int = 4
    default_entry_bytes: int = 1 * MIB
    sketch_width: int = 1024
    sketch_sample: int = 4096

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown data-cache policy {self.policy!r}; "
                f"choose from {sorted(POLICIES)}"
            )


@dataclass(frozen=True)
class CacheRead:
    """Outcome of one read: which tier served it, at what cost."""

    tier: str  # "hot" | "ssd" | "miss"
    latency_ms: float
    value: Any = None

    @property
    def hit(self) -> bool:
        return self.tier != MISS


@dataclass
class DataCacheStats:
    hits_hot: int = 0
    hits_ssd: int = 0
    misses: int = 0
    evictions_hot: int = 0
    evictions_ssd: int = 0
    admission_rejects_hot: int = 0
    admission_rejects_ssd: int = 0

    @property
    def hits(self) -> int:
        return self.hits_hot + self.hits_ssd

    @property
    def reads(self) -> int:
        return self.hits + self.misses

    def hit_ratio(self) -> float:
        return self.hits / self.reads if self.reads else 0.0


class TieredDataCache:
    """Per-worker tiered cache: hot memory over simulated SSD.

    Reads promote SSD hits into the hot tier; hot-tier evictions demote
    into SSD (whose own policy may evict or, for TinyLFU, refuse them);
    SSD evictions leave the cache.  A crash calls :meth:`clear`, dropping
    both tiers — the worker restarts cold.
    """

    def __init__(
        self,
        config: Optional[DataCacheConfig] = None,
        worker: str = "worker",
        metrics=None,
    ) -> None:
        self.config = config or DataCacheConfig()
        self.worker = worker
        self.metrics = metrics
        self.stats = DataCacheStats()
        make_policy = POLICIES[self.config.policy]
        if self.config.policy == "tinylfu":
            # One sketch observes all traffic; both tiers consult it.
            sketch = FrequencySketch(
                width=self.config.sketch_width,
                sample_size=self.config.sketch_sample,
            )
            self.hot = CacheTier(HOT_TIER, self.config.hot_bytes, TinyLfuPolicy(sketch))
            self.ssd = CacheTier(SSD_TIER, self.config.ssd_bytes, TinyLfuPolicy(sketch))
            self._sketch: Optional[FrequencySketch] = sketch
        else:
            self.hot = CacheTier(HOT_TIER, self.config.hot_bytes, make_policy())
            self.ssd = CacheTier(SSD_TIER, self.config.ssd_bytes, make_policy())
            self._sketch = None
        self.shadow = ShadowCache(
            (self.config.hot_bytes + self.config.ssd_bytes)
            * max(1, self.config.shadow_factor)
        )

    # -- observability --------------------------------------------------------

    def _count(self, event: str, tier: Optional[str] = None) -> None:
        if self.metrics is None:
            return
        labels = {"worker": self.worker, "policy": self.config.policy}
        if tier is not None:
            labels["tier"] = tier
        self.metrics.counter(f"data_cache_{event}_total", **labels).inc()

    def _instant(self, key: str, tier: str, size_bytes: int) -> None:
        tracer = current_tracer()
        if tracer is not None:
            tracer.instant(
                "data_cache",
                worker=self.worker,
                tier=tier,
                key=key,
                bytes=size_bytes,
            )

    def _set_gauges(self) -> None:
        if self.metrics is None:
            return
        for tier in (self.hot, self.ssd):
            self.metrics.gauge(
                "data_cache_used_bytes",
                worker=self.worker,
                policy=self.config.policy,
                tier=tier.name,
            ).set(tier.used_bytes)

    # -- reads ----------------------------------------------------------------

    def read(
        self,
        key: str,
        size_bytes: Optional[int] = None,
        loader: Optional[Callable[[], Any]] = None,
    ) -> CacheRead:
        """Read ``key``: returns the serving tier and its latency.

        ``size_bytes`` defaults to the config's estimate; ``loader`` (for
        real byte payloads, e.g. parquet segments) runs only on a miss
        and its result is cached alongside the size.
        """
        size = size_bytes if size_bytes is not None else self.config.default_entry_bytes
        self.shadow.access(key, size)
        if self._sketch is not None:
            self._sketch.increment(key)
        entry = self.hot.get(key)
        if entry is not None:
            self.stats.hits_hot += 1
            self._count("hits", HOT_TIER)
            self._instant(key, HOT_TIER, entry[0])
            return CacheRead(HOT_TIER, self.config.hot_read_ms, entry[1])
        entry = self.ssd.get(key)
        if entry is not None:
            self.stats.hits_ssd += 1
            self._count("hits", SSD_TIER)
            self._instant(key, SSD_TIER, entry[0])
            # Promotion: the key is hot again; demotes a hot victim.
            self.ssd.remove(key)
            self._admit(key, entry[0], entry[1])
            return CacheRead(SSD_TIER, self.config.ssd_read_ms, entry[1])
        self.stats.misses += 1
        self._count("misses")
        self._instant(key, MISS, size)
        value = loader() if loader is not None else None
        self._admit(key, size, value)
        return CacheRead(MISS, self.config.miss_read_ms, value)

    def _admit(self, key: str, size_bytes: int, value: Any) -> None:
        admitted, demoted, rejected = self.hot.put(key, size_bytes, value)
        if rejected:
            self.stats.admission_rejects_hot += 1
            self._count("admission_rejects", HOT_TIER)
        for demoted_key, demoted_size, demoted_value in demoted:
            self.stats.evictions_hot += 1
            self._count("evictions", HOT_TIER)
            self._demote(demoted_key, demoted_size, demoted_value, resident=True)
        if not admitted:
            # Too big for memory (or refused by the filter): try SSD.
            self._demote(key, size_bytes, value, resident=False)
        self._set_gauges()

    def _demote(self, key: str, size_bytes: int, value: Any, resident: bool) -> None:
        """Push an entry into SSD; ``resident`` means it held cached data
        (a hot eviction) whose loss on SSD refusal counts as an eviction."""
        ssd_admitted, dropped, ssd_rejected = self.ssd.put(key, size_bytes, value)
        if ssd_rejected:
            self.stats.admission_rejects_ssd += 1
            self._count("admission_rejects", SSD_TIER)
        for _dropped_key, _size, _value in dropped:
            self.stats.evictions_ssd += 1
            self._count("evictions", SSD_TIER)
        if not ssd_admitted and resident:
            self.stats.evictions_ssd += 1
            self._count("evictions", SSD_TIER)

    # -- inspection & lifecycle -----------------------------------------------

    def tier_of(self, key: str) -> Optional[str]:
        if key in self.hot:
            return HOT_TIER
        if key in self.ssd:
            return SSD_TIER
        return None

    def __contains__(self, key: str) -> bool:
        return self.tier_of(key) is not None

    def __len__(self) -> int:
        return len(self.hot) + len(self.ssd)

    def keys(self) -> set[str]:
        return set(self.hot.keys()) | set(self.ssd.keys())

    def hit_ratio(self) -> float:
        return self.stats.hit_ratio()

    def clear(self) -> None:
        """Drop both tiers (worker crash): the node restarts cold.

        The shadow cache and TinyLFU sketch persist — they model
        knowledge about the *workload*, not bytes on the dead disk.
        """
        self.hot.clear()
        self.ssd.clear()
        self._set_gauges()
