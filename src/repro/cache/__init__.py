"""Caching inside Presto (section VII).

- :mod:`repro.cache.file_list_cache` — coordinator-side cache of NameNode
  ``listFiles`` results, applied only to sealed directories.
- :mod:`repro.cache.footer_cache` — worker-side cache of file handles
  (``getFileInfo``) and file footers.
- :mod:`repro.cache.metastore_cache` — versioned metastore cache.
- :mod:`repro.cache.fragment_result_cache` — caches the results of plan
  fragments keyed by their canonical description.
- :mod:`repro.cache.data_cache` — worker-local tiered data cache (hot
  memory + simulated SSD) for parquet row-group bytes, with pluggable
  admission/eviction policies and a shadow cache for sizing.
- :mod:`repro.cache.lru` — the shared LRU core.
"""

from repro.cache.lru import LruCache
from repro.cache.file_list_cache import FileListCache
from repro.cache.footer_cache import FileHandleAndFooterCache
from repro.cache.metastore_cache import VersionedMetastoreCache
from repro.cache.fragment_result_cache import FragmentResultCache
from repro.cache.data_cache import (
    CacheRead,
    DataCacheConfig,
    ShadowCache,
    TieredDataCache,
)

__all__ = [
    "LruCache",
    "FileListCache",
    "FileHandleAndFooterCache",
    "VersionedMetastoreCache",
    "FragmentResultCache",
    "CacheRead",
    "DataCacheConfig",
    "ShadowCache",
    "TieredDataCache",
]
