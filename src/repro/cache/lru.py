"""A small LRU cache with hit/miss accounting.

Every cache class in :mod:`repro.cache` routes its accounting through the
shared :class:`CacheStats` counters here, so the observability layer
reports one consistent hit-rate definition: every *lookup* counts exactly
one hit or one miss (a miss that triggers a fill is still one miss —
``put`` never counts), and ``in``-containment probes count nothing.

A cache may additionally be bound to a
:class:`repro.obs.metrics.MetricsRegistry` (``name`` labels the series);
increments are then mirrored into ``cache_hits_total{cache=...}``,
``cache_misses_total``, ``cache_evictions_total``,
``cache_invalidations_total`` and the ``cache_entries`` gauge.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


# Distinguishes "not cached" from "cached None" — a legitimate value (a
# file with no footer, a metastore miss) that must stay countable.
_MISSING = object()


class LruCache:
    """Least-recently-used cache of bounded entry count.

    ``None`` is an ordinary cacheable value: ``get_or_load`` and
    ``invalidate`` test presence, never truthiness.  Only the plain
    ``get`` is ambiguous for ``None`` values — pass a ``default``
    sentinel of your own when that matters.
    """

    def __init__(
        self,
        max_entries: int = 10_000,
        name: str = "lru",
        metrics=None,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.name = name
        self.stats = CacheStats()
        self._metrics = None
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        if metrics is not None:
            self.bind_metrics(metrics)

    # -- metrics --------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Mirror future accounting into ``metrics`` (idempotent)."""
        if self._metrics is metrics:
            return
        self._metrics = metrics

    def _count(self, event: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"cache_{event}_total", cache=self.name).inc()
            self._metrics.gauge("cache_entries", cache=self.name).set(
                len(self._entries)
            )

    def _hit(self) -> None:
        self.stats.hits += 1
        self._count("hits")

    def _miss(self) -> None:
        self.stats.misses += 1
        self._count("misses")

    # -- lookups (each counts exactly one hit or one miss) --------------------

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        """Return ``(hit, value)``; value is None on a miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._hit()
            return True, self._entries[key]
        self._miss()
        return False, None

    def get(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        hit, value = self.lookup(key)
        return value if hit else default

    def get_or_load(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        value, _ = self.get_or_load_with_status(key, loader)
        return value

    def get_or_load_with_status(
        self, key: Hashable, loader: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(value, hit)``; the fill after a miss counts nothing."""
        hit, value = self.lookup(key)
        if hit:
            return value, True
        value = loader()
        self.put(key, value)
        return value, False

    # -- mutation (never counts hits or misses) -------------------------------

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("evictions")
        elif self._metrics is not None:
            self._metrics.gauge("cache_entries", cache=self.name).set(
                len(self._entries)
            )

    def invalidate(self, key: Hashable) -> None:
        if self._entries.pop(key, _MISSING) is not _MISSING:
            self.stats.invalidations += 1
            self._count("invalidations")

    def invalidate_all(self) -> None:
        count = len(self._entries)
        self.stats.invalidations += count
        self._entries.clear()
        if self._metrics is not None and count:
            self._metrics.counter(
                "cache_invalidations_total", cache=self.name
            ).inc(count)
            self._metrics.gauge("cache_entries", cache=self.name).set(0)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
