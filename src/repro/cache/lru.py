"""A small LRU cache with hit/miss accounting."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


# Distinguishes "not cached" from "cached None" — a legitimate value (a
# file with no footer, a metastore miss) that must stay countable.
_MISSING = object()


class LruCache:
    """Least-recently-used cache of bounded entry count.

    ``None`` is an ordinary cacheable value: ``get_or_load`` and
    ``invalidate`` test presence, never truthiness.  Only the plain
    ``get`` is ambiguous for ``None`` values — pass a ``default``
    sentinel of your own when that matters.
    """

    def __init__(self, max_entries: int = 10_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        return default

    def get_or_load(self, key: Hashable, loader: Callable[[], Any]) -> Any:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return self._entries[key]
        self.stats.misses += 1
        value = loader()
        self.put(key, value)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        if len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def invalidate(self, key: Hashable) -> None:
        if self._entries.pop(key, _MISSING) is not _MISSING:
            self.stats.invalidations += 1

    def invalidate_all(self) -> None:
        self.stats.invalidations += len(self._entries)
        self._entries.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)
