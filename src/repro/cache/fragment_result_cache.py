"""Fragment result cache (section VII, RaptorX techniques).

Caches the materialized output of deterministic leaf plan fragments,
keyed by the fragment's canonical plan description plus the identity of
the split it processed.  A repeated dashboard query whose underlying
partition has not changed is served without rescanning."""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.cache.lru import LruCache
from repro.core.page import Page


class FragmentResultCache:
    """Caches per-(fragment, split) page lists."""

    def __init__(self, max_entries: int = 1_000, metrics=None) -> None:
        self._cache = LruCache(max_entries, name="fragment_result", metrics=metrics)

    @property
    def stats(self):
        return self._cache.stats

    def bind_metrics(self, metrics) -> None:
        self._cache.bind_metrics(metrics)

    def fragment_key(self, plan_description: str, split_id: str, data_version: Hashable) -> tuple:
        """Cache key: canonical fragment text + split + data version.

        ``data_version`` should change whenever the underlying data does
        (e.g. partition modification time) so stale results are never
        served.
        """
        return (plan_description, split_id, data_version)

    def get_or_compute(
        self, key: tuple, compute: Callable[[], Sequence[Page]]
    ) -> Sequence[Page]:
        return self._cache.get_or_load(key, lambda: list(compute()))

    def get_or_compute_with_status(
        self, key: tuple, compute: Callable[[], Sequence[Page]]
    ) -> tuple[Sequence[Page], bool]:
        """Like :meth:`get_or_compute` but also reports ``(pages, hit)``."""
        return self._cache.get_or_load_with_status(key, lambda: list(compute()))

    def invalidate_all(self) -> None:
        self._cache.invalidate_all()
