"""Coordinator-side file list cache (section VII.A).

"Presto coordinator caches file lists in memory to avoid long listFile
calls to remote storage ... This can only be applied to sealed directories.
For open partitions, Presto will skip caching those directories to
guarantee data freshness."
"""

from __future__ import annotations

from typing import Callable

from repro.cache.lru import LruCache
from repro.storage.filesystem import FileStatus, FileSystem


class FileListCache:
    """Caches ``listFiles`` results for sealed directories only."""

    def __init__(
        self, filesystem: FileSystem, max_entries: int = 100_000, metrics=None
    ) -> None:
        self._filesystem = filesystem
        self._cache = LruCache(max_entries, name="file_list", metrics=metrics)
        self.open_partition_bypasses = 0

    @property
    def stats(self):
        return self._cache.stats

    def bind_metrics(self, metrics) -> None:
        self._cache.bind_metrics(metrics)

    def list_files(self, directory: str, sealed: bool) -> list[FileStatus]:
        """List a directory; served from cache only when ``sealed``.

        Open partitions always hit remote storage: the ingestion engine
        "will keep writing new files to the open partitions so that Presto
        can read near-real time data."
        """
        if not sealed:
            self.open_partition_bypasses += 1
            return self._filesystem.list_files(directory)
        return self._cache.get_or_load(
            directory, lambda: self._filesystem.list_files(directory)
        )

    def invalidate(self, directory: str) -> None:
        """Drop a directory's entry (e.g. after a partition rewrite)."""
        self._cache.invalidate(directory)
