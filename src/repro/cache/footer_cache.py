"""Worker-side file handle and footer cache (section VII.B).

"Presto worker caches the file descriptors in memory to avoid long
getFileInfo calls to remote storage.  Also, a worker caches common columnar
files and stripe footers in memory ...  The reason to cache such
information in memory is due to the high hit rate of footers as they are
the indexes to the data itself."
"""

from __future__ import annotations

from typing import Optional

from repro.cache.lru import LruCache
from repro.formats.parquet.file import ParquetFile, read_footer
from repro.formats.parquet.metadata import FileMetadata
from repro.storage.filesystem import FileStatus, FileSystem


class FileHandleAndFooterCache:
    """Caches getFileInfo results and parsed Parquet footers by path.

    Entries are keyed by (path, modification time) so a rewritten file is
    re-read rather than served stale.
    """

    def __init__(
        self, filesystem: FileSystem, max_entries: int = 100_000, metrics=None
    ) -> None:
        self._filesystem = filesystem
        self._handles = LruCache(max_entries, name="file_handle", metrics=metrics)
        self._footers = LruCache(max_entries, name="footer", metrics=metrics)

    @property
    def handle_stats(self):
        return self._handles.stats

    @property
    def footer_stats(self):
        return self._footers.stats

    def bind_metrics(self, metrics) -> None:
        self._handles.bind_metrics(metrics)
        self._footers.bind_metrics(metrics)

    def get_file_info(self, path: str) -> FileStatus:
        """getFileInfo through the handle cache."""
        return self._handles.get_or_load(
            path, lambda: self._filesystem.get_file_info(path)
        )

    def get_footer(self, path: str, status: Optional[FileStatus] = None) -> FileMetadata:
        """Parsed footer through the footer cache."""
        if status is None:
            status = self.get_file_info(path)
        key = (path, status.modification_time_ms)

        def load() -> FileMetadata:
            with self._filesystem.open(path) as stream:
                return read_footer(stream)

        return self._footers.get_or_load(key, load)

    def open_parquet(self, path: str) -> ParquetFile:
        """Open a Parquet file, supplying the cached footer when available."""
        status = self.get_file_info(path)
        metadata = self.get_footer(path, status)
        return ParquetFile(self._filesystem.open(path), metadata=metadata)

    def invalidate(self, path: str) -> None:
        self._handles.invalidate(path)
