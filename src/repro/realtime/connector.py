"""The hybrid connector: one table spanning the lake and the live tail.

A ``SELECT`` against a hybrid table is answered as a union of two kinds
of splits, pinned to one consistent watermark at split-generation time:

- one **lake split** per sealed parquet data file of the pinned snapshot
  (with predicate pushdown into the parquet reader, and — for time
  travel below the sealed watermark — an offset *cut* that masks rows
  the read watermark does not cover);
- one **tail split** per partition with unsealed visible rows.  Tail
  splits carry their row tuples *in the split* (``ConnectorSplit.info``):
  between split generation and split execution the concurrent scheduler
  may interleave ingestion polls and compaction cycles, and pinning the
  rows makes the query's result a pure function of its splits — no
  interleaving can lose or duplicate a row, and per-seed replay is
  byte-identical.

Time travel uses the table-name suffix ``events$watermark=5-7-3`` to pin
a historical read watermark; plain names read at the committed watermark
of split-generation time.  Materialized views registered on the
connector are exposed as tables too (their finalized rows pinned the
same way), which is what the planner's MV-substitution rule rewrites
matching aggregations into.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.common.errors import ConnectorError
from repro.connectors.spi import (
    ColumnMetadata,
    Connector,
    ConnectorMetadata,
    ConnectorRecordSetProvider,
    ConnectorSplit,
    ConnectorSplitManager,
    ConnectorTableHandle,
    FilterPushdownResult,
    TableMetadata,
)
from repro.core.blocks import Block, block_from_values
from repro.core.evaluator import Evaluator
from repro.core.expressions import RowExpression, and_, expression_from_dict
from repro.core.page import Page
from repro.core.types import PrestoType
from repro.formats.parquet.file import ParquetFile
from repro.formats.parquet.reader_new import NewParquetReader
from repro.realtime.hybrid import SEALED_WATERMARK_PROPERTY, HybridTable
from repro.realtime.mv import MaterializedView
from repro.realtime.watermark import Watermark

WATERMARK_SUFFIX = "$watermark="


def parse_table_name(name: str) -> tuple[str, Optional[Watermark]]:
    """``events$watermark=5-7-3`` → ("events", Watermark(5-7-3))."""
    if WATERMARK_SUFFIX in name:
        base, _, encoded = name.partition(WATERMARK_SUFFIX)
        try:
            return base, Watermark.decode(encoded)
        except ValueError as error:
            raise ConnectorError(f"bad watermark in table name {name!r}") from error
    return name, None


def watermark_table_name(base: str, watermark: Watermark) -> str:
    """The time-travel name pinning ``base`` at ``watermark``."""
    return f"{base}{WATERMARK_SUFFIX}{watermark.encode()}"


class HybridTableConnector(Connector):
    """Connector over registered hybrid tables and materialized views."""

    name = "hybrid"

    def __init__(self, schema_name: str = "rt") -> None:
        self.schema_name = schema_name
        self._tables: dict[str, HybridTable] = {}
        self._views: dict[str, MaterializedView] = {}
        self._metadata = _HybridMetadata(self)
        self._split_manager = _HybridSplitManager(self)
        self._provider = _HybridProvider(self)

    def register_table(self, table: HybridTable) -> None:
        self._tables[table.name] = table

    def register_view(self, view: MaterializedView) -> None:
        if view.name in self._tables:
            raise ConnectorError(f"hybrid: name {view.name!r} already a table")
        self._views[view.name] = view

    def table(self, name: str) -> HybridTable:
        table = self._tables.get(name)
        if table is None:
            raise ConnectorError(f"hybrid: no table {name!r}")
        return table

    def view(self, name: str) -> MaterializedView:
        view = self._views.get(name)
        if view is None:
            raise ConnectorError(f"hybrid: no view {name!r}")
        return view

    def metadata(self) -> ConnectorMetadata:
        return self._metadata

    def split_manager(self) -> ConnectorSplitManager:
        return self._split_manager

    def record_set_provider(self) -> ConnectorRecordSetProvider:
        return self._provider

    # -- planner surface ------------------------------------------------------

    def find_materialized_view(
        self,
        table_name: str,
        grouping_columns: Sequence[str],
        aggregates: Sequence[tuple[str, Optional[str]]],
    ) -> Optional[tuple[str, dict]]:
        """A view answering this aggregation at the read watermark.

        ``table_name`` may carry a ``$watermark=`` suffix; plain names
        read at the committed watermark.  A view qualifies only when its
        shape matches *and* its own watermark equals the read watermark —
        a stale or over-fresh view would silently change results, so it
        is simply not offered.  Returns ``(view_name, outputs)`` where
        ``outputs`` maps each ``(function, input-column)`` pair to the
        view column holding that aggregate; group columns keep the base
        table's column names.
        """
        base, pinned = parse_table_name(table_name)
        table = self._tables.get(base)
        if table is None:
            return None
        read = pinned if pinned is not None else table.committed
        for name in sorted(self._views):
            view = self._views[name]
            if (
                view.table is table
                and view.watermark == read
                and view.matches(grouping_columns, aggregates)
            ):
                outputs = {
                    (a.function, a.input): a.output for a in view.aggregates
                }
                return name, outputs
        return None

    def _columns(self, name: str) -> list[tuple[str, PrestoType]]:
        base, _ = parse_table_name(name)
        if base in self._tables:
            return list(self._tables[base].columns)
        if base in self._views:
            return list(self._views[base].columns)
        raise ConnectorError(f"hybrid: no table or view {name!r}")


class _HybridMetadata(ConnectorMetadata):
    def __init__(self, connector: HybridTableConnector) -> None:
        self._connector = connector

    def list_schemas(self) -> list[str]:
        return [self._connector.schema_name]

    def list_tables(self, schema_name: str) -> list[str]:
        return sorted(self._connector._tables) + sorted(self._connector._views)

    def get_table_handle(
        self, schema_name: str, table_name: str
    ) -> Optional[ConnectorTableHandle]:
        base, watermark = parse_table_name(table_name)
        connector = self._connector
        if base in connector._tables:
            table = connector._tables[base]
            if watermark is not None:
                if watermark.partitions != table.partitions:
                    raise ConnectorError(
                        f"hybrid: watermark arity {watermark.partitions} != "
                        f"{table.partitions} partitions of {base!r}"
                    )
                if not table.committed.dominates(watermark):
                    raise ConnectorError(
                        f"hybrid: cannot read {base!r} at future watermark "
                        f"{watermark.encode()} (committed "
                        f"{table.committed.encode()})"
                    )
            return ConnectorTableHandle(schema_name, table_name)
        if base in connector._views:
            view = connector._views[base]
            if watermark is not None and view.watermark != watermark:
                raise ConnectorError(
                    f"hybrid: view {base!r} is at {view.watermark.encode()}, "
                    f"not {watermark.encode()}"
                )
            return ConnectorTableHandle(schema_name, table_name)
        return None

    def get_table_metadata(self, handle: ConnectorTableHandle) -> TableMetadata:
        return TableMetadata(
            handle.schema_name,
            handle.table_name,
            tuple(
                ColumnMetadata(n, t)
                for n, t in self._connector._columns(handle.table_name)
            ),
        )

    def apply_filter(
        self, handle: ConnectorTableHandle, predicate: RowExpression
    ) -> Optional[FilterPushdownResult]:
        columns = {n for n, _ in self._connector._columns(handle.table_name)}
        if not all(v.name in columns for v in predicate.variables()):
            return None
        if handle.constraint is not None:
            predicate = and_(expression_from_dict(handle.constraint), predicate)
        return FilterPushdownResult(handle.with_(constraint=predicate.to_dict()), None)

    def apply_projection(
        self, handle: ConnectorTableHandle, columns: Sequence[str]
    ) -> Optional[ConnectorTableHandle]:
        top_level: list[str] = []
        for path in columns:
            top = path.split(".")[0]
            if top not in top_level:
                top_level.append(top)
        return handle.with_(projected_columns=tuple(top_level))


class _HybridSplitManager(ConnectorSplitManager):
    def __init__(self, connector: HybridTableConnector) -> None:
        self._connector = connector

    def get_splits(self, handle: ConnectorTableHandle) -> list[ConnectorSplit]:
        base, pinned = parse_table_name(handle.table_name)
        connector = self._connector
        if base in connector._views:
            view = connector.view(base)
            rows = tuple(view.rows())
            return [
                ConnectorSplit(
                    split_id=f"hybrid:view:{base}@{view.watermark.encode()}",
                    info=(("kind", "view"), ("view", base), ("rows", rows)),
                )
            ]

        table = connector.table(base)
        # Pin one consistent cut: the snapshot, its sealed watermark, and
        # the read watermark are captured together, here, once.
        snapshot = table.lake.current_snapshot()
        sealed_encoded = snapshot.properties_dict().get(SEALED_WATERMARK_PROPERTY)
        sealed = (
            Watermark.decode(sealed_encoded)
            if sealed_encoded is not None
            else Watermark.zero(table.partitions)
        )
        read = pinned if pinned is not None else table.committed

        splits: list[ConnectorSplit] = []
        # Lake side: rows with offset < min(read, sealed).  When the read
        # watermark dominates the sealed one, every lake row qualifies and
        # no cut mask is needed; time travel below it carries the cut.
        cut = None if read.dominates(sealed) else read.meet(sealed).encode()
        for data_file in snapshot.files:
            splits.append(
                ConnectorSplit(
                    split_id=f"hybrid:lake:{data_file.path}@{snapshot.snapshot_id}",
                    info=(
                        ("kind", "lake"),
                        ("table", base),
                        ("path", data_file.path),
                        ("data_version", snapshot.snapshot_id),
                        ("cut", cut),
                    ),
                )
            )
        # Tail side: committed rows with sealed[p] <= offset < read[p],
        # pinned by value so later compaction/pruning cannot touch them.
        for partition in range(table.partitions):
            if read.offset(partition) <= sealed.offset(partition):
                continue
            rows = tuple(
                table.visible_tail_rows(sealed, read, partition=partition)
            )
            if not rows:
                continue
            splits.append(
                ConnectorSplit(
                    split_id=(
                        f"hybrid:tail:{base}:{partition}"
                        f"@{sealed.offset(partition)}-{read.offset(partition)}"
                    ),
                    info=(
                        ("kind", "tail"),
                        ("table", base),
                        ("partition", partition),
                        ("rows", rows),
                    ),
                )
            )
        return splits or [
            ConnectorSplit(
                split_id=f"hybrid:{base}@{read.encode()}:empty",
                info=(("kind", "empty"), ("table", base)),
            )
        ]


class _HybridProvider(ConnectorRecordSetProvider):
    def __init__(self, connector: HybridTableConnector) -> None:
        self._connector = connector
        self._evaluator = Evaluator()

    def pages(
        self,
        handle: ConnectorTableHandle,
        split: ConnectorSplit,
        columns: Sequence[str],
    ) -> Iterator[Page]:
        info = split.info_dict()
        kind = info["kind"]
        layout = self._connector._columns(handle.table_name)
        column_types = dict(layout)
        output_types = [column_types[c.split(".")[0]] for c in columns]

        if kind == "empty":
            yield Page.from_columns(output_types, [[] for _ in columns])
            return

        if kind == "lake":
            yield from self._lake_pages(handle, info, columns, layout, output_types)
            return

        # Tail and view splits carry their rows pinned in the split.
        rows = list(info["rows"])
        if kind == "tail":
            table = self._connector.table(info["table"])
            # Charge an index-free columnar scan of the pinned micro-batch.
            table.clock.advance(
                len(rows) * len(layout) * table.store.cost.scan_ns_per_value / 1e6
            )
        rows = self._filter(rows, layout, handle.constraint)
        names = [n for n, _ in layout]
        indexes = [names.index(c.split(".")[0]) for c in columns]
        yield Page.from_rows(
            output_types, [tuple(row[i] for i in indexes) for row in rows]
        )

    def _lake_pages(
        self,
        handle: ConnectorTableHandle,
        info: dict,
        columns: Sequence[str],
        layout: list[tuple[str, PrestoType]],
        output_types: list[PrestoType],
    ) -> Iterator[Page]:
        table = self._connector.table(info["table"])
        file = ParquetFile(table.lake.filesystem.open(info["path"]))
        predicate = (
            expression_from_dict(handle.constraint)
            if handle.constraint is not None
            else None
        )
        cut = info.get("cut")
        if cut is None:
            # The whole file is visible: stream straight from the reader
            # with predicate pushdown, exactly like the iceberg connector.
            reader = NewParquetReader(file, list(columns), predicate=predicate)
            produced = False
            for page in reader.read_pages():
                produced = True
                yield page
            if not produced:
                yield Page.from_columns(output_types, [[] for _ in columns])
            return
        # Time travel below the sealed watermark: materialize full rows,
        # mask by the pinned offset cut, then filter and project.
        watermark = Watermark.decode(cut)
        names = [n for n, _ in layout]
        reader = NewParquetReader(file, names)
        rows = [row for page in reader.read_pages() for row in page.loaded().rows()]
        partition_index = names.index("_partition_id")
        offset_index = names.index("_offset")
        rows = [
            row
            for row in rows
            if watermark.covers(row[partition_index], row[offset_index])
        ]
        rows = self._filter(rows, layout, handle.constraint)
        indexes = [names.index(c.split(".")[0]) for c in columns]
        yield Page.from_rows(
            output_types, [tuple(row[i] for i in indexes) for row in rows]
        )

    def _filter(
        self,
        rows: list[tuple],
        layout: list[tuple[str, PrestoType]],
        constraint: Optional[dict],
    ) -> list[tuple]:
        if constraint is None or not rows:
            return rows
        predicate = expression_from_dict(constraint)
        names = [n for n, _ in layout]
        bindings: dict[str, Block] = {}
        for variable in predicate.variables():
            index = names.index(variable.name)
            bindings[variable.name] = block_from_values(
                layout[index][1], [row[index] for row in rows]
            )
        mask = self._evaluator.filter_mask(predicate, bindings, len(rows))
        return [row for row, keep in zip(rows, mask) if keep]
