"""The hybrid streaming table: an in-memory tail over a lakehouse base.

One :class:`HybridTable` stitches the repo's three streaming substrates
into a single queryable object (the paper's batch→real-time arc,
Figs 15–16):

- a **Kafka topic** is the durable source of truth (the replayable log);
- the **realtime store** hosts the in-memory *tail* — one immutable
  store segment per ingested micro-batch, carrying the log coordinates
  (``_partition_id``, ``_offset``, ``_timestamp_ms``) as real columns;
- an **Iceberg table** holds the sealed past as parquet snapshots whose
  summary records the *sealed watermark*.

Exactly-once visibility is structural, not procedural.  Three watermarks
order every record::

      sealed  <=  committed  <=  log end
        |             |
        lake rows     tail rows (visible)       in-flight (invisible)
        offset < S    S <= offset < C           offset >= C

A read at watermark ``W`` (``W <= committed``) sees lake rows with
``offset < min(W, S)`` plus tail rows with ``S <= offset < W`` — the two
sides partition the log at ``S``, so a row is visible in the tail XOR a
sealed snapshot, never both and never neither.  Crash recovery only ever
(a) drops tail rows above ``committed`` (uncommitted appends are
re-fetched from Kafka) and (b) re-prunes tail rows below ``sealed``
(both idempotent), so no crash point can duplicate or drop a row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import ConnectorError
from repro.connectors.kafka import HIDDEN_COLUMNS
from repro.connectors.lakehouse.table_format import IcebergTable
from repro.connectors.realtime.store import RealtimeOlapStore, Segment
from repro.core.types import PrestoType
from repro.realtime.watermark import Watermark

SEALED_WATERMARK_PROPERTY = "sealed-watermark"
MAX_TIMESTAMP_PROPERTY = "max-sealed-timestamp-ms"


@dataclass
class TailSegment:
    """Bookkeeping for one in-memory micro-batch segment.

    The row data itself lives in the realtime store's :class:`Segment`;
    this records which slice of which partition's log the segment holds,
    which is what compaction, pruning, and watermark cuts reason over.
    """

    segment_id: int
    partition: int
    base_offset: int  # inclusive
    end_offset: int  # exclusive
    max_timestamp_ms: int
    segment: Segment

    @property
    def row_count(self) -> int:
        return self.end_offset - self.base_offset


class HybridTable:
    """Tail + lake + watermarks for one streamed topic."""

    def __init__(
        self,
        name: str,
        fields: Sequence[tuple[str, PrestoType]],
        partitions: int,
        lake: IcebergTable,
        store: RealtimeOlapStore,
    ) -> None:
        self.name = name
        self.fields = list(fields)
        self.partitions = partitions
        self.lake = lake
        self.store = store
        self.clock = store.clock
        # Full row layout: user fields then the hidden log coordinates.
        self.columns: list[tuple[str, PrestoType]] = list(fields) + list(HIDDEN_COLUMNS)
        expected = [n for n, _ in self.columns]
        if [n for n, _ in lake.columns] != expected:
            raise ConnectorError(
                f"hybrid table {name!r}: lake columns {[n for n, _ in lake.columns]} "
                f"must equal stream layout {expected}"
            )
        if name not in store.datasource_names():
            store.create_datasource(name, self.columns)
        self.committed: Watermark = Watermark.zero(partitions)
        self.tail_segments: list[TailSegment] = []
        self._segment_ids = 0
        # Newest committed event timestamp, for freshness gauges.
        self.max_committed_timestamp_ms: int = 0

    # -- watermarks -----------------------------------------------------------

    def sealed_watermark(self) -> Watermark:
        """The sealed watermark from the lake's current snapshot summary."""
        encoded = self.lake.current_snapshot().properties_dict().get(
            SEALED_WATERMARK_PROPERTY
        )
        if encoded is None:
            return Watermark.zero(self.partitions)
        return Watermark.decode(encoded)

    def current_watermark(self) -> Watermark:
        """The consistent read watermark for fresh queries: committed."""
        return self.committed

    def sealed_max_timestamp_ms(self) -> int:
        """Newest event timestamp visible through the sealed lake alone."""
        encoded = self.lake.current_snapshot().properties_dict().get(
            MAX_TIMESTAMP_PROPERTY
        )
        return int(encoded) if encoded is not None else 0

    # -- ingestion ------------------------------------------------------------

    def append_tail(self, partition: int, records: Sequence) -> Optional[TailSegment]:
        """Stage one fetched micro-batch as an (uncommitted) tail segment.

        ``records`` are broker records (``offset`` / ``timestamp_ms`` /
        ``values``).  Records below the committed offset are dropped —
        re-delivery after a crash is idempotent — and any previously
        staged-but-uncommitted segment for the partition is replaced, so
        the tail never holds two copies of an offset.
        """
        committed = self.committed.offset(partition)
        fresh = [r for r in records if r.offset >= committed]
        # Self-healing: an earlier append that crashed before its offset
        # commit may have left an uncommitted segment; replace it.
        self._drop_segments(
            lambda s: s.partition == partition and s.base_offset >= committed
        )
        if not fresh:
            return None
        if fresh[0].offset != committed:
            raise ConnectorError(
                f"hybrid table {self.name!r}: partition {partition} append gap "
                f"(expected offset {committed}, got {fresh[0].offset})"
            )
        rows = [
            tuple(r.values) + (partition, r.offset, r.timestamp_ms) for r in fresh
        ]
        segment = self.store.add_segment(self.name, rows)
        tail_segment = TailSegment(
            segment_id=self._segment_ids,
            partition=partition,
            base_offset=fresh[0].offset,
            end_offset=fresh[-1].offset + 1,
            max_timestamp_ms=max(r.timestamp_ms for r in fresh),
            segment=segment,
        )
        self._segment_ids += 1
        self.tail_segments.append(tail_segment)
        return tail_segment

    def commit_offsets(self, partition: int, end_offset: int) -> None:
        """Acknowledge ingestion: rows below ``end_offset`` become visible."""
        self.committed = self.committed.with_offset(partition, end_offset)
        for segment in self.tail_segments:
            if segment.partition == partition and segment.end_offset <= end_offset:
                self.max_committed_timestamp_ms = max(
                    self.max_committed_timestamp_ms, segment.max_timestamp_ms
                )

    # -- recovery -------------------------------------------------------------

    def recover(self) -> None:
        """Restore the invariants after a crash; idempotent.

        Uncommitted tail rows are dropped (the broker still has them — the
        next poll re-fetches from the committed offset) and already-sealed
        tail rows are pruned (a compactor crash between snapshot commit
        and prune leaves them behind; visibility already excluded them).
        """
        committed = self.committed
        self._drop_segments(
            lambda s: s.base_offset >= committed.offset(s.partition)
        )
        self.prune_sealed()

    def lose_tail(self) -> None:
        """Model losing the whole in-memory store (node loss).

        Everything not sealed into the lake must be re-ingested: committed
        offsets rewind to the sealed watermark and the tail empties.  The
        Kafka log is durable, so replaying from ``sealed`` reconstructs an
        identical tail — which is exactly what the determinism tests pin.
        """
        self._drop_segments(lambda s: True)
        self.committed = self.sealed_watermark()

    def prune_sealed(self) -> int:
        """Drop tail segments wholly below the sealed watermark."""
        sealed = self.sealed_watermark()
        before = len(self.tail_segments)
        self._drop_segments(
            lambda s: s.end_offset <= sealed.offset(s.partition)
        )
        return before - len(self.tail_segments)

    def _drop_segments(self, doomed) -> None:
        for tail_segment in [s for s in self.tail_segments if doomed(s)]:
            self.store.remove_segment(self.name, tail_segment.segment)
            self.tail_segments.remove(tail_segment)

    # -- reads ----------------------------------------------------------------

    def visible_tail_rows(
        self, sealed: Watermark, read: Watermark, partition: Optional[int] = None
    ) -> list[tuple]:
        """Committed tail rows with ``sealed[p] <= offset < read[p]``.

        Deterministic order: partition-major, offset ascending.  ``read``
        must not exceed ``committed`` (callers pin read watermarks from
        it), and rows the lake already sealed are excluded by construction
        — the tail side of the exactly-once partition.
        """
        read = read.meet(self.committed)
        rows: list[tuple] = []
        offset_index = len(self.fields) + 1  # _offset position in full rows
        for tail_segment in sorted(
            self.tail_segments, key=lambda s: (s.partition, s.base_offset)
        ):
            p = tail_segment.partition
            if partition is not None and p != partition:
                continue
            low = max(sealed.offset(p), tail_segment.base_offset)
            high = min(read.offset(p), tail_segment.end_offset)
            if low >= high:
                continue
            for row in _segment_rows(tail_segment.segment):
                if low <= row[offset_index] < high:
                    rows.append(row)
        return rows

    def lake_rows_between(self, low: Watermark, high: Watermark) -> list[tuple]:
        """Lake rows with ``low[p] <= offset < high[p]`` (full-width tuples)."""
        partition_index = len(self.fields)
        offset_index = partition_index + 1
        rows: list[tuple] = []
        for data_file in self.lake.current_snapshot().files:
            for row in self.lake.read_file_rows(data_file):
                p, offset = row[partition_index], row[offset_index]
                if low.offset(p) <= offset < high.offset(p):
                    rows.append(row)
        rows.sort(key=lambda r: (r[partition_index], r[offset_index]))
        return rows

    def read_rows_between(self, low: Watermark, high: Watermark) -> list[tuple]:
        """All visible rows in ``[low, high)``, wherever they live.

        Used by incremental materialized-view refresh: the range below the
        sealed watermark is served by the lake, the rest by the tail, and
        the split point guarantees no row is returned twice even while
        compaction is racing ahead.
        """
        sealed = self.sealed_watermark()
        lake_part = self.lake_rows_between(low, high.meet(sealed))
        tail_part = self.visible_tail_rows(low.join(sealed), high)
        return lake_part + tail_part

    # -- introspection --------------------------------------------------------

    def tail_row_count(self) -> int:
        return sum(s.row_count for s in self.tail_segments)

    def tail_layout(self) -> list[tuple]:
        """Deterministic tail descriptor for byte-identical replay tests."""
        return [
            (s.segment_id, s.partition, s.base_offset, s.end_offset, s.max_timestamp_ms)
            for s in sorted(self.tail_segments, key=lambda s: s.segment_id)
        ]

    def column_types(self) -> dict[str, PrestoType]:
        return dict(self.columns)

    def column_names(self) -> list[str]:
        return [n for n, _ in self.columns]


def _segment_rows(segment: Segment) -> list[tuple]:
    """Rebuild row tuples from a columnar store segment.

    Segment column dicts preserve datasource column order, which is the
    hybrid table's full row layout (user fields then log coordinates).
    """
    columns = list(segment.columns.values())
    return [tuple(c[i] for c in columns) for i in range(segment.num_rows)]
