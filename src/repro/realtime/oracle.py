"""The differential oracle for the streaming lakehouse.

Two independent verification surfaces, both phrased against the durable
Kafka log (the one component no crash schedule can corrupt):

- :func:`oracle_engine` replays the *full* log below a watermark into a
  plain in-memory table and answers SQL over it through
  ``PrestoEngine.execute_direct`` — the repo's standing oracle path.
  A hybrid query at watermark ``W`` must return exactly the rows the
  batch oracle returns over the replayed log at ``W``, for scans, time
  travel, and substituted materialized views alike.
- :func:`visible_log_keys` walks the hybrid connector's own split
  manager and record-set provider (no engine involved) and returns the
  multiset of ``(_partition_id, _offset)`` coordinates a read at ``W``
  makes visible.  The exactly-once property suite compares it against
  the set the log says must be visible: equal as *multisets*, so a
  duplicated row fails as loudly as a dropped one.

Both surfaces deliberately use :meth:`KafkaBroker.log_records`, which is
free of simulated-clock charge — verification must not perturb the run
under test.
"""

from __future__ import annotations

from collections import Counter

from repro.connectors.kafka import HIDDEN_COLUMNS, KafkaBroker
from repro.connectors.memory import MemoryConnector
from repro.connectors.spi import Catalog, ConnectorTableHandle
from repro.execution.engine import PrestoEngine
from repro.planner.analyzer import Session
from repro.realtime.connector import HybridTableConnector, parse_table_name
from repro.realtime.watermark import Watermark

ORACLE_SCHEMA = "oracle"


def replayed_log_rows(
    broker: KafkaBroker, topic: str, watermark: Watermark
) -> list[tuple]:
    """Full-width rows of every log record below ``watermark``.

    Row layout matches the hybrid table: user fields, then
    ``_partition_id`` / ``_offset`` / ``_timestamp_ms``.  Deterministic
    partition-major order.
    """
    rows: list[tuple] = []
    for partition in range(broker.partition_count(topic)):
        for record in broker.log_records(topic, partition):
            if watermark.covers(partition, record.offset):
                rows.append(
                    tuple(record.values)
                    + (partition, record.offset, record.timestamp_ms)
                )
    return rows


def oracle_engine(
    broker: KafkaBroker, topic: str, watermark: Watermark
) -> PrestoEngine:
    """A batch engine over the replayed log at ``watermark``.

    The returned engine has one memory table ``memory.oracle.<topic>``
    with the hybrid table's exact column layout; compare its
    ``execute_direct`` output against the hybrid engine's.  It owns a
    private clock so oracle work never advances the simulation.
    """
    memory = MemoryConnector()
    memory.create_table(
        ORACLE_SCHEMA,
        topic,
        broker.fields(topic) + HIDDEN_COLUMNS,
        replayed_log_rows(broker, topic, watermark),
    )
    catalog = Catalog()
    catalog.register("memory", memory)
    session = Session(catalog="memory", schema=ORACLE_SCHEMA, user="oracle")
    return PrestoEngine(catalog=catalog, session=session)


def visible_log_keys(
    connector: HybridTableConnector, table_name: str
) -> Counter:
    """Multiset of ``(partition, offset)`` a hybrid read makes visible.

    Drives the connector's real split manager and provider — the same
    code path queries use — so it sees exactly what a query would,
    including pinned tail rows and time-travel cuts.  Returned as a
    Counter: exactly-once means every key maps to 1 and the key set
    equals the log prefix below the read watermark.
    """
    handle = connector.metadata().get_table_handle(
        connector.schema_name, table_name
    )
    if handle is None:
        raise ValueError(f"no hybrid table {table_name!r}")
    keys: Counter = Counter()
    provider = connector.record_set_provider()
    for split in connector.split_manager().get_splits(handle):
        for page in provider.pages(handle, split, ["_partition_id", "_offset"]):
            for partition, offset in page.loaded().rows():
                keys[(partition, offset)] += 1
    return keys


def expected_log_keys(
    broker: KafkaBroker, topic: str, watermark: Watermark
) -> Counter:
    """The multiset the log says must be visible at ``watermark``."""
    return Counter(
        (partition, offset)
        for partition in range(broker.partition_count(topic))
        for offset in range(
            min(watermark.offset(partition), len(broker.log_records(topic, partition)))
        )
    )


def assert_exactly_once(
    connector: HybridTableConnector,
    broker: KafkaBroker,
    topic: str,
    table_name: str | None = None,
) -> Counter:
    """Assert the hybrid read at the committed watermark is exactly-once.

    Returns the visible multiset for further checks.  Raises
    ``AssertionError`` naming the first duplicated or missing key.
    """
    base = table_name or topic
    table = connector.table(base)
    watermark = table.committed
    visible = visible_log_keys(
        connector, base if table_name is None else table_name
    )
    expected = expected_log_keys(broker, topic, watermark)
    duplicated = {k: n for k, n in visible.items() if n > 1}
    assert not duplicated, f"rows visible more than once: {duplicated}"
    missing = expected - visible
    assert not missing, f"rows dropped: {sorted(missing)}"
    extra = visible - expected
    assert not extra, f"rows visible beyond watermark: {sorted(extra)}"
    return visible
