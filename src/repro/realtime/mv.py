"""Incrementally refreshed materialized views over a hybrid table.

A :class:`MaterializedView` is a grouped aggregation (``GROUP BY`` keys
plus ``count``/``sum``/``min``/``max`` aggregates) maintained *as a
watermark fold*: ``refresh(to)`` reads exactly the rows in
``[self.watermark, to)`` through
:meth:`~repro.realtime.hybrid.HybridTable.read_rows_between` — the lake
below the sealed watermark, the tail above — and folds them into
per-group aggregation states.  Because the underlying log is append-only
and the delta ranges never overlap, every event contributes to the view
exactly once, no matter how ingestion, compaction, and refresh
interleave.

The planner substitutes a view for a matching ``AggregationNode`` only
when the view's watermark equals the query's read watermark (see
``planner/rules/mv_substitution.py``), so a substituted plan returns
byte-identical rows to the unsubstituted one — which the differential
tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import SemanticError
from repro.core.functions import default_registry, parse_type
from repro.core.types import PrestoType
from repro.realtime.hybrid import HybridTable
from repro.realtime.watermark import Watermark

SUPPORTED_AGGREGATES = ("count", "sum", "min", "max")


@dataclass(frozen=True)
class ViewAggregate:
    """One aggregate column of a view: function, input column, output name."""

    function: str  # count | sum | min | max
    input: Optional[str]  # None only for count(*)
    output: str


class MaterializedView:
    """One grouped-aggregation view, refreshed by watermark deltas."""

    def __init__(
        self,
        name: str,
        table: HybridTable,
        group_by: Sequence[str],
        aggregates: Sequence[ViewAggregate],
    ) -> None:
        self.name = name
        self.table = table
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)
        self.watermark = Watermark.zero(table.partitions)
        self.refreshes = 0
        self.rows_folded = 0

        table_types = table.column_types()
        for column in self.group_by:
            if column not in table_types:
                raise SemanticError(f"view {name!r}: unknown group column {column!r}")
        registry = default_registry()
        self._implementations = []
        self.columns: list[tuple[str, PrestoType]] = [
            (c, table_types[c]) for c in self.group_by
        ]
        self._input_indexes: list[Optional[int]] = []
        names = table.column_names()
        for aggregate in self.aggregates:
            if aggregate.function not in SUPPORTED_AGGREGATES:
                raise SemanticError(
                    f"view {name!r}: unsupported aggregate {aggregate.function!r}"
                )
            if aggregate.input is None:
                argument_types: list[PrestoType] = []
                self._input_indexes.append(None)
            else:
                if aggregate.input not in table_types:
                    raise SemanticError(
                        f"view {name!r}: unknown aggregate input {aggregate.input!r}"
                    )
                argument_types = [table_types[aggregate.input]]
                self._input_indexes.append(names.index(aggregate.input))
            handle, implementation = registry.resolve_aggregate(
                aggregate.function, argument_types
            )
            self._implementations.append(implementation)
            self.columns.append((aggregate.output, parse_type(handle.return_type)))

        self._group_indexes = [names.index(c) for c in self.group_by]
        self._states: dict[tuple, list] = {}
        self._order: list[tuple] = []

    # -- maintenance ----------------------------------------------------------

    def refresh(self, to: Optional[Watermark] = None) -> int:
        """Fold the delta ``[watermark, to)`` into the view; returns rows read.

        Defaults to refreshing up to the table's committed watermark.  The
        delta ranges of successive refreshes tile the log, so the fold is
        exactly-once by construction.
        """
        target = to if to is not None else self.table.committed
        if not target.dominates(self.watermark):
            raise SemanticError(
                f"view {self.name!r}: refresh target {target!r} is behind "
                f"view watermark {self.watermark!r}"
            )
        if target == self.watermark:
            return 0
        delta = self.table.read_rows_between(self.watermark, target)
        for row in delta:
            key = tuple(row[i] for i in self._group_indexes)
            states = self._states.get(key)
            if states is None:
                states = [impl.create_state() for impl in self._implementations]
                self._states[key] = states
                self._order.append(key)
            for i, implementation in enumerate(self._implementations):
                index = self._input_indexes[i]
                arguments = () if index is None else (row[index],)
                states[i] = implementation.add_input(states[i], arguments)
        self.watermark = target
        self.refreshes += 1
        self.rows_folded += len(delta)
        return len(delta)

    # -- reads ----------------------------------------------------------------

    def rows(self) -> list[tuple]:
        """Finalized view rows in a deterministic (sorted-key) order."""
        finalized = [
            key
            + tuple(
                impl.finalize(state)
                for impl, state in zip(self._implementations, self._states[key])
            )
            for key in self._order
        ]
        width = len(self.group_by)
        finalized.sort(key=lambda row: tuple(_sort_key(v) for v in row[:width]))
        return finalized

    def column_names(self) -> list[str]:
        return [n for n, _ in self.columns]

    def matches(
        self,
        grouping_columns: Sequence[str],
        aggregates: Sequence[tuple[str, Optional[str]]],
    ) -> bool:
        """Whether this view computes exactly the requested aggregation.

        ``aggregates`` are (function, input-column) pairs in output order;
        grouping columns must match as a set (output wiring is by name).
        """
        if sorted(grouping_columns) != sorted(self.group_by):
            return False
        wanted = [(f, c) for f, c in aggregates]
        have = [(a.function, a.input) for a in self.aggregates]
        return all(w in have for w in wanted)


def _sort_key(value) -> tuple[str, str]:
    # NULLs and mixed types still need a total order for determinism.
    return (type(value).__name__, str(value))
