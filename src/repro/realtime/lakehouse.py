"""One-call assembly of the streaming lakehouse.

:class:`StreamingLakehouse` wires the whole vertical slice on one shared
simulated clock: a Kafka topic (durable log) → ingestion pipeline →
hybrid table (realtime-store tail + Iceberg lake on simulated HDFS) →
compactor, plus a metrics registry and a pipeline trace.  ``make_engine``
returns a :class:`PrestoEngine` whose default namespace is the hybrid
catalog, with the raw lake also mounted (catalog ``lake``) so freshness
experiments can query the sealed-only view of the same data.

Typical use::

    lh = StreamingLakehouse(fields=[("city", VARCHAR), ("amount", DOUBLE)])
    lh.produce(("sf", 1.5))
    lh.pipeline.run_for(10_000)
    engine = lh.make_engine()
    engine.execute("SELECT city, sum(amount) FROM events GROUP BY city")
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.connectors.kafka import HIDDEN_COLUMNS, KafkaBroker, KafkaConnector
from repro.connectors.lakehouse.connector import IcebergConnector
from repro.connectors.lakehouse.table_format import IcebergTable
from repro.connectors.realtime.store import RealtimeOlapStore
from repro.connectors.spi import Catalog
from repro.core.types import PrestoType
from repro.execution.engine import PrestoEngine
from repro.execution.faults import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.planner.analyzer import Session
from repro.realtime.connector import HybridTableConnector
from repro.realtime.hybrid import HybridTable
from repro.realtime.mv import MaterializedView, ViewAggregate
from repro.realtime.pipeline import Compactor, IngestionPipeline
from repro.storage.hdfs import HdfsFileSystem, NameNode


class StreamingLakehouse:
    """The composed system: log, tail, lake, pipeline, and connectors."""

    def __init__(
        self,
        fields: Sequence[tuple[str, PrestoType]],
        topic: str = "events",
        partitions: int = 3,
        poll_interval_ms: float = 200.0,
        compaction_interval_ms: float = 5000.0,
        fault_injector: Optional[FaultInjector] = None,
        clock: Optional[SimulatedClock] = None,
        store_nodes: int = 8,
        trace_pipeline: bool = True,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.topic = topic
        self.fields = list(fields)
        self.metrics = MetricsRegistry()
        self.fault_injector = fault_injector

        self.broker = KafkaBroker(clock=self.clock)
        self.broker.create_topic(topic, fields, partitions)
        self.filesystem = HdfsFileSystem(namenode=NameNode(clock=self.clock))
        self.store = RealtimeOlapStore(
            name="tail", nodes=store_nodes, clock=self.clock
        )
        self.lake = IcebergTable(
            self.filesystem,
            f"/lake/{topic}",
            list(fields) + list(HIDDEN_COLUMNS),
        )
        self.table = HybridTable(topic, fields, partitions, self.lake, self.store)
        self.compactor = Compactor(self.table, fault_injector=fault_injector)
        self.pipeline_trace = (
            QueryTrace(clock=self.clock) if trace_pipeline else None
        )
        self.pipeline = IngestionPipeline(
            self.broker,
            topic,
            self.table,
            poll_interval_ms=poll_interval_ms,
            compactor=self.compactor,
            compaction_interval_ms=compaction_interval_ms,
            fault_injector=fault_injector,
            metrics=self.metrics,
            tracer=self.pipeline_trace,
        )
        self.connector = HybridTableConnector()
        self.connector.register_table(self.table)

    # -- producing ------------------------------------------------------------

    def produce(
        self,
        values: Sequence,
        partition: Optional[int] = None,
        timestamp_ms: Optional[int] = None,
    ) -> int:
        return self.broker.produce(
            self.topic, values, partition=partition, timestamp_ms=timestamp_ms
        )

    # -- views -----------------------------------------------------------------

    def create_materialized_view(
        self,
        name: str,
        group_by: Sequence[str],
        aggregates: Sequence[ViewAggregate],
    ) -> MaterializedView:
        view = MaterializedView(name, self.table, group_by, aggregates)
        self.connector.register_view(view)
        return view

    # -- querying --------------------------------------------------------------

    def catalog(self) -> Catalog:
        catalog = Catalog()
        catalog.register("hybrid", self.connector)
        lake_connector = IcebergConnector()
        lake_connector.register_table(self.topic, self.lake)
        catalog.register("lake", lake_connector)
        catalog.register("kafka", KafkaConnector(self.broker))
        return catalog

    def make_engine(self, **engine_kwargs) -> PrestoEngine:
        """An engine defaulted to ``hybrid.rt`` on the shared clock."""
        engine_kwargs.setdefault("clock", self.clock)
        engine_kwargs.setdefault("metrics", self.metrics)
        session = engine_kwargs.pop(
            "session",
            Session(catalog="hybrid", schema=self.connector.schema_name),
        )
        return PrestoEngine(
            catalog=self.catalog(), session=session, **engine_kwargs
        )
