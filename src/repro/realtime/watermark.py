"""Per-partition offset watermarks: the unit of exactly-once visibility.

A :class:`Watermark` is a vector of *exclusive* high offsets, one per
Kafka partition: offset ``o`` of partition ``p`` is **covered** iff
``o < offsets[p]``.  Every visibility decision in the streaming lakehouse
is phrased as set algebra over watermarks:

- the **committed** watermark bounds what the ingestion pipeline has
  durably acknowledged (tail rows at or above it are in-flight and
  invisible);
- the **sealed** watermark — stored atomically in the lakehouse snapshot
  summary — splits the visible log between the lake (below) and the
  in-memory tail (at or above);
- a **read** watermark pins one consistent cut for a query, which is how
  hybrid scans and time travel stay exactly-once under concurrent
  ingestion and compaction.

Watermarks are immutable, totally ordered per partition (and partially
ordered as vectors), and encode to the compact ``"5-7-3"`` form used in
time-travel table names (``events$watermark=5-7-3``) and snapshot
properties.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=False)
class Watermark:
    """An immutable vector of per-partition exclusive high offsets."""

    offsets: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(o < 0 for o in self.offsets):
            raise ValueError(f"watermark offsets must be >= 0, got {self.offsets}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, partitions: int) -> "Watermark":
        return cls((0,) * partitions)

    @classmethod
    def of(cls, *offsets: int) -> "Watermark":
        return cls(tuple(offsets))

    # -- accessors ------------------------------------------------------------

    @property
    def partitions(self) -> int:
        return len(self.offsets)

    def offset(self, partition: int) -> int:
        return self.offsets[partition]

    def total(self) -> int:
        """Total number of covered records across partitions."""
        return sum(self.offsets)

    def covers(self, partition: int, offset: int) -> bool:
        """Whether record ``(partition, offset)`` is below this watermark."""
        return 0 <= offset < self.offsets[partition]

    # -- algebra --------------------------------------------------------------

    def with_offset(self, partition: int, offset: int) -> "Watermark":
        if offset < self.offsets[partition]:
            raise ValueError(
                f"watermark for partition {partition} cannot move backwards "
                f"({self.offsets[partition]} -> {offset})"
            )
        updated = list(self.offsets)
        updated[partition] = offset
        return Watermark(tuple(updated))

    def dominates(self, other: "Watermark") -> bool:
        """Pointwise >=: everything ``other`` covers, this covers too."""
        self._check_arity(other)
        return all(a >= b for a, b in zip(self.offsets, other.offsets))

    def meet(self, other: "Watermark") -> "Watermark":
        """Pointwise minimum (greatest lower bound)."""
        self._check_arity(other)
        return Watermark(tuple(min(a, b) for a, b in zip(self.offsets, other.offsets)))

    def join(self, other: "Watermark") -> "Watermark":
        """Pointwise maximum (least upper bound)."""
        self._check_arity(other)
        return Watermark(tuple(max(a, b) for a, b in zip(self.offsets, other.offsets)))

    def _check_arity(self, other: "Watermark") -> None:
        if len(self.offsets) != len(other.offsets):
            raise ValueError(
                f"watermark arity mismatch: {len(self.offsets)} vs {len(other.offsets)}"
            )

    # -- serialization --------------------------------------------------------

    def encode(self) -> str:
        """Compact text form, e.g. ``"5-7-3"`` (used in table suffixes)."""
        return "-".join(str(o) for o in self.offsets)

    @classmethod
    def decode(cls, text: str) -> "Watermark":
        try:
            return cls(tuple(int(part) for part in text.split("-")))
        except ValueError as error:
            raise ValueError(f"bad watermark encoding {text!r}") from error

    def __repr__(self) -> str:
        return f"Watermark({self.encode()})"
