"""The streaming lakehouse: seconds-fresh hybrid queries (Figs 15–16).

Composes the Kafka connector (durable log), the realtime store (the
in-memory tail), and the Iceberg table format (the sealed past) into one
exactly-once queryable table; see :mod:`repro.realtime.hybrid` for the
watermark protocol and :mod:`repro.realtime.lakehouse` for one-call
assembly.
"""

from repro.realtime.connector import (
    HybridTableConnector,
    parse_table_name,
    watermark_table_name,
)
from repro.realtime.hybrid import HybridTable, TailSegment
from repro.realtime.lakehouse import StreamingLakehouse
from repro.realtime.mv import MaterializedView, ViewAggregate
from repro.realtime.oracle import (
    assert_exactly_once,
    expected_log_keys,
    oracle_engine,
    replayed_log_rows,
    visible_log_keys,
)
from repro.realtime.pipeline import Compactor, IngestionPipeline
from repro.realtime.watermark import Watermark

__all__ = [
    "Compactor",
    "HybridTable",
    "HybridTableConnector",
    "IngestionPipeline",
    "MaterializedView",
    "StreamingLakehouse",
    "TailSegment",
    "ViewAggregate",
    "Watermark",
    "assert_exactly_once",
    "expected_log_keys",
    "oracle_engine",
    "parse_table_name",
    "replayed_log_rows",
    "visible_log_keys",
    "watermark_table_name",
]
