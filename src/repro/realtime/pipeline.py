"""Streaming ingestion and compaction on the simulated clock.

Two background components keep a :class:`~repro.realtime.hybrid.
HybridTable` fed from its Kafka topic:

- the :class:`IngestionPipeline` polls every partition on a fixed
  cadence, stages each fetched micro-batch as a tail segment, then
  commits the consumed offsets (append → commit, per partition);
- the :class:`Compactor` periodically seals everything committed but not
  yet sealed into one lakehouse data file, committing the new sealed
  watermark atomically in the snapshot summary, then prunes the sealed
  tail segments.

Both run as *due-time events* on the shared simulated clock — `step()`
advances the clock to the next due event and executes it — so pipeline
activity interleaves deterministically with concurrently stepping
queries.  Crash points sit immediately before every state transition
(append, offset commit, file write, snapshot commit, prune); an injected
crash costs ``restart_ms`` of simulated downtime and runs
:meth:`HybridTable.recover`, after which the next poll/cycle resumes
from the committed state.  The property suite drives exactly these
points to show no crash schedule can duplicate or drop a row.
"""

from __future__ import annotations

import contextlib
from typing import Optional

from repro.common.errors import InjectedFaultError
from repro.connectors.kafka import KafkaBroker
from repro.execution.faults import FaultInjector
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.realtime.hybrid import (
    MAX_TIMESTAMP_PROPERTY,
    SEALED_WATERMARK_PROPERTY,
    HybridTable,
)


class Compactor:
    """Seals committed tail rows into lakehouse snapshots.

    Each cycle moves the sealed watermark up to the committed watermark:
    the rows in between are written as one parquet data file, then the
    file and the new watermark are committed *in one snapshot*.  A crash
    after the write but before the commit leaves an orphan file no
    snapshot references — invisible, retried whole next cycle — and a
    crash after the commit but before the prune leaves sealed rows in
    the tail that visibility already excludes, cleaned up by recovery.
    """

    def __init__(
        self,
        table: HybridTable,
        fault_injector: Optional[FaultInjector] = None,
        write_ms_per_row: float = 0.002,
        commit_ms: float = 10.0,
    ) -> None:
        self.table = table
        self.fault_injector = fault_injector
        self.write_ms_per_row = write_ms_per_row
        self.commit_ms = commit_ms
        self.cycles = 0  # attempts, crashed or not — the crash-coin step
        self.rows_sealed = 0
        self.snapshots_committed = 0

    def _crash_point(self, point: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.maybe_crash_pipeline(
                f"{self.table.name}:compact", self.cycles, 0, point
            )

    def compact(self) -> int:
        """Run one compaction cycle; returns rows sealed."""
        self.cycles += 1
        table = self.table
        sealed = table.sealed_watermark()
        target = table.committed
        if target == sealed:
            return 0
        rows = table.visible_tail_rows(sealed, target)

        self._crash_point("write")
        data_file = table.lake.write_data_file(rows) if rows else None
        table.clock.advance(len(rows) * self.write_ms_per_row)

        self._crash_point("commit")
        max_ts = table.sealed_max_timestamp_ms()
        if rows:
            timestamp_index = len(table.fields) + 2
            max_ts = max(max_ts, max(row[timestamp_index] for row in rows))
        properties = [
            (SEALED_WATERMARK_PROPERTY, target.encode()),
            (MAX_TIMESTAMP_PROPERTY, str(max_ts)),
        ]
        table.lake.commit_add_files(
            [data_file] if data_file is not None else [], properties=properties
        )
        table.clock.advance(self.commit_ms)
        self.snapshots_committed += 1
        self.rows_sealed += len(rows)

        self._crash_point("prune")
        table.prune_sealed()
        return len(rows)


class IngestionPipeline:
    """Polls Kafka into the tail, drives compaction, survives crashes.

    The pipeline owns both cadences (poll and compaction) as due-times on
    the simulated clock.  ``step()`` runs the earliest due event;
    ``run_until()`` drains events up to a deadline.  Every injected crash
    is caught here: it increments the crash counter, charges
    ``restart_ms`` of downtime, and recovers the table, so callers see an
    always-on pipeline whose visible state is exactly-once regardless of
    the crash schedule.
    """

    def __init__(
        self,
        broker: KafkaBroker,
        topic: str,
        table: HybridTable,
        poll_interval_ms: float = 200.0,
        compactor: Optional[Compactor] = None,
        compaction_interval_ms: float = 5000.0,
        fault_injector: Optional[FaultInjector] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[QueryTrace] = None,
        restart_ms: float = 500.0,
    ) -> None:
        self.broker = broker
        self.topic = topic
        self.table = table
        self.clock = table.clock
        self.poll_interval_ms = poll_interval_ms
        self.compactor = compactor
        self.compaction_interval_ms = compaction_interval_ms
        self.fault_injector = fault_injector
        self.metrics = metrics
        self.tracer = tracer
        self.restart_ms = restart_ms
        self.polls = 0  # poll attempts, crashed or not — the crash-coin step
        self.records_ingested = 0
        self.crashes = 0
        self._next_poll_ms = self.clock.now_ms() + poll_interval_ms
        self._next_compaction_ms = (
            self.clock.now_ms() + compaction_interval_ms
            if compactor is not None
            else None
        )

    # -- the two events -------------------------------------------------------

    def poll(self) -> int:
        """Fetch and commit every partition once; returns records ingested."""
        self.polls += 1
        table = self.table
        ingested = 0
        for partition in range(table.partitions):
            records = self.broker.fetch(
                self.topic, partition, min_offset=table.committed.offset(partition)
            )
            if not records:
                continue
            self._crash_point("ingest", self.polls, partition, "append")
            table.append_tail(partition, records)
            self._crash_point("ingest", self.polls, partition, "commit")
            table.commit_offsets(partition, records[-1].offset + 1)
            ingested += len(records)
        self.records_ingested += ingested
        if self.metrics is not None and ingested:
            self.metrics.counter(
                "streaming_records_ingested_total", table=table.name
            ).inc(ingested)
        return ingested

    def _crash_point(self, component: str, step: int, unit: int, point: str) -> None:
        if self.fault_injector is not None:
            self.fault_injector.maybe_crash_pipeline(
                f"{self.table.name}:{component}", step, unit, point
            )

    # -- the event loop -------------------------------------------------------

    def next_due_ms(self) -> float:
        """Simulated time of the next pipeline event."""
        if self._next_compaction_ms is None:
            return self._next_poll_ms
        return min(self._next_poll_ms, self._next_compaction_ms)

    def step(self) -> str:
        """Advance the clock to the next due event and run it.

        Returns the event that ran: ``"poll"``, ``"compact"``, or
        ``"crash"`` when the event's run was cut short by an injected
        crash (the restart and recovery are part of the same step).
        """
        due = self.next_due_ms()
        if due > self.clock.now_ms():
            self.clock.advance(due - self.clock.now_ms())
        compaction_due = (
            self._next_compaction_ms is not None and self._next_compaction_ms <= due
        )
        if compaction_due:
            self._next_compaction_ms = due + self.compaction_interval_ms
            event = "compact"
        else:
            self._next_poll_ms = due + self.poll_interval_ms
            event = "poll"
        try:
            if event == "compact":
                with self._span("compact.seal") as span:
                    sealed = self.compactor.compact()
                    if span is not None:
                        span.set(rows_sealed=sealed)
                    if self.metrics is not None:
                        self.metrics.counter(
                            "streaming_compactions_total", table=self.table.name
                        ).inc()
                        if sealed:
                            self.metrics.counter(
                                "streaming_rows_sealed_total", table=self.table.name
                            ).inc(sealed)
            else:
                with self._span("ingest.poll") as span:
                    ingested = self.poll()
                    if span is not None:
                        span.set(records=ingested)
        except InjectedFaultError as error:
            self._restart(event, error)
            event = "crash"
        self._update_gauges()
        return event

    def _restart(self, component: str, error: InjectedFaultError) -> None:
        self.crashes += 1
        if self.metrics is not None:
            self.metrics.counter(
                "streaming_pipeline_crashes_total",
                table=self.table.name,
                component=component,
            ).inc()
        with self._span("pipeline.restart", component=component, error=str(error)):
            self.clock.advance(self.restart_ms)
            self.table.recover()

    def run_until(self, deadline_ms: float) -> None:
        """Run every event due at or before ``deadline_ms``, then idle there."""
        while self.next_due_ms() <= deadline_ms:
            self.step()
        if self.clock.now_ms() < deadline_ms:
            self.clock.advance(deadline_ms - self.clock.now_ms())

    def run_for(self, duration_ms: float) -> None:
        self.run_until(self.clock.now_ms() + duration_ms)

    # -- observability --------------------------------------------------------

    def _span(self, name: str, **attributes):
        if self.tracer is not None:
            return self.tracer.span(name, **attributes)
        return contextlib.nullcontext()

    def _update_gauges(self) -> None:
        if self.metrics is None:
            return
        table = self.table
        name = table.name
        end_offsets = self.broker.end_offsets(self.topic)
        lag = sum(end_offsets) - table.committed.total()
        self.metrics.gauge("streaming_tail_rows", table=name).set(
            table.tail_row_count()
        )
        self.metrics.gauge("streaming_consumer_lag_rows", table=name).set(lag)
        self.metrics.gauge("streaming_sealed_rows", table=name).set(
            table.sealed_watermark().total()
        )
        if table.max_committed_timestamp_ms:
            self.metrics.gauge("streaming_freshness_lag_ms", table=name).set(
                self.clock.now_ms() - table.max_committed_timestamp_ms
            )
