"""Stage scheduler: runs a fragmented plan as stages, tasks, and exchanges.

Section III of the paper: "Each running plan fragment is called a stage
... Stage consists of tasks, which are processing one or many splits of
input data."  This module is the execution half of that sentence —
:class:`repro.planner.fragmenter.Fragmenter` produces the fragments, the
:class:`StageScheduler` turns each into a stage:

- **source** fragments expand into one task per connector split (the SPI
  split enumeration that the direct pipeline hides inside the scan
  operator), each task scanning only its split;
- **hash** fragments run one task per hash partition when fed by a
  partitioned REPARTITION exchange (the final side of a split
  aggregation), otherwise a single task;
- **single** fragments (gathers, global sorts, final limits, the output)
  run one coordinator-side task.

Every task executes through the ordinary operator pipeline
(:func:`repro.execution.driver.execute_plan`) over a per-task copy of the
query context that pins scans to the task's splits and resolves
RemoteSource leaves against the upstream exchange buffers.  Task costs
are simulated from real row counts (a fixed per-task overhead plus a per
row cost) and recorded in :class:`repro.execution.context.QueryStats`;
``EXPLAIN ANALYZE`` renders them and
``PrestoClusterSim.submit_engine_query`` replays them as cluster work.

**Fault tolerance.**  Each task runs inside a bounded retry loop.  A task
attempt can fail three ways: the configured
:class:`repro.execution.faults.FaultInjector` dooms the attempt (or one
of its split reads), the operator pipeline raises a real
:class:`~repro.common.errors.PrestoError`, or the attempt's simulated
cost exceeds ``task_timeout_ms``.  Retryable errors (INTERNAL_ERROR /
EXTERNAL categories) are retried up to ``max_task_retries`` times with
exponential backoff charged to simulated time; USER_ERRORs and
INSUFFICIENT_RESOURCES surface immediately with their category intact.
A task's pages are committed to its output exchanges only after the
attempt succeeds, so a retried task never double-publishes rows and the
query's results are identical to a zero-fault run.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from repro.common.errors import ExecutionError, PrestoError, TaskTimeoutError
from repro.core.expressions import (
    VariableReferenceExpression,
    combine_conjuncts,
)
from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution.driver import execute_plan, record_operator_spans
from repro.execution.dynamic_filters import (
    DynamicFilterSet,
    build_dynamic_filter,
)
from repro.execution.exchange import ExchangeBuffer, key_channels_for
from repro.execution.faults import FaultInjector
from repro.planner.fragmenter import (
    Exchange,
    FragmentedPlan,
    PlanFragment,
    RemoteSourceNode,
)
from repro.planner.plan import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
)

# Join types whose probe side drops rows lacking a build-side match; only
# these may have their probe scans dynamically filtered.
_DYNAMIC_FILTER_JOIN_TYPES = ("inner", "right")

# Adaptive partitioning: rows each hash-stage task should own; the
# partition count is ceil(observed rows / target), clamped to
# [1, hash_partitions].
DEFAULT_TARGET_PARTITION_ROWS = 65_536


@dataclass
class TaskRecord:
    """One executed task: the unit the cluster simulation schedules.

    ``attempts`` counts every execution attempt including the successful
    one; ``failed`` marks a task that exhausted its retries (or hit a
    non-retryable error) and killed the query.
    """

    stage: int
    task: int
    splits: int
    rows_in: int
    rows_out: int
    data_key: str
    sim_ms: float
    data_bytes: int = 0
    attempts: int = 1
    failed: bool = False

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "task": self.task,
            "splits": self.splits,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "data_key": self.data_key,
            "sim_ms": self.sim_ms,
            "data_bytes": self.data_bytes,
            "attempts": self.attempts,
            "failed": self.failed,
        }


class StageScheduler:
    """Executes a :class:`FragmentedPlan` stage by stage.

    ``hash_partitions`` fixes the task count of hash-distributed stages.
    The cost model charges ``task_overhead_ms`` per task (task creation,
    the coordinator RPC of section VIII) plus ``row_cost_ms`` per row in
    and out — deterministic, derived only from real row counts, so the
    same query always produces the same simulated schedule.

    ``fault_injector`` (optional) dooms a deterministic fraction of task
    attempts and split reads; ``max_task_retries`` bounds how many times
    a task is re-run after a retryable failure, each retry charging
    ``retry_backoff_ms * 2**(attempt-1)`` of simulated backoff; a task
    whose attempt cost exceeds ``task_timeout_ms`` (when set) fails with
    a retryable :class:`TaskTimeoutError`.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        hash_partitions: int = 4,
        task_overhead_ms: float = 1.0,
        row_cost_ms: float = 0.001,
        fault_injector: Optional[FaultInjector] = None,
        max_task_retries: int = 3,
        retry_backoff_ms: float = 10.0,
        task_timeout_ms: Optional[float] = None,
        dynamic_filtering: bool = True,
        adaptive_partitioning: bool = False,
        target_partition_rows: int = DEFAULT_TARGET_PARTITION_ROWS,
    ) -> None:
        if hash_partitions < 1:
            raise ExecutionError("hash_partitions must be at least 1")
        if max_task_retries < 0:
            raise ExecutionError("max_task_retries must be non-negative")
        self.ctx = ctx
        self.hash_partitions = hash_partitions
        self.task_overhead_ms = task_overhead_ms
        self.row_cost_ms = row_cost_ms
        self.fault_injector = fault_injector
        self.max_task_retries = max_task_retries
        self.retry_backoff_ms = retry_backoff_ms
        self.task_timeout_ms = task_timeout_ms
        # Runtime dynamic filters (adaptive execution): summarize each
        # completed join build side and push the summary into not-yet-
        # started probe-side scans.  Results are identical either way —
        # the filter only removes probe rows the join would drop.
        self.dynamic_filtering = dynamic_filtering
        # Adaptive exchange sizing: once a stage's inputs are fully
        # buffered, shrink the downstream hash-partition count so each
        # task owns ~target_partition_rows rows instead of paying the
        # per-task overhead of hash_partitions near-empty tasks.
        if target_partition_rows < 1:
            raise ExecutionError("target_partition_rows must be at least 1")
        self.adaptive_partitioning = adaptive_partitioning
        self.target_partition_rows = target_partition_rows

    def run(self, fragmented: FragmentedPlan) -> list[Page]:
        """Run every stage in dependency order; returns the root's pages.

        The blocking driver over :meth:`start`: steps the per-query state
        machine until it is exhausted.  One query at a time — concurrent
        serving drives many :class:`QueryScheduler` machines from the
        cluster event loop instead.
        """
        query = self.start(fragmented)
        while not query.done:
            query.step()
        return query.result_pages

    def start(self, fragmented: FragmentedPlan) -> "QueryScheduler":
        """Begin steppable execution; returns the per-query state machine."""
        return QueryScheduler(self, fragmented)

    # -- observability -------------------------------------------------------

    def _count_task(self, name: str, stage: int, amount: float = 1.0) -> None:
        if self.ctx.metrics is not None:
            self.ctx.metrics.counter(
                name, query_id=self.ctx.stats.query_id, stage=stage
            ).inc(amount)

    def _record_exchange(
        self, buffer: ExchangeBuffer, task_index: int, rows: int, pages: list[Page]
    ) -> None:
        """Account one task's committed pages into one output exchange.

        Every row of ``stats.rows_exchanged`` flows through exactly one
        commit, so the exchange spans (and the ``exchange_rows_total``
        series) sum back to it exactly.
        """
        kind = buffer.exchange.kind if buffer.exchange is not None else "GATHER"
        size = sum(page.size_in_bytes() for page in pages)
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "exchange",
                kind=kind,
                source_task=task_index,
                rows=rows,
                pages=len(pages),
                bytes=size,
            )
        if self.ctx.metrics is not None:
            query_id = self.ctx.stats.query_id
            metrics = self.ctx.metrics
            metrics.counter("exchange_rows_total", query_id=query_id, kind=kind).inc(rows)
            metrics.counter("exchange_pages_total", query_id=query_id, kind=kind).inc(
                len(pages)
            )
            metrics.counter("exchange_bytes_total", query_id=query_id, kind=kind).inc(
                size
            )

    # -- task execution ------------------------------------------------------

    def _run_task(
        self,
        fragment: PlanFragment,
        task_index: int,
        task_plan: tuple[Optional[dict], dict, str, int],
    ) -> tuple[TaskRecord, list[Page]]:
        """Run one task to success (or terminal failure) with retries.

        Trace-clock accounting mirrors the cost model exactly: a failed
        attempt advances ``task_overhead_ms``, each retry backoff advances
        its charge, and a successful attempt advances ``work_ms`` — so the
        task span's duration equals the task record's ``sim_ms`` and the
        whole trace telescopes to ``stats.simulated_ms``.
        """
        scan_splits, exchange_inputs, data_key, split_count = task_plan
        stats = self.ctx.stats
        tracer = self.ctx.tracer
        stage = fragment.fragment_id
        attempts = 0
        penalty_ms = 0.0  # failed-attempt overheads + retry backoffs
        task_span = (
            tracer.span(
                "task", stage=stage, task=task_index, data_key=data_key,
                splits=split_count,
            )
            if tracer is not None
            else nullcontext()
        )
        with task_span:
            while True:
                attempts += 1
                attempt_span = (
                    tracer.span("attempt", stage=stage, task=task_index,
                                attempt=attempts)
                    if tracer is not None
                    else nullcontext()
                )
                try:
                    with attempt_span as span:
                        try:
                            rows_in, rows_out, pages = self._run_attempt(
                                fragment, task_index, task_plan, attempts
                            )
                            work_ms = self.task_overhead_ms + self.row_cost_ms * (
                                rows_in + rows_out
                            )
                            if (
                                self.task_timeout_ms is not None
                                and work_ms > self.task_timeout_ms
                            ):
                                raise TaskTimeoutError(
                                    f"task {task_index} of stage {stage} exceeded its "
                                    f"{self.task_timeout_ms}ms budget ({work_ms:.2f}ms)"
                                )
                        except PrestoError as error:
                            if tracer is not None:
                                # A failed attempt costs the task setup overhead.
                                tracer.advance(self.task_overhead_ms)
                                span.set(outcome="failed",
                                         error=type(error).__name__)
                            raise
                        if tracer is not None:
                            tracer.advance(work_ms)
                            span.set(outcome="ok", rows_in=rows_in,
                                     rows_out=rows_out)
                    record = TaskRecord(
                        stage=stage,
                        task=task_index,
                        splits=split_count,
                        rows_in=rows_in,
                        rows_out=rows_out,
                        data_key=data_key,
                        sim_ms=work_ms + penalty_ms,
                        data_bytes=sum(page.size_in_bytes() for page in pages),
                        attempts=attempts,
                    )
                    return record, pages
                except PrestoError as error:
                    # A failed attempt still costs the task setup overhead.
                    penalty_ms += self.task_overhead_ms
                    if not error.retryable or attempts > self.max_task_retries:
                        stats.tasks_failed += 1
                        self._count_task("scheduler_tasks_failed_total", stage)
                        stats.simulated_ms += penalty_ms
                        stats.task_records.append(
                            TaskRecord(
                                stage=stage,
                                task=task_index,
                                splits=split_count,
                                rows_in=0,
                                rows_out=0,
                                data_key=data_key,
                                sim_ms=penalty_ms,
                                attempts=attempts,
                                failed=True,
                            ).as_dict()
                        )
                        stats.tasks_total += 1
                        self._count_task("scheduler_tasks_run_total", stage)
                        raise
                    stats.tasks_retried += 1
                    self._count_task("scheduler_tasks_retried_total", stage)
                    # Exponential backoff, charged to the simulated clock only
                    # (deterministic — no wall-clock sleeping).
                    backoff_ms = self.retry_backoff_ms * (2 ** (attempts - 1))
                    penalty_ms += backoff_ms
                    self._count_task(
                        "scheduler_retry_backoff_ms_total", stage, backoff_ms
                    )
                    if tracer is not None:
                        with tracer.span(
                            "backoff", stage=stage, task=task_index,
                            attempt=attempts, backoff_ms=backoff_ms,
                        ):
                            tracer.advance(backoff_ms)

    def _run_attempt(
        self,
        fragment: PlanFragment,
        task_index: int,
        task_plan: tuple[Optional[dict], dict, str, int],
        attempt: int,
    ) -> tuple[int, int, list[Page]]:
        """One execution attempt: returns (rows_in, rows_out, pages)."""
        scan_splits, exchange_inputs, data_key, _ = task_plan
        stats = self.ctx.stats
        injector = self.fault_injector
        if injector is not None:
            injector.maybe_fail_task(
                stats.query_id, fragment.fragment_id, task_index, attempt
            )
            for splits in (scan_splits or {}).values():
                for split in splits:
                    injector.maybe_fail_split(
                        stats.query_id,
                        fragment.fragment_id,
                        task_index,
                        split.split_id,
                        attempt,
                    )
        tracer = self.ctx.tracer
        task_ctx = dc_replace(
            self.ctx,
            scan_splits=scan_splits,
            exchange_inputs=exchange_inputs,
            operator_rows={} if tracer is not None else None,
        )
        rows_in = sum(
            page.position_count
            for pages in (exchange_inputs or {}).values()
            for page in pages
        )
        scanned_before = stats.rows_scanned
        try:
            pages = [page.loaded() for page in execute_plan(fragment.root, task_ctx)]
        finally:
            # Emit operator spans even when the pipeline fails mid-drain:
            # the rows it did process are in QueryStats, so the spans must
            # account for them too.
            if tracer is not None:
                record_operator_spans(tracer, fragment.root, task_ctx.operator_rows)
        rows_in += stats.rows_scanned - scanned_before
        rows_out = sum(page.position_count for page in pages)
        return rows_in, rows_out, pages

    # -- task planning -------------------------------------------------------

    def _plan_tasks(
        self, fragment: PlanFragment, buffers: dict[Exchange, ExchangeBuffer]
    ) -> list[tuple[Optional[dict], dict, str, int]]:
        """One entry per task: (scan_splits, exchange_inputs, data_key, splits)."""
        partitioned_inputs = [e for e in fragment.inputs if e.partitioned]
        full_inputs = [e for e in fragment.inputs if not e.partitioned]
        for exchange in fragment.inputs:
            if exchange not in buffers:
                raise ExecutionError(
                    f"fragment {fragment.fragment_id} consumes exchange from "
                    f"fragment {exchange.source_fragment}, which has not run"
                )

        def inputs_for(partition: Optional[int]) -> dict:
            exchange_inputs = {
                e: buffers[e].all_pages() for e in full_inputs
            }
            for e in partitioned_inputs:
                exchange_inputs[e] = (
                    buffers[e].pages_for_partition(partition)
                    if partition is not None
                    else buffers[e].all_pages()
                )
            return exchange_inputs

        scans = _find_table_scans(fragment.root)
        if fragment.distribution == "source" and len(scans) == 1:
            scan = scans[0]
            connector = self.ctx.catalog.connector(scan.catalog)
            handle = scan.handle
            filter_set = (self.ctx.dynamic_filters or {}).get(scan.id)
            if filter_set is not None and filter_set.is_empty:
                # An empty build side matches nothing: skip every split.
                skipped = len(connector.split_manager().get_splits(handle))
                self.ctx.stats.dynamic_filter_splits_skipped += skipped
                splits = []
            else:
                if filter_set is not None and filter_set.expression_dict:
                    # Split managers that understand the pushed filter
                    # (hive) prune partitions against it at enumeration.
                    handle = handle.with_(
                        dynamic_filter=filter_set.expression_dict
                    )
                splits = connector.split_manager().get_splits(handle)
            if splits:
                return [
                    (
                        {scan.id: [split]},
                        inputs_for(None),
                        split.split_id,
                        1,
                    )
                    for split in splits
                ]
            # Empty tables still run one task (a global aggregation over
            # no input must produce its single row).
            return [({scan.id: []}, inputs_for(None), f"stage{fragment.fragment_id}.task0", 0)]

        if fragment.distribution == "hash" and partitioned_inputs:
            # Task count follows the input buffers (adaptive partitioning
            # may have shrunk them below hash_partitions).
            partition_count = buffers[partitioned_inputs[0]].partition_count
            return [
                (
                    None,
                    inputs_for(partition),
                    f"stage{fragment.fragment_id}.part{partition}",
                    0,
                )
                for partition in range(partition_count)
            ]

        # Single task: coordinator-side stages, multi-scan fragments (the
        # scans enumerate their own splits), hash stages without a
        # partitioned feed.
        return [
            (
                None,
                inputs_for(None),
                f"stage{fragment.fragment_id}.task0",
                len(scans),
            )
        ]


@dataclass
class TaskStep:
    """What one :meth:`QueryScheduler.step` executed, for the event loop.

    ``sim_ms`` is the task's simulated engine cost — the cluster replays
    it as split work on a worker slot.  ``stage_done``/``query_done``
    mark barrier crossings: the scheduler will not plan the next stage's
    tasks until every in-flight task of this stage has drained.
    """

    stage: int
    task: int
    data_key: str
    sim_ms: float
    splits: int
    stage_done: bool
    query_done: bool
    data_bytes: int = 0


class QueryScheduler:
    """Steppable per-query execution state machine.

    The heart of the run-to-completion → incremental refactor: holds all
    the state :meth:`StageScheduler.run` used to keep in local variables
    (exchange buffers, the current fragment's planned tasks, the open
    stage span) so that execution can be advanced one task at a time from
    a cluster-level event loop, interleaved with other queries on the
    shared simulated clock.

    Each :meth:`step` runs exactly one task — retries, trace charging,
    exchange commits, and stats accounting included — in the same order
    the blocking loop did, so traces and :class:`QueryStats` stay
    byte-identical with single-query execution.  The *ready-task
    frontier* is the remainder of the current stage: fragments are
    topologically ordered and a stage's tasks are planned lazily when the
    previous stage's output buffers are complete.
    """

    def __init__(self, scheduler: StageScheduler, fragmented: FragmentedPlan) -> None:
        self._scheduler = scheduler
        self.fragmented = fragmented
        self.ctx = scheduler.ctx
        self.buffers: dict[Exchange, ExchangeBuffer] = {}
        self._consumer_exchanges = [
            exchange
            for fragment in fragmented.fragments
            for exchange in fragment.inputs
        ]
        self.result_pages: list[Page] = []
        self.done = False
        self.failed = False
        self._fragment_index = 0
        if scheduler.dynamic_filtering and self.ctx.dynamic_filters is None:
            self.ctx.dynamic_filters = {}
        self._tasks: Optional[list] = None
        self._task_index = 0
        self._out_buffers: list[ExchangeBuffer] = []
        self._stage_span = None
        self._stage_rows_in = 0
        self._stage_rows_out = 0
        self._stage_sim_ms = 0.0

    # -- frontier inspection --------------------------------------------------

    def peek_stage(self) -> Optional[int]:
        """Fragment id the next :meth:`step` will run a task of (None if done)."""
        if self.done:
            return None
        return self.fragmented.fragments[self._fragment_index].fragment_id

    def tasks_remaining_in_stage(self) -> Optional[int]:
        """Unexecuted tasks of the current stage, or None before planning."""
        if self.done or self._tasks is None:
            return None
        return len(self._tasks) - self._task_index

    # -- stage lifecycle ------------------------------------------------------

    def _begin_stage(self, fragment: PlanFragment) -> None:
        scheduler = self._scheduler
        outgoing = [
            e
            for e in self._consumer_exchanges
            if e.source_fragment == fragment.fragment_id
        ]
        self._out_buffers = []
        for exchange in outgoing:
            key_channels = (
                key_channels_for(exchange, fragment.root)
                if exchange.partitioned
                else None
            )
            buffer = ExchangeBuffer(
                exchange, scheduler.hash_partitions, key_channels
            )
            self.buffers[exchange] = buffer
            self._out_buffers.append(buffer)

        if scheduler.dynamic_filtering:
            self._collect_dynamic_filters(fragment)
        if scheduler.adaptive_partitioning:
            self._adapt_partition_counts(fragment)
        self._tasks = scheduler._plan_tasks(fragment, self.buffers)
        self._task_index = 0
        self._stage_rows_in = 0
        self._stage_rows_out = 0
        self._stage_sim_ms = 0.0
        tracer = self.ctx.tracer
        if tracer is not None:
            self._stage_span = tracer.open_span(
                "stage",
                stage=fragment.fragment_id,
                distribution=fragment.distribution,
                tasks=len(self._tasks),
            )

    # -- adaptive partitioning ------------------------------------------------

    def _adapt_partition_counts(self, fragment: PlanFragment) -> None:
        """Right-size this hash stage from its buffered input volume.

        Runs after the producer stages completed (their rows are fully
        buffered, not yet partitioned — partitioning is lazy) and before
        this stage's tasks are planned.  Every partitioned input gets the
        *same* count, keeping join sides co-partitioned.
        """
        scheduler = self._scheduler
        if fragment.distribution != "hash":
            return
        partitioned = [
            self.buffers[e]
            for e in fragment.inputs
            if e.partitioned and e in self.buffers
        ]
        if not partitioned:
            return
        rows = max(buffer.rows_added for buffer in partitioned)
        target = scheduler.target_partition_rows
        count = min(
            scheduler.hash_partitions, max(1, -(-rows // target))
        )
        if all(buffer.partition_count == count for buffer in partitioned):
            return
        for buffer in partitioned:
            buffer.set_partition_count(count)
        scheduler._count_task(
            "scheduler_adaptive_partitions_total", fragment.fragment_id
        )
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "adaptive_partitioning",
                stage=fragment.fragment_id,
                rows=rows,
                partitions=count,
            )

    # -- dynamic filters ------------------------------------------------------

    def _collect_dynamic_filters(self, fragment: PlanFragment) -> None:
        """Summarize completed build sides feeding this fragment's joins.

        Runs when the stage begins — the fragmenter schedules every build
        fragment strictly before the fragment holding its join, so the
        build exchange buffers are complete here, before any probe-side
        split has been planned.  Filters are built exactly once per query
        (this method runs once per stage) and task retries re-read the
        same :class:`DynamicFilterSet`, so a retried probe task can never
        observe — or double-apply — a different filter.
        """
        ctx = self.ctx
        assert ctx.dynamic_filters is not None
        for node in fragment.root.walk():
            if (
                not isinstance(node, JoinNode)
                or node.join_type not in _DYNAMIC_FILTER_JOIN_TYPES
                or not node.criteria
                or not isinstance(node.right, RemoteSourceNode)
            ):
                continue
            buffer = self.buffers.get(node.right.exchange)
            if buffer is None:
                continue
            build_names = [v.name for v in node.right.outputs]
            build_pages = buffer.all_pages()
            for left_variable, right_variable in node.criteria:
                if right_variable.name not in build_names:
                    continue
                traced = _trace_to_scan_column(node.left, left_variable.name)
                if traced is None:
                    continue  # probe key is computed, or lives beyond an exchange
                scan, column = traced
                channel = build_names.index(right_variable.name)
                values = (
                    value
                    for page in build_pages
                    for value in page.block(channel).loaded().to_list()
                )
                dynamic_filter = build_dynamic_filter(values)
                filter_set = ctx.dynamic_filters.setdefault(
                    scan.id, DynamicFilterSet()
                )
                filter_set.filters.setdefault(column, []).append(dynamic_filter)
                ctx.stats.dynamic_filters_built += 1
                self._scheduler._count_task(
                    "scheduler_dynamic_filters_built_total", fragment.fragment_id
                )
                if ctx.tracer is not None:
                    ctx.tracer.instant(
                        "dynamic_filter",
                        scan=scan.id,
                        column=column,
                        build_rows=dynamic_filter.build_rows,
                        build_distinct=dynamic_filter.build_distinct,
                        form="values" if dynamic_filter.values is not None else "bloom",
                    )
                self._refresh_filter_expression(scan, filter_set)

    def _refresh_filter_expression(
        self, scan: TableScanNode, filter_set: DynamicFilterSet
    ) -> None:
        """Re-serialize the set's expression form over connector columns."""
        types_by_variable = {v.name: v.type for v in scan.output_variables}
        column_types = {
            column: types_by_variable[variable]
            for variable, column in scan.assignments
            if variable in types_by_variable
        }
        terms = []
        for column, filters in filter_set.filters.items():
            presto_type = column_types.get(column)
            if presto_type is None:
                continue
            for dynamic_filter in filters:
                expression = dynamic_filter.to_expression(
                    column, presto_type, self.ctx.registry
                )
                if expression is not None:
                    terms.append(expression)
        combined = combine_conjuncts(terms)
        filter_set.expression_dict = None if combined is None else combined.to_dict()

    def _end_stage(self, fragment: PlanFragment) -> None:
        stats = self.ctx.stats
        tracer = self.ctx.tracer
        if tracer is not None and self._stage_span is not None:
            tracer.close_span(self._stage_span)
        self._stage_span = None
        stats.stages_total += 1
        stats.simulated_ms += self._stage_sim_ms
        stats.stage_summaries.append(
            {
                "stage": fragment.fragment_id,
                "distribution": fragment.distribution,
                "tasks": len(self._tasks or []),
                "rows_in": self._stage_rows_in,
                "rows_out": self._stage_rows_out,
                "sim_ms": self._stage_sim_ms,
            }
        )
        self._tasks = None
        self._fragment_index += 1

    def _fail(self) -> None:
        """Terminal failure: close the open stage span, freeze the machine."""
        tracer = self.ctx.tracer
        if tracer is not None and self._stage_span is not None:
            tracer.close_span(self._stage_span)
        self._stage_span = None
        self.done = True
        self.failed = True

    def _finish(self) -> None:
        self.ctx.stats.rows_exchanged = sum(
            b.rows_added for b in self.buffers.values()
        )
        self.done = True

    # -- the state machine ----------------------------------------------------

    def step(self) -> TaskStep:
        """Run exactly one task (with retries) and commit its output.

        Raises the task's terminal :class:`PrestoError` on unrecoverable
        failure, leaving the machine ``done`` and ``failed``.
        """
        if self.done:
            raise ExecutionError("query scheduler already finished")
        scheduler = self._scheduler
        stats = self.ctx.stats
        fragments = self.fragmented.fragments
        fragment = fragments[self._fragment_index]
        if self._tasks is None:
            self._begin_stage(fragment)
        assert self._tasks is not None
        task_index = self._task_index
        task_plan = self._tasks[task_index]
        try:
            record, pages = scheduler._run_task(fragment, task_index, task_plan)
        except PrestoError:
            self._fail()
            raise
        # Commit only after success: a retried attempt never
        # double-publishes rows.
        if fragment.fragment_id == self.fragmented.root_fragment.fragment_id:
            self.result_pages.extend(pages)
        else:
            for buffer in self._out_buffers:
                before = buffer.rows_added
                for page in pages:
                    buffer.add(page)
                scheduler._record_exchange(
                    buffer, task_index, buffer.rows_added - before, pages
                )
        stats.task_records.append(record.as_dict())
        stats.tasks_total += 1
        scheduler._count_task("scheduler_tasks_run_total", fragment.fragment_id)
        if self.ctx.metrics is not None:
            self.ctx.metrics.histogram(
                "scheduler_task_sim_ms", query_id=stats.query_id
            ).observe(record.sim_ms)
        self._stage_rows_in += record.rows_in
        self._stage_rows_out += record.rows_out
        self._stage_sim_ms += record.sim_ms

        self._task_index += 1
        stage_done = self._task_index >= len(self._tasks)
        if stage_done:
            self._end_stage(fragment)
        query_done = stage_done and self._fragment_index >= len(fragments)
        if query_done:
            self._finish()
        return TaskStep(
            stage=fragment.fragment_id,
            task=task_index,
            data_key=record.data_key,
            sim_ms=record.sim_ms,
            splits=record.splits,
            stage_done=stage_done,
            query_done=query_done,
            data_bytes=record.data_bytes,
        )


def _trace_to_scan_column(
    node: PlanNode, name: str
) -> Optional[tuple[TableScanNode, str]]:
    """Follow probe variable ``name`` down to the scan column feeding it.

    Only forwarding edges are followed — filters, identity/renaming
    projection assignments, and join sides that carry the variable
    through unchanged.  A computed expression, an aggregation, or an
    exchange boundary ends the trace (returns None): pushing a filter
    below any of those could change which rows reach the join.
    """
    if isinstance(node, TableScanNode):
        column = node.assignments_dict().get(name)
        return None if column is None else (node, column)
    if isinstance(node, FilterNode):
        return _trace_to_scan_column(node.source, name)
    if isinstance(node, ProjectNode):
        for variable, expression in node.assignments:
            if variable.name == name:
                if isinstance(expression, VariableReferenceExpression):
                    return _trace_to_scan_column(node.source, expression.name)
                return None
        return None
    if isinstance(node, JoinNode):
        for side in node.sources():
            if any(v.name == name for v in side.outputs):
                return _trace_to_scan_column(side, name)
        return None
    return None


def _find_table_scans(node: PlanNode) -> list[TableScanNode]:
    found: list[TableScanNode] = []

    def walk(current: PlanNode) -> None:
        if isinstance(current, TableScanNode):
            found.append(current)
            return
        if isinstance(current, RemoteSourceNode):
            return
        for source in current.sources():
            walk(source)

    walk(node)
    return found
