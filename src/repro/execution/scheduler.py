"""Stage scheduler: runs a fragmented plan as stages, tasks, and exchanges.

Section III of the paper: "Each running plan fragment is called a stage
... Stage consists of tasks, which are processing one or many splits of
input data."  This module is the execution half of that sentence —
:class:`repro.planner.fragmenter.Fragmenter` produces the fragments, the
:class:`StageScheduler` turns each into a stage:

- **source** fragments expand into one task per connector split (the SPI
  split enumeration that the direct pipeline hides inside the scan
  operator), each task scanning only its split;
- **hash** fragments run one task per hash partition when fed by a
  partitioned REPARTITION exchange (the final side of a split
  aggregation), otherwise a single task;
- **single** fragments (gathers, global sorts, final limits, the output)
  run one coordinator-side task.

Every task executes through the ordinary operator pipeline
(:func:`repro.execution.driver.execute_plan`) over a per-task copy of the
query context that pins scans to the task's splits and resolves
RemoteSource leaves against the upstream exchange buffers.  Task costs
are simulated from real row counts (a fixed per-task overhead plus a per
row cost) and recorded in :class:`repro.execution.context.QueryStats`;
``EXPLAIN ANALYZE`` renders them and
``PrestoClusterSim.submit_engine_query`` replays them as cluster work.

**Fault tolerance.**  Each task runs inside a bounded retry loop.  A task
attempt can fail three ways: the configured
:class:`repro.execution.faults.FaultInjector` dooms the attempt (or one
of its split reads), the operator pipeline raises a real
:class:`~repro.common.errors.PrestoError`, or the attempt's simulated
cost exceeds ``task_timeout_ms``.  Retryable errors (INTERNAL_ERROR /
EXTERNAL categories) are retried up to ``max_task_retries`` times with
exponential backoff charged to simulated time; USER_ERRORs and
INSUFFICIENT_RESOURCES surface immediately with their category intact.
A task's pages are committed to its output exchanges only after the
attempt succeeds, so a retried task never double-publishes rows and the
query's results are identical to a zero-fault run.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace as dc_replace
from typing import Optional

from repro.common.errors import ExecutionError, PrestoError, TaskTimeoutError
from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution.driver import execute_plan, record_operator_spans
from repro.execution.exchange import ExchangeBuffer, key_channels_for
from repro.execution.faults import FaultInjector
from repro.planner.fragmenter import (
    Exchange,
    FragmentedPlan,
    PlanFragment,
    RemoteSourceNode,
)
from repro.planner.plan import PlanNode, TableScanNode


@dataclass
class TaskRecord:
    """One executed task: the unit the cluster simulation schedules.

    ``attempts`` counts every execution attempt including the successful
    one; ``failed`` marks a task that exhausted its retries (or hit a
    non-retryable error) and killed the query.
    """

    stage: int
    task: int
    splits: int
    rows_in: int
    rows_out: int
    data_key: str
    sim_ms: float
    data_bytes: int = 0
    attempts: int = 1
    failed: bool = False

    def as_dict(self) -> dict:
        return {
            "stage": self.stage,
            "task": self.task,
            "splits": self.splits,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "data_key": self.data_key,
            "sim_ms": self.sim_ms,
            "data_bytes": self.data_bytes,
            "attempts": self.attempts,
            "failed": self.failed,
        }


class StageScheduler:
    """Executes a :class:`FragmentedPlan` stage by stage.

    ``hash_partitions`` fixes the task count of hash-distributed stages.
    The cost model charges ``task_overhead_ms`` per task (task creation,
    the coordinator RPC of section VIII) plus ``row_cost_ms`` per row in
    and out — deterministic, derived only from real row counts, so the
    same query always produces the same simulated schedule.

    ``fault_injector`` (optional) dooms a deterministic fraction of task
    attempts and split reads; ``max_task_retries`` bounds how many times
    a task is re-run after a retryable failure, each retry charging
    ``retry_backoff_ms * 2**(attempt-1)`` of simulated backoff; a task
    whose attempt cost exceeds ``task_timeout_ms`` (when set) fails with
    a retryable :class:`TaskTimeoutError`.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        hash_partitions: int = 4,
        task_overhead_ms: float = 1.0,
        row_cost_ms: float = 0.001,
        fault_injector: Optional[FaultInjector] = None,
        max_task_retries: int = 3,
        retry_backoff_ms: float = 10.0,
        task_timeout_ms: Optional[float] = None,
    ) -> None:
        if hash_partitions < 1:
            raise ExecutionError("hash_partitions must be at least 1")
        if max_task_retries < 0:
            raise ExecutionError("max_task_retries must be non-negative")
        self.ctx = ctx
        self.hash_partitions = hash_partitions
        self.task_overhead_ms = task_overhead_ms
        self.row_cost_ms = row_cost_ms
        self.fault_injector = fault_injector
        self.max_task_retries = max_task_retries
        self.retry_backoff_ms = retry_backoff_ms
        self.task_timeout_ms = task_timeout_ms

    def run(self, fragmented: FragmentedPlan) -> list[Page]:
        """Run every stage in dependency order; returns the root's pages.

        The blocking driver over :meth:`start`: steps the per-query state
        machine until it is exhausted.  One query at a time — concurrent
        serving drives many :class:`QueryScheduler` machines from the
        cluster event loop instead.
        """
        query = self.start(fragmented)
        while not query.done:
            query.step()
        return query.result_pages

    def start(self, fragmented: FragmentedPlan) -> "QueryScheduler":
        """Begin steppable execution; returns the per-query state machine."""
        return QueryScheduler(self, fragmented)

    # -- observability -------------------------------------------------------

    def _count_task(self, name: str, stage: int, amount: float = 1.0) -> None:
        if self.ctx.metrics is not None:
            self.ctx.metrics.counter(
                name, query_id=self.ctx.stats.query_id, stage=stage
            ).inc(amount)

    def _record_exchange(
        self, buffer: ExchangeBuffer, task_index: int, rows: int, pages: list[Page]
    ) -> None:
        """Account one task's committed pages into one output exchange.

        Every row of ``stats.rows_exchanged`` flows through exactly one
        commit, so the exchange spans (and the ``exchange_rows_total``
        series) sum back to it exactly.
        """
        kind = buffer.exchange.kind if buffer.exchange is not None else "GATHER"
        size = sum(page.size_in_bytes() for page in pages)
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(
                "exchange",
                kind=kind,
                source_task=task_index,
                rows=rows,
                pages=len(pages),
                bytes=size,
            )
        if self.ctx.metrics is not None:
            query_id = self.ctx.stats.query_id
            metrics = self.ctx.metrics
            metrics.counter("exchange_rows_total", query_id=query_id, kind=kind).inc(rows)
            metrics.counter("exchange_pages_total", query_id=query_id, kind=kind).inc(
                len(pages)
            )
            metrics.counter("exchange_bytes_total", query_id=query_id, kind=kind).inc(
                size
            )

    # -- task execution ------------------------------------------------------

    def _run_task(
        self,
        fragment: PlanFragment,
        task_index: int,
        task_plan: tuple[Optional[dict], dict, str, int],
    ) -> tuple[TaskRecord, list[Page]]:
        """Run one task to success (or terminal failure) with retries.

        Trace-clock accounting mirrors the cost model exactly: a failed
        attempt advances ``task_overhead_ms``, each retry backoff advances
        its charge, and a successful attempt advances ``work_ms`` — so the
        task span's duration equals the task record's ``sim_ms`` and the
        whole trace telescopes to ``stats.simulated_ms``.
        """
        scan_splits, exchange_inputs, data_key, split_count = task_plan
        stats = self.ctx.stats
        tracer = self.ctx.tracer
        stage = fragment.fragment_id
        attempts = 0
        penalty_ms = 0.0  # failed-attempt overheads + retry backoffs
        task_span = (
            tracer.span(
                "task", stage=stage, task=task_index, data_key=data_key,
                splits=split_count,
            )
            if tracer is not None
            else nullcontext()
        )
        with task_span:
            while True:
                attempts += 1
                attempt_span = (
                    tracer.span("attempt", stage=stage, task=task_index,
                                attempt=attempts)
                    if tracer is not None
                    else nullcontext()
                )
                try:
                    with attempt_span as span:
                        try:
                            rows_in, rows_out, pages = self._run_attempt(
                                fragment, task_index, task_plan, attempts
                            )
                            work_ms = self.task_overhead_ms + self.row_cost_ms * (
                                rows_in + rows_out
                            )
                            if (
                                self.task_timeout_ms is not None
                                and work_ms > self.task_timeout_ms
                            ):
                                raise TaskTimeoutError(
                                    f"task {task_index} of stage {stage} exceeded its "
                                    f"{self.task_timeout_ms}ms budget ({work_ms:.2f}ms)"
                                )
                        except PrestoError as error:
                            if tracer is not None:
                                # A failed attempt costs the task setup overhead.
                                tracer.advance(self.task_overhead_ms)
                                span.set(outcome="failed",
                                         error=type(error).__name__)
                            raise
                        if tracer is not None:
                            tracer.advance(work_ms)
                            span.set(outcome="ok", rows_in=rows_in,
                                     rows_out=rows_out)
                    record = TaskRecord(
                        stage=stage,
                        task=task_index,
                        splits=split_count,
                        rows_in=rows_in,
                        rows_out=rows_out,
                        data_key=data_key,
                        sim_ms=work_ms + penalty_ms,
                        data_bytes=sum(page.size_in_bytes() for page in pages),
                        attempts=attempts,
                    )
                    return record, pages
                except PrestoError as error:
                    # A failed attempt still costs the task setup overhead.
                    penalty_ms += self.task_overhead_ms
                    if not error.retryable or attempts > self.max_task_retries:
                        stats.tasks_failed += 1
                        self._count_task("scheduler_tasks_failed_total", stage)
                        stats.simulated_ms += penalty_ms
                        stats.task_records.append(
                            TaskRecord(
                                stage=stage,
                                task=task_index,
                                splits=split_count,
                                rows_in=0,
                                rows_out=0,
                                data_key=data_key,
                                sim_ms=penalty_ms,
                                attempts=attempts,
                                failed=True,
                            ).as_dict()
                        )
                        stats.tasks_total += 1
                        self._count_task("scheduler_tasks_run_total", stage)
                        raise
                    stats.tasks_retried += 1
                    self._count_task("scheduler_tasks_retried_total", stage)
                    # Exponential backoff, charged to the simulated clock only
                    # (deterministic — no wall-clock sleeping).
                    backoff_ms = self.retry_backoff_ms * (2 ** (attempts - 1))
                    penalty_ms += backoff_ms
                    self._count_task(
                        "scheduler_retry_backoff_ms_total", stage, backoff_ms
                    )
                    if tracer is not None:
                        with tracer.span(
                            "backoff", stage=stage, task=task_index,
                            attempt=attempts, backoff_ms=backoff_ms,
                        ):
                            tracer.advance(backoff_ms)

    def _run_attempt(
        self,
        fragment: PlanFragment,
        task_index: int,
        task_plan: tuple[Optional[dict], dict, str, int],
        attempt: int,
    ) -> tuple[int, int, list[Page]]:
        """One execution attempt: returns (rows_in, rows_out, pages)."""
        scan_splits, exchange_inputs, data_key, _ = task_plan
        stats = self.ctx.stats
        injector = self.fault_injector
        if injector is not None:
            injector.maybe_fail_task(
                stats.query_id, fragment.fragment_id, task_index, attempt
            )
            for splits in (scan_splits or {}).values():
                for split in splits:
                    injector.maybe_fail_split(
                        stats.query_id,
                        fragment.fragment_id,
                        task_index,
                        split.split_id,
                        attempt,
                    )
        tracer = self.ctx.tracer
        task_ctx = dc_replace(
            self.ctx,
            scan_splits=scan_splits,
            exchange_inputs=exchange_inputs,
            operator_rows={} if tracer is not None else None,
        )
        rows_in = sum(
            page.position_count
            for pages in (exchange_inputs or {}).values()
            for page in pages
        )
        scanned_before = stats.rows_scanned
        try:
            pages = [page.loaded() for page in execute_plan(fragment.root, task_ctx)]
        finally:
            # Emit operator spans even when the pipeline fails mid-drain:
            # the rows it did process are in QueryStats, so the spans must
            # account for them too.
            if tracer is not None:
                record_operator_spans(tracer, fragment.root, task_ctx.operator_rows)
        rows_in += stats.rows_scanned - scanned_before
        rows_out = sum(page.position_count for page in pages)
        return rows_in, rows_out, pages

    # -- task planning -------------------------------------------------------

    def _plan_tasks(
        self, fragment: PlanFragment, buffers: dict[Exchange, ExchangeBuffer]
    ) -> list[tuple[Optional[dict], dict, str, int]]:
        """One entry per task: (scan_splits, exchange_inputs, data_key, splits)."""
        partitioned_inputs = [e for e in fragment.inputs if e.partitioned]
        full_inputs = [e for e in fragment.inputs if not e.partitioned]
        for exchange in fragment.inputs:
            if exchange not in buffers:
                raise ExecutionError(
                    f"fragment {fragment.fragment_id} consumes exchange from "
                    f"fragment {exchange.source_fragment}, which has not run"
                )

        def inputs_for(partition: Optional[int]) -> dict:
            exchange_inputs = {
                e: buffers[e].all_pages() for e in full_inputs
            }
            for e in partitioned_inputs:
                exchange_inputs[e] = (
                    buffers[e].pages_for_partition(partition)
                    if partition is not None
                    else buffers[e].all_pages()
                )
            return exchange_inputs

        scans = _find_table_scans(fragment.root)
        if fragment.distribution == "source" and len(scans) == 1:
            scan = scans[0]
            connector = self.ctx.catalog.connector(scan.catalog)
            splits = connector.split_manager().get_splits(scan.handle)
            if splits:
                return [
                    (
                        {scan.id: [split]},
                        inputs_for(None),
                        split.split_id,
                        1,
                    )
                    for split in splits
                ]
            # Empty tables still run one task (a global aggregation over
            # no input must produce its single row).
            return [({scan.id: []}, inputs_for(None), f"stage{fragment.fragment_id}.task0", 0)]

        if fragment.distribution == "hash" and partitioned_inputs:
            return [
                (
                    None,
                    inputs_for(partition),
                    f"stage{fragment.fragment_id}.part{partition}",
                    0,
                )
                for partition in range(self.hash_partitions)
            ]

        # Single task: coordinator-side stages, multi-scan fragments (the
        # scans enumerate their own splits), hash stages without a
        # partitioned feed.
        return [
            (
                None,
                inputs_for(None),
                f"stage{fragment.fragment_id}.task0",
                len(scans),
            )
        ]


@dataclass
class TaskStep:
    """What one :meth:`QueryScheduler.step` executed, for the event loop.

    ``sim_ms`` is the task's simulated engine cost — the cluster replays
    it as split work on a worker slot.  ``stage_done``/``query_done``
    mark barrier crossings: the scheduler will not plan the next stage's
    tasks until every in-flight task of this stage has drained.
    """

    stage: int
    task: int
    data_key: str
    sim_ms: float
    splits: int
    stage_done: bool
    query_done: bool
    data_bytes: int = 0


class QueryScheduler:
    """Steppable per-query execution state machine.

    The heart of the run-to-completion → incremental refactor: holds all
    the state :meth:`StageScheduler.run` used to keep in local variables
    (exchange buffers, the current fragment's planned tasks, the open
    stage span) so that execution can be advanced one task at a time from
    a cluster-level event loop, interleaved with other queries on the
    shared simulated clock.

    Each :meth:`step` runs exactly one task — retries, trace charging,
    exchange commits, and stats accounting included — in the same order
    the blocking loop did, so traces and :class:`QueryStats` stay
    byte-identical with single-query execution.  The *ready-task
    frontier* is the remainder of the current stage: fragments are
    topologically ordered and a stage's tasks are planned lazily when the
    previous stage's output buffers are complete.
    """

    def __init__(self, scheduler: StageScheduler, fragmented: FragmentedPlan) -> None:
        self._scheduler = scheduler
        self.fragmented = fragmented
        self.ctx = scheduler.ctx
        self.buffers: dict[Exchange, ExchangeBuffer] = {}
        self._consumer_exchanges = [
            exchange
            for fragment in fragmented.fragments
            for exchange in fragment.inputs
        ]
        self.result_pages: list[Page] = []
        self.done = False
        self.failed = False
        self._fragment_index = 0
        self._tasks: Optional[list] = None
        self._task_index = 0
        self._out_buffers: list[ExchangeBuffer] = []
        self._stage_span = None
        self._stage_rows_in = 0
        self._stage_rows_out = 0
        self._stage_sim_ms = 0.0

    # -- frontier inspection --------------------------------------------------

    def peek_stage(self) -> Optional[int]:
        """Fragment id the next :meth:`step` will run a task of (None if done)."""
        if self.done:
            return None
        return self.fragmented.fragments[self._fragment_index].fragment_id

    def tasks_remaining_in_stage(self) -> Optional[int]:
        """Unexecuted tasks of the current stage, or None before planning."""
        if self.done or self._tasks is None:
            return None
        return len(self._tasks) - self._task_index

    # -- stage lifecycle ------------------------------------------------------

    def _begin_stage(self, fragment: PlanFragment) -> None:
        scheduler = self._scheduler
        outgoing = [
            e
            for e in self._consumer_exchanges
            if e.source_fragment == fragment.fragment_id
        ]
        self._out_buffers = []
        for exchange in outgoing:
            key_channels = (
                key_channels_for(exchange, fragment.root)
                if exchange.partitioned
                else None
            )
            buffer = ExchangeBuffer(
                exchange, scheduler.hash_partitions, key_channels
            )
            self.buffers[exchange] = buffer
            self._out_buffers.append(buffer)

        self._tasks = scheduler._plan_tasks(fragment, self.buffers)
        self._task_index = 0
        self._stage_rows_in = 0
        self._stage_rows_out = 0
        self._stage_sim_ms = 0.0
        tracer = self.ctx.tracer
        if tracer is not None:
            self._stage_span = tracer.open_span(
                "stage",
                stage=fragment.fragment_id,
                distribution=fragment.distribution,
                tasks=len(self._tasks),
            )

    def _end_stage(self, fragment: PlanFragment) -> None:
        stats = self.ctx.stats
        tracer = self.ctx.tracer
        if tracer is not None and self._stage_span is not None:
            tracer.close_span(self._stage_span)
        self._stage_span = None
        stats.stages_total += 1
        stats.simulated_ms += self._stage_sim_ms
        stats.stage_summaries.append(
            {
                "stage": fragment.fragment_id,
                "distribution": fragment.distribution,
                "tasks": len(self._tasks or []),
                "rows_in": self._stage_rows_in,
                "rows_out": self._stage_rows_out,
                "sim_ms": self._stage_sim_ms,
            }
        )
        self._tasks = None
        self._fragment_index += 1

    def _fail(self) -> None:
        """Terminal failure: close the open stage span, freeze the machine."""
        tracer = self.ctx.tracer
        if tracer is not None and self._stage_span is not None:
            tracer.close_span(self._stage_span)
        self._stage_span = None
        self.done = True
        self.failed = True

    def _finish(self) -> None:
        self.ctx.stats.rows_exchanged = sum(
            b.rows_added for b in self.buffers.values()
        )
        self.done = True

    # -- the state machine ----------------------------------------------------

    def step(self) -> TaskStep:
        """Run exactly one task (with retries) and commit its output.

        Raises the task's terminal :class:`PrestoError` on unrecoverable
        failure, leaving the machine ``done`` and ``failed``.
        """
        if self.done:
            raise ExecutionError("query scheduler already finished")
        scheduler = self._scheduler
        stats = self.ctx.stats
        fragments = self.fragmented.fragments
        fragment = fragments[self._fragment_index]
        if self._tasks is None:
            self._begin_stage(fragment)
        assert self._tasks is not None
        task_index = self._task_index
        task_plan = self._tasks[task_index]
        try:
            record, pages = scheduler._run_task(fragment, task_index, task_plan)
        except PrestoError:
            self._fail()
            raise
        # Commit only after success: a retried attempt never
        # double-publishes rows.
        if fragment.fragment_id == self.fragmented.root_fragment.fragment_id:
            self.result_pages.extend(pages)
        else:
            for buffer in self._out_buffers:
                before = buffer.rows_added
                for page in pages:
                    buffer.add(page)
                scheduler._record_exchange(
                    buffer, task_index, buffer.rows_added - before, pages
                )
        stats.task_records.append(record.as_dict())
        stats.tasks_total += 1
        scheduler._count_task("scheduler_tasks_run_total", fragment.fragment_id)
        if self.ctx.metrics is not None:
            self.ctx.metrics.histogram(
                "scheduler_task_sim_ms", query_id=stats.query_id
            ).observe(record.sim_ms)
        self._stage_rows_in += record.rows_in
        self._stage_rows_out += record.rows_out
        self._stage_sim_ms += record.sim_ms

        self._task_index += 1
        stage_done = self._task_index >= len(self._tasks)
        if stage_done:
            self._end_stage(fragment)
        query_done = stage_done and self._fragment_index >= len(fragments)
        if query_done:
            self._finish()
        return TaskStep(
            stage=fragment.fragment_id,
            task=task_index,
            data_key=record.data_key,
            sim_ms=record.sim_ms,
            splits=record.splits,
            stage_done=stage_done,
            query_done=query_done,
            data_bytes=record.data_bytes,
        )


def _find_table_scans(node: PlanNode) -> list[TableScanNode]:
    found: list[TableScanNode] = []

    def walk(current: PlanNode) -> None:
        if isinstance(current, TableScanNode):
            found.append(current)
            return
        if isinstance(current, RemoteSourceNode):
            return
        for source in current.sources():
            walk(source)

    walk(node)
    return found
