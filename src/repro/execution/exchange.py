"""Exchange buffers: page movement between stages of a fragmented plan.

Section III: stages are connected by exchanges — GATHER (all data to one
node), REPARTITION (hash-partition on keys), REPLICATE (broadcast).  In
this in-process reproduction an exchange is a buffer of pages produced by
the upstream stage's tasks, in task order, so staged execution stays
deterministic.

Partitioning is columnar: the producer's key channels go through
:func:`repro.execution.kernels.partition_assignments` (the PR-1 kernel
layer — distinct key tuples factorize once and hash once, rows gather
their partition index in one vectorized take), and each partition's rows
are extracted with ``Page.take``.  The hash is the CRC32-based
:func:`repro.common.hashing.stable_hash`, so partition placement is
reproducible across processes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ExecutionError
from repro.core.page import Page
from repro.execution import kernels
from repro.planner.fragmenter import Exchange, ExchangeKind


class ExchangeBuffer:
    """Buffered output of one stage, keyed by the consuming exchange.

    ``partition_count`` only matters for partitioned exchanges (the
    REPARTITION edge feeding a hash-distributed stage); every other kind
    keeps a single buffer which consumers read in full — GATHER because
    there is one consumer task, REPLICATE because every consumer task
    receives the whole broadcast, and non-partitioned REPARTITION (a join
    build side) because the in-process hash join needs the complete build
    table per probe task.
    """

    def __init__(
        self,
        exchange: Optional[Exchange],
        partition_count: int = 1,
        key_channels: Optional[list[int]] = None,
    ) -> None:
        self.exchange = exchange
        self.partitioned = bool(exchange is not None and exchange.partitioned)
        self.partition_count = partition_count if self.partitioned else 1
        self.key_channels = key_channels or []
        if self.partitioned and not self.key_channels:
            raise ExecutionError(
                f"partitioned exchange {exchange.kind} has no key channels"
            )
        self.partitions: list[list[Page]] = [
            [] for _ in range(self.partition_count)
        ]
        self.rows_added = 0

    def add(self, page: Page) -> None:
        """Route one producer page into the buffer."""
        self.rows_added += page.position_count
        if not self.partitioned or self.partition_count == 1:
            self.partitions[0].append(page)
            return
        if page.position_count == 0:
            return
        key_blocks = [page.block(c).loaded() for c in self.key_channels]
        assignments = kernels.partition_assignments(key_blocks, self.partition_count)
        for partition in range(self.partition_count):
            positions = np.nonzero(assignments == partition)[0]
            if len(positions):
                self.partitions[partition].append(page.take(positions))

    def pages_for_partition(self, partition: int) -> list[Page]:
        """Pages owned by one consumer task of a partitioned exchange."""
        return list(self.partitions[partition])

    def all_pages(self) -> list[Page]:
        """Every buffered page, partition-major, in production order."""
        return [page for partition in self.partitions for page in partition]


def key_channels_for(exchange: Exchange, producer_root) -> list[int]:
    """Channel indexes of the exchange's partition keys in producer output."""
    names = [v.name for v in producer_root.outputs]
    channels = []
    for key in exchange.partition_keys:
        if key not in names:
            raise ExecutionError(
                f"partition key {key!r} not in producer outputs {names}"
            )
        channels.append(names.index(key))
    return channels
