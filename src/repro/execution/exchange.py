"""Exchange buffers: page movement between stages of a fragmented plan.

Section III: stages are connected by exchanges — GATHER (all data to one
node), REPARTITION (hash-partition on keys), REPLICATE (broadcast).  In
this in-process reproduction an exchange is a buffer of pages produced by
the upstream stage's tasks, in task order, so staged execution stays
deterministic.

Partitioning is columnar: the producer's key channels go through
:func:`repro.execution.kernels.partition_assignments` (the PR-1 kernel
layer — distinct key tuples factorize once and hash once, rows gather
their partition index in one vectorized take), and each partition's rows
are extracted with ``Page.take``.  The hash is the CRC32-based
:func:`repro.common.hashing.stable_hash`, so partition placement is
reproducible across processes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.errors import ExecutionError
from repro.core.page import Page
from repro.execution import kernels
from repro.planner.fragmenter import Exchange, ExchangeKind


class ExchangeBuffer:
    """Buffered output of one stage, keyed by the consuming exchange.

    ``partition_count`` only matters for partitioned exchanges (the
    REPARTITION edge feeding a hash-distributed stage); every other kind
    keeps a single buffer which consumers read in full — GATHER because
    there is one consumer task, REPLICATE because every consumer task
    receives the whole broadcast, and non-partitioned REPARTITION (a join
    build side) because the in-process hash join needs the complete build
    table per probe task.

    Partitioning is **lazy**: producer pages accumulate in arrival order
    and are routed into partitions only at the first partitioned read.
    That window — after the producer finished, before the consumer is
    planned — is where adaptive execution calls
    :meth:`set_partition_count` to right-size the downstream stage from
    the observed row volume.
    """

    def __init__(
        self,
        exchange: Optional[Exchange],
        partition_count: int = 1,
        key_channels: Optional[list[int]] = None,
    ) -> None:
        self.exchange = exchange
        self.partitioned = bool(exchange is not None and exchange.partitioned)
        self.partition_count = partition_count if self.partitioned else 1
        self.key_channels = key_channels or []
        if self.partitioned and not self.key_channels:
            raise ExecutionError(
                f"partitioned exchange {exchange.kind} has no key channels"
            )
        self._added: list[Page] = []
        self._partitions: Optional[list[list[Page]]] = None
        self.rows_added = 0

    def add(self, page: Page) -> None:
        """Buffer one producer page (partitioning deferred to first read)."""
        self.rows_added += page.position_count
        self._added.append(page)
        self._partitions = None  # late adds re-partition lazily

    def set_partition_count(self, count: int) -> None:
        """Adapt the downstream partition count before the first read."""
        if count < 1:
            raise ExecutionError("partition count must be at least 1")
        if not self.partitioned:
            return
        self.partition_count = count
        self._partitions = None

    def _materialized(self) -> list[list[Page]]:
        if self._partitions is None:
            partitions: list[list[Page]] = [
                [] for _ in range(self.partition_count)
            ]
            if not self.partitioned or self.partition_count == 1:
                partitions[0] = list(self._added)
            else:
                for page in self._added:
                    if page.position_count == 0:
                        continue
                    key_blocks = [
                        page.block(c).loaded() for c in self.key_channels
                    ]
                    assignments = kernels.partition_assignments(
                        key_blocks, self.partition_count
                    )
                    for partition in range(self.partition_count):
                        positions = np.nonzero(assignments == partition)[0]
                        if len(positions):
                            partitions[partition].append(page.take(positions))
            self._partitions = partitions
        return self._partitions

    def pages_for_partition(self, partition: int) -> list[Page]:
        """Pages owned by one consumer task of a partitioned exchange."""
        return list(self._materialized()[partition])

    def all_pages(self) -> list[Page]:
        """Every buffered page, partition-major, in production order."""
        return [page for partition in self._materialized() for page in partition]


def key_channels_for(exchange: Exchange, producer_root) -> list[int]:
    """Channel indexes of the exchange's partition keys in producer output."""
    names = [v.name for v in producer_root.outputs]
    channels = []
    for key in exchange.partition_keys:
        if key not in names:
            raise ExecutionError(
                f"partition key {key!r} not in producer outputs {names}"
            )
        channels.append(names.index(key))
    return channels
