"""Cluster control plane: coordinator, workers, scheduling, elasticity.

A discrete-event simulation of one Presto cluster's control plane:

- the **coordinator** admits queries, plans them (cost grows with worker
  count and concurrency — it "could become the bottleneck ... bigger than
  1000 machines, or more than 500 complex queries running concurrently",
  section VIII), and assigns splits to worker execution slots;
- **workers** process split work in parallel slots and support the
  graceful shutdown protocol of section IX: SHUTTING_DOWN → sleep grace
  period → coordinator stops sending tasks → drain active tasks → sleep
  grace period again → shut down;
- **crashes** are the ungraceful counterpart: :meth:`crash_worker` kills
  a worker without draining — its in-flight splits requeue at the front
  of their queries' pending work and re-run on surviving workers, the
  crashed worker is blacklisted from scheduling and from the affinity
  ring, and its data cache is lost;
- **expansion** is a registration: "New workers are automatically added to
  the existing cluster."

Splits are scheduled FIFO (submission order), so completion order, cache
warm-up order, and task records all follow the order work was produced.
Time is fully simulated; `run_until_idle` drives the event loop.

**Concurrent serving** (the multi-query scheduler): a cluster can also
drive steppable engine queries — :meth:`PrestoClusterSim.submit_handle`
admits a :class:`~repro.execution.engine.QueryHandle` through a
:class:`ResourceGroup` tree (memory + concurrency quotas, nested by
user/group, per the paper's resource-management section and the Twitter
serving-layer follow-up), queues it per-user with priority/fair-share
dequeue when its group is at quota, sheds load with
``AdmissionRejectedError`` (INSUFFICIENT_RESOURCES + retry-after) when
the queue exceeds its SLO, and — once admitted — *pumps* the handle's
tasks into the ordinary split-scheduling machinery one stage at a time.
Many admitted queries interleave on the shared simulated clock; worker
crashes requeue in-flight splits across all of them.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.data_cache import DataCacheConfig, TieredDataCache
from repro.common.clock import SimulatedClock
from repro.common.errors import AdmissionRejectedError, ExecutionError, PrestoError
from repro.common.ring import ConsistentHashRing
from repro.obs.trace import QueryTrace, activate, current_tracer


class WorkerState(enum.Enum):
    ACTIVE = "active"
    SHUTTING_DOWN = "shutting_down"
    SHUT_DOWN = "shut_down"
    CRASHED = "crashed"


DEFAULT_GRACE_PERIOD_MS = 120_000.0  # shutdown.grace-period: 2 minutes


@dataclass
class SplitWork:
    """One unit of work: occupies one slot for ``duration_ms``.

    ``data_key`` identifies the underlying data (e.g. a file path); with
    affinity scheduling, splits with the same key prefer the same worker,
    whose local tiered data cache then serves repeat reads faster.
    ``data_size_bytes`` is how much data the split reads — what the cache
    charges against its tier capacities (None uses the cache's default
    entry estimate).
    """

    query_id: str
    duration_ms: float
    data_key: Optional[str] = None
    data_size_bytes: Optional[int] = None


@dataclass
class Worker:
    worker_id: str
    slots: int
    state: WorkerState = WorkerState.ACTIVE
    running: int = 0
    completed_splits: int = 0
    shutdown_requested_at: Optional[float] = None
    shutdown_visible_at: Optional[float] = None  # coordinator aware
    shut_down_at: Optional[float] = None
    crashed_at: Optional[float] = None
    # Worker-local tiered data cache (affinity scheduling): split data
    # this worker holds in its hot/SSD tiers.  Bounded — unlike the old
    # unbounded key set, a key can be evicted and miss again later.
    data_cache: Optional[TieredDataCache] = None
    cache_hits: int = 0

    def has_capacity(self) -> bool:
        return self.state is WorkerState.ACTIVE and self.running < self.slots

    def schedulable(self, now_ms: float) -> bool:
        """Whether the coordinator will send new tasks to this worker.

        During the first grace period the coordinator has not yet observed
        the shutdown and may still assign tasks.
        """
        if self.state is WorkerState.ACTIVE:
            return self.running < self.slots
        if self.state is WorkerState.SHUTTING_DOWN:
            visible = self.shutdown_visible_at is not None and now_ms >= self.shutdown_visible_at
            return not visible and self.running < self.slots
        return False


@dataclass
class QueryExecution:
    query_id: str
    splits_total: int
    splits_done: int = 0
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    # FIFO: splits schedule in submission order (popleft); crash-requeued
    # splits go back to the front so recovered work runs first.
    pending: deque = field(default_factory=deque)
    splits_requeued: int = 0
    # Admission-control accounting (concurrent serving): who submitted,
    # through which resource group, and how the latency decomposes into
    # time spent queued at admission vs. time spent actually running.
    user: str = ""
    resource_group: str = ""
    queued_ms: float = 0.0
    running_ms: float = 0.0

    @property
    def latency_ms(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class QueryState(enum.Enum):
    """Lifecycle of a concurrently-served query."""

    QUEUED = "queued"  # admitted to a queue, waiting for group capacity
    RUNNING = "running"  # holding group resources, tasks interleaving
    FINISHED = "finished"
    FAILED = "failed"
    EVICTED = "evicted"  # dequeued without running (cluster drain)


class ResourceGroup:
    """One node of the resource-group tree (memory + CPU-slot quotas).

    Mirrors Presto's nested resource groups: a query admits into a leaf
    (conventionally ``root.<team>.<user>``), and admission must satisfy
    the limits of *every* ancestor — ``running``/``memory_used_mb``
    aggregate up the tree.  All limits are optional:

    - ``max_running``: concurrent admitted queries (CPU-slot quota);
    - ``memory_limit_mb``: summed reserved memory of admitted queries;
    - ``max_queued``: queue capacity before hard load shedding;
    - ``queue_slo_ms``: estimated-wait SLO — a submission whose estimated
      queue time exceeds it is shed with a retry-after hint instead of
      silently blowing its latency budget.
    """

    def __init__(
        self,
        name: str,
        parent: Optional["ResourceGroup"] = None,
        max_running: Optional[int] = None,
        memory_limit_mb: Optional[float] = None,
        max_queued: Optional[int] = None,
        queue_slo_ms: Optional[float] = None,
    ) -> None:
        self.name = name
        self.parent = parent
        self.children: dict[str, "ResourceGroup"] = {}
        self.max_running = max_running
        self.memory_limit_mb = memory_limit_mb
        self.max_queued = max_queued
        self.queue_slo_ms = queue_slo_ms
        # Live usage (this node + descendants).
        self.running = 0
        self.queued = 0
        self.memory_used_mb = 0.0
        # Lifetime accounting.
        self.queries_completed = 0
        self.queries_shed = 0

    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"

    def child(self, name: str, **limits) -> "ResourceGroup":
        """Get-or-create a child group; ``limits`` (re)configure it."""
        group = self.children.get(name)
        if group is None:
            group = ResourceGroup(name, parent=self)
            self.children[name] = group
        for key, value in limits.items():
            if not hasattr(group, key):
                raise ExecutionError(f"unknown resource-group limit {key!r}")
            setattr(group, key, value)
        return group

    def _chain(self):
        group: Optional[ResourceGroup] = self
        while group is not None:
            yield group
            group = group.parent

    def can_admit(self, memory_mb: float) -> bool:
        """Whether one more query fits under every limit up the tree."""
        for group in self._chain():
            if group.max_running is not None and group.running >= group.max_running:
                return False
            if (
                group.memory_limit_mb is not None
                and group.memory_used_mb + memory_mb > group.memory_limit_mb
            ):
                return False
        return True

    def effective_max_running(self) -> Optional[int]:
        """Tightest ``max_running`` along the ancestor chain (None = ∞)."""
        caps = [g.max_running for g in self._chain() if g.max_running is not None]
        return min(caps) if caps else None

    def acquire(self, memory_mb: float) -> None:
        for group in self._chain():
            group.running += 1
            group.memory_used_mb += memory_mb

    def release(self, memory_mb: float) -> None:
        for group in self._chain():
            group.running -= 1
            group.memory_used_mb -= memory_mb

    def enqueue(self) -> None:
        for group in self._chain():
            group.queued += 1

    def dequeue(self) -> None:
        for group in self._chain():
            group.queued -= 1


@dataclass
class ConcurrentRun:
    """Cluster-side state of one concurrently-served engine query."""

    handle: object  # repro.execution.engine.QueryHandle
    execution: QueryExecution
    group: ResourceGroup
    user: str
    memory_mb: float
    priority: int
    sequence: int  # submission order; the FIFO tie-break
    state: QueryState = QueryState.QUEUED
    inflight: int = 0  # dispatched-but-uncompleted splits
    last_stage: Optional[int] = None
    admitted_at: Optional[float] = None
    admission_span: Optional[object] = None
    on_finish: Optional[Callable[["ConcurrentRun"], None]] = None


@dataclass
class CoordinatorModel:
    """The coordinator's capacity model.

    Planning and tracking costs grow superlinearly with cluster size and
    query concurrency, reproducing the section VIII bottleneck.
    """

    planning_base_ms: float = 50.0
    worker_tracking_factor: float = 1000.0  # degradation knee (machines)
    concurrency_factor: float = 500.0  # degradation knee (queries)

    def planning_cost_ms(self, workers: int, concurrent_queries: int) -> float:
        worker_load = (workers / self.worker_tracking_factor) ** 2
        concurrency_load = (concurrent_queries / self.concurrency_factor) ** 2
        return self.planning_base_ms * (1.0 + 4.0 * worker_load + 8.0 * concurrency_load)


class PrestoClusterSim:
    """One simulated Presto cluster (one coordinator, many workers)."""

    def __init__(
        self,
        workers: int = 10,
        slots_per_worker: int = 4,
        clock: Optional[SimulatedClock] = None,
        coordinator: Optional[CoordinatorModel] = None,
        name: str = "cluster",
        affinity_scheduling: bool = False,
        cache_hit_speedup: float = 0.3,
        ssd_hit_speedup: float = 0.65,
        data_cache: Optional[DataCacheConfig] = None,
        metrics=None,
    ) -> None:
        self.name = name
        # Optional observability: per-cluster counters (queries admitted,
        # splits completed/requeued, affinity cache hits) and an
        # active-worker gauge, labeled ``cluster=<name>``.
        self.metrics = metrics
        self.clock = clock or SimulatedClock()
        self.coordinator = coordinator or CoordinatorModel()
        self.slots_per_worker = slots_per_worker
        # Affinity scheduling (section VII, RaptorX): route splits for the
        # same data to the same worker so its local tiered cache gets
        # hits.  A hot-tier hit cuts the split's remote-read work to
        # ``cache_hit_speedup`` of its duration, an SSD-tier hit to
        # ``ssd_hit_speedup``; each tier also charges its read latency.
        self.affinity_scheduling = affinity_scheduling
        self.cache_hit_speedup = cache_hit_speedup
        self.ssd_hit_speedup = ssd_hit_speedup
        self.data_cache_config = data_cache or DataCacheConfig()
        # Placement: a consistent-hash ring of ACTIVE workers — one crash
        # or drain remaps only ~1/N of the keyspace, so the surviving
        # workers' caches stay warm (the old modulo pick remapped nearly
        # every key on any membership change).
        self.affinity_ring = ConsistentHashRing()
        self.workers: dict[str, Worker] = {}
        self._worker_ids = itertools.count()
        self._query_ids = itertools.count()
        self.queries: dict[str, QueryExecution] = {}
        # Concurrent serving: the resource-group tree, per-query run
        # state, and the admission queue (fair-share dequeue order is
        # computed at dequeue time, so one list suffices).
        self.root_group = ResourceGroup("root")
        self._runs: dict[str, ConcurrentRun] = {}
        self._queued_runs: list[ConcurrentRun] = []
        self._run_sequence = itertools.count()
        self._user_running: dict[str, int] = {}
        self._completed_runs = 0
        self._completed_running_ms = 0.0
        self.queries_shed = 0
        # Finished concurrent runs, for the cluster timeline trace.
        self._timeline: list[dict] = []
        # Workers the coordinator will never schedule on again (crashed).
        self.blacklisted_workers: set[str] = set()
        # In-flight split assignments: id -> (worker, execution, split).
        # Completion events resolve through this table so a crash can
        # cancel them and requeue the splits.
        self._assignments: dict[int, tuple[Worker, QueryExecution, SplitWork]] = {}
        self._assignment_sequence = itertools.count()
        # Event heap: (time_ms, sequence, callback)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_sequence = itertools.count()
        for _ in range(workers):
            self.add_worker()

    # -- observability --------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, cluster=self.name).inc(amount)

    def _update_worker_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cluster_active_workers", cluster=self.name).set(
                self.active_worker_count()
            )

    def _set_query_gauges(self) -> None:
        """One deterministic update per query state transition."""
        if self.metrics is not None:
            self.metrics.gauge("cluster_queries_running", cluster=self.name).set(
                self.running_query_count()
            )
            self.metrics.gauge("cluster_queries_queued", cluster=self.name).set(
                self.queued_query_count()
            )

    def _set_slot_gauge(self) -> None:
        """Busy worker slots; updated once per scheduling/completion event."""
        if self.metrics is not None:
            busy = sum(
                w.running
                for w in self.workers.values()
                if w.state in (WorkerState.ACTIVE, WorkerState.SHUTTING_DOWN)
            )
            self.metrics.gauge("cluster_busy_slots", cluster=self.name).set(busy)

    def _set_group_gauges(self, group: ResourceGroup) -> None:
        """Refresh gauges for ``group`` and every ancestor it rolls into."""
        if self.metrics is None:
            return
        node: Optional[ResourceGroup] = group
        while node is not None:
            labels = {"cluster": self.name, "group": node.path}
            self.metrics.gauge("resource_group_running", **labels).set(node.running)
            self.metrics.gauge("resource_group_queued", **labels).set(node.queued)
            self.metrics.gauge("resource_group_memory_mb", **labels).set(
                node.memory_used_mb
            )
            node = node.parent

    # -- elasticity -----------------------------------------------------------

    def add_worker(self, slots: Optional[int] = None) -> Worker:
        """Expansion: a new worker registers and immediately takes tasks.

        The worker starts with cold (empty) cache tiers and claims its
        share of the affinity ring — stealing only ~1/N of the keyspace
        from the incumbents.
        """
        worker = Worker(f"{self.name}-worker-{next(self._worker_ids)}", slots or self.slots_per_worker)
        worker.data_cache = TieredDataCache(
            self.data_cache_config, worker=worker.worker_id, metrics=self.metrics
        )
        self.workers[worker.worker_id] = worker
        self.affinity_ring.add(worker.worker_id)
        self._update_worker_gauge()
        self._schedule_pending()
        return worker

    def request_graceful_shutdown(
        self, worker_id: str, grace_period_ms: float = DEFAULT_GRACE_PERIOD_MS
    ) -> None:
        """Section IX: worker enters SHUTTING_DOWN and drains."""
        worker = self.workers[worker_id]
        if worker.state is not WorkerState.ACTIVE:
            return
        now = self.clock.now_ms()
        worker.state = WorkerState.SHUTTING_DOWN
        worker.shutdown_requested_at = now
        # Off the affinity ring immediately: a draining worker would
        # permanently capture every key hashing to it, and those keys'
        # caches could never re-warm elsewhere.
        self.affinity_ring.remove(worker_id)
        self._update_worker_gauge()
        # After sleeping the grace period the coordinator is aware and
        # stops sending tasks to the worker.
        worker.shutdown_visible_at = now + grace_period_ms
        self._at(now + grace_period_ms, lambda: self._try_finish_shutdown(worker, grace_period_ms))

    def _try_finish_shutdown(self, worker: Worker, grace_period_ms: float) -> None:
        if worker.state is not WorkerState.SHUTTING_DOWN:
            return
        if worker.running > 0:
            # Still draining; check again when a split completes (events
            # re-invoke this via _on_split_done).
            return
        # All tasks complete: sleep the grace period again so the
        # coordinator sees completion, then shut down.
        shutdown_time = self.clock.now_ms() + grace_period_ms

        def finish() -> None:
            worker.state = WorkerState.SHUT_DOWN
            worker.shut_down_at = self.clock.now_ms()
            self._update_worker_gauge()

        self._at(shutdown_time, finish)

    def crash_worker(self, worker_id: str) -> list[SplitWork]:
        """Kill a worker without draining (the ungraceful path).

        Every in-flight split on the worker requeues at the *front* of its
        query's pending work and re-runs on a surviving worker; the crashed
        worker is blacklisted (never scheduled again, out of the affinity
        ring) and both tiers of its data cache are gone.  Because
        placement is a consistent-hash ring, only the crashed worker's
        ~1/N share of the keyspace remaps — the survivors' caches stay
        warm.  Works in any state — a crash during SHUTTING_DOWN simply
        preempts the drain.  Returns the requeued splits.
        """
        worker = self.workers[worker_id]
        if worker.state in (WorkerState.SHUT_DOWN, WorkerState.CRASHED):
            return []
        worker.state = WorkerState.CRASHED
        worker.crashed_at = self.clock.now_ms()
        self._count("cluster_worker_crashes_total")
        self._update_worker_gauge()
        self.blacklisted_workers.add(worker_id)
        self.affinity_ring.remove(worker_id)
        if worker.data_cache is not None:
            worker.data_cache.clear()
        lost = [
            (assignment_id, execution, split)
            for assignment_id, (w, execution, split) in self._assignments.items()
            if w is worker
        ]
        requeued = []
        # Reverse order + appendleft keeps the splits' relative order at
        # the front of each query's deque.
        for assignment_id, execution, split in reversed(lost):
            del self._assignments[assignment_id]
            execution.pending.appendleft(split)
            execution.splits_requeued += 1
            self._count("cluster_splits_requeued_total")
            requeued.append(split)
        requeued.reverse()
        worker.running = 0
        self._schedule_pending()
        return requeued

    def crash_worker_at(self, time_ms: float, worker_id: str) -> None:
        """Schedule a crash event at an absolute simulated time."""
        self._at(time_ms, lambda: self.crash_worker(worker_id))

    def active_worker_count(self) -> int:
        return sum(1 for w in self.workers.values() if w.state is WorkerState.ACTIVE)

    # -- query admission ----------------------------------------------------------

    def submit_query(
        self,
        split_durations_ms: list[float],
        query_id: Optional[str] = None,
        split_keys: Optional[list[str]] = None,
        split_sizes: Optional[list[int]] = None,
    ) -> QueryExecution:
        """Admit a query whose work is the given split durations.

        ``split_keys`` (optional, parallel to the durations) name the data
        each split reads, enabling affinity scheduling and cache hits;
        ``split_sizes`` (optional, parallel) are the splits' data sizes in
        bytes for cache capacity accounting.
        """
        if not split_durations_ms:
            raise ExecutionError("query needs at least one split")
        if split_keys is not None and len(split_keys) != len(split_durations_ms):
            raise ExecutionError("split_keys length must match split durations")
        if split_sizes is not None and len(split_sizes) != len(split_durations_ms):
            raise ExecutionError("split_sizes length must match split durations")
        tasks = [
            SplitWork(
                "",
                duration,
                split_keys[i] if split_keys else None,
                split_sizes[i] if split_sizes else None,
            )
            for i, duration in enumerate(split_durations_ms)
        ]
        return self.submit_tasks(tasks, query_id=query_id)

    def submit_tasks(
        self, tasks: list[SplitWork], query_id: Optional[str] = None
    ) -> QueryExecution:
        """Admit a query whose work is the given tasks.

        Generalizes :meth:`submit_query` to pre-built :class:`SplitWork`
        items — the shape staged execution produces (one per task, with
        the task's simulated duration, its affinity data key, and its
        data size for the worker caches).
        """
        if not tasks:
            raise ExecutionError("query needs at least one task")
        query_id = query_id or f"{self.name}-q{next(self._query_ids)}"
        # Engine-assigned ids can repeat across engines (or gateway
        # failovers); keep cluster-side records unambiguous.
        query_id = self._unique_query_id(query_id)
        for task in tasks:
            task.query_id = query_id
        now = self.clock.now_ms()
        execution = QueryExecution(
            query_id, splits_total=len(tasks), submitted_at=now
        )
        self.queries[query_id] = execution
        self._count("cluster_queries_total")
        self._set_query_gauges()
        planning = self.coordinator.planning_cost_ms(
            len([w for w in self.workers.values() if w.state is not WorkerState.SHUT_DOWN]),
            self.running_query_count() + 1,
        )
        execution.started_at = now + planning
        execution.pending = deque(tasks)
        self._at(execution.started_at, self._schedule_pending)
        return execution

    def submit_engine_query(self, engine, sql: str) -> tuple:
        """Run ``sql`` on ``engine`` staged, then schedule its real tasks.

        The bridge from query execution to the cluster simulation: the
        engine's StageScheduler records one task record per executed task
        (stage, split, rows, simulated cost); those records — not
        synthetic durations — become the cluster's work.  Returns
        ``(QueryResult, QueryExecution)``.
        """
        # Run under a span so the cluster hop shows up in the query's
        # trace: an existing active trace (a gateway submission) is
        # reused; a standalone submission to a tracing engine gets its
        # own tree with cluster admission at the root.
        tracer = current_tracer()
        if tracer is None and getattr(engine, "tracing", False):
            tracer = QueryTrace()
        if tracer is not None:
            with activate(tracer), tracer.span("cluster.admission", cluster=self.name):
                result = engine.execute(sql)
        else:
            result = engine.execute(sql)
        # Thread the engine's query id through (namespaced by cluster) so
        # cluster-side records (QueryExecution, SplitWork) join back to
        # the engine query that produced them.
        query_id = (
            f"{self.name}-{result.stats.query_id}" if result.stats.query_id else None
        )
        records = result.stats.task_records
        if records:
            tasks = [
                SplitWork(
                    query_id=query_id or "",
                    duration_ms=record["sim_ms"],
                    data_key=record["data_key"],
                    data_size_bytes=record.get("data_bytes"),
                )
                for record in records
            ]
        else:
            # Metadata statements and direct execution produce no task
            # records; account a single coordinator-side task.
            tasks = [SplitWork(query_id=query_id or "", duration_ms=1.0)]
        execution = self.submit_tasks(tasks, query_id=query_id)
        return result, execution

    def running_query_count(self) -> int:
        """Admitted-and-unfinished queries (planning or executing).

        Queries sitting in an admission queue are *not* running — they
        hold no resources and no coordinator attention; count them with
        :meth:`queued_query_count`.  (Legacy ``submit_query`` admissions
        are admitted immediately, so their semantics are unchanged.)
        """
        running = 0
        for execution in self.queries.values():
            if execution.finished_at is not None:
                continue
            run = self._runs.get(execution.query_id)
            if run is not None and run.state is not QueryState.RUNNING:
                continue
            running += 1
        return running

    def queued_query_count(self) -> int:
        """Queries admitted to a queue but not yet holding resources."""
        return len(self._queued_runs)

    # -- concurrent serving ---------------------------------------------------

    def resource_group(self, path: str, **limits) -> ResourceGroup:
        """Get-or-create a nested group by dotted path under the root.

        ``limits`` apply to the final segment: e.g.
        ``cluster.resource_group("etl.nightly", max_running=2)``.
        """
        group = self.root_group
        parts = [part for part in path.split(".") if part]
        if not parts:
            return self.root_group
        for part in parts[:-1]:
            group = group.child(part)
        return group.child(parts[-1], **limits)

    def _unique_query_id(self, base: str) -> str:
        if base not in self.queries:
            return base
        for retry in itertools.count(1):
            candidate = f"{base}-r{retry}"
            if candidate not in self.queries:
                return candidate
        raise AssertionError("unreachable")

    def _avg_running_ms(self) -> float:
        """Mean observed running time, seeding the queue-wait estimate."""
        if self._completed_runs:
            return self._completed_running_ms / self._completed_runs
        return 500.0

    def _estimated_wait_ms(self, group: ResourceGroup) -> float:
        """How long a new arrival would wait behind ``group``'s queue.

        Uses the *bottleneck* ancestor — the tightest ``max_running`` up
        the chain — and its aggregated queue, since siblings under that
        cap compete for the same slots.
        """
        cap: Optional[int] = None
        bottleneck = group
        for node in group._chain():
            if node.max_running is not None and (
                cap is None or node.max_running < cap
            ):
                cap = node.max_running
                bottleneck = node
        if cap is None:
            return 0.0
        waves = bottleneck.queued // cap + 1
        return waves * self._avg_running_ms()

    def submit_handle(
        self,
        handle,
        user: str = "anonymous",
        resource_group=None,
        memory_mb: float = 100.0,
        priority: int = 0,
        on_finish: Optional[Callable[[ConcurrentRun], None]] = None,
    ) -> QueryExecution:
        """Admit a steppable engine query for concurrent execution.

        ``handle`` is a :meth:`repro.execution.engine.PrestoEngine.submit`
        result.  Returns immediately with the cluster-side
        :class:`QueryExecution`; drive :meth:`run_until_idle` (or keep
        submitting) and collect the result from ``handle.result()``.

        ``resource_group`` is a dotted path, a :class:`ResourceGroup`, or
        None for the per-user default queue ``root.<user>``.  If the
        group is at quota the query queues (fair-share dequeue); if the
        queue itself is over capacity or the estimated wait breaches the
        group's SLO, the query is shed with
        :class:`~repro.common.errors.AdmissionRejectedError` carrying a
        retry-after hint — never silently dropped.
        """
        if isinstance(resource_group, ResourceGroup):
            group = resource_group
        else:
            group = self.resource_group(resource_group or user)
        now = self.clock.now_ms()
        # Queue behind earlier arrivals of the same group — direct
        # admission while the group has a backlog would reorder peers.
        must_queue = group.queued > 0 or not group.can_admit(memory_mb)
        if must_queue:
            estimated = self._estimated_wait_ms(group)
            # Queue capacity and SLO are enforced along the whole chain:
            # a parent's limit protects it from the sum of its children.
            over_capacity = any(
                node.max_queued is not None and node.queued >= node.max_queued
                for node in group._chain()
            )
            over_slo = any(
                node.queue_slo_ms is not None and estimated > node.queue_slo_ms
                for node in group._chain()
            )
            if over_capacity or over_slo:
                group.queries_shed += 1
                self.queries_shed += 1
                self._count("cluster_queries_shed_total")
                retry_after = estimated if estimated > 0 else self._avg_running_ms()
                raise AdmissionRejectedError(
                    f"{self.name}: resource group {group.path} "
                    + ("queue full" if over_capacity else "queue over SLO")
                    + f" ({group.queued} queued)",
                    retry_after_ms=retry_after,
                )
        query_id = self._unique_query_id(f"{self.name}-{handle.query_id}")
        execution = QueryExecution(
            query_id,
            splits_total=0,
            submitted_at=now,
            user=user,
            resource_group=group.path,
        )
        self.queries[query_id] = execution
        run = ConcurrentRun(
            handle=handle,
            execution=execution,
            group=group,
            user=user,
            memory_mb=memory_mb,
            priority=priority,
            sequence=next(self._run_sequence),
            on_finish=on_finish,
        )
        self._runs[query_id] = run
        self._count("cluster_queries_total")
        if must_queue:
            run.state = QueryState.QUEUED
            group.enqueue()
            self._queued_runs.append(run)
            self._count("cluster_queries_queued_total")
            self._set_query_gauges()
            self._set_group_gauges(group)
        else:
            self._admit(run)
        return execution

    def submit_engine_handle(
        self, engine, sql: str, **admission
    ) -> tuple[object, QueryExecution]:
        """Plan ``sql`` on ``engine`` and admit its handle; non-blocking.

        The concurrent counterpart of :meth:`submit_engine_query`:
        returns ``(QueryHandle, QueryExecution)`` before any task has
        run.  ``admission`` keywords pass through to
        :meth:`submit_handle`.
        """
        handle = engine.submit(sql)
        execution = self.submit_handle(handle, **admission)
        return handle, execution

    def _admit(self, run: ConcurrentRun) -> None:
        """Grant resources and schedule the first pump after planning."""
        now = self.clock.now_ms()
        execution = run.execution
        run.state = QueryState.RUNNING
        run.admitted_at = now
        run.group.acquire(run.memory_mb)
        self._user_running[run.user] = self._user_running.get(run.user, 0) + 1
        execution.queued_ms = now - execution.submitted_at
        tracer = getattr(run.handle, "trace", None)
        if tracer is not None:
            run.admission_span = tracer.open_span(
                "cluster.admission",
                cluster=self.name,
                group=run.group.path,
                user=run.user,
                queued_ms=execution.queued_ms,
            )
        if self.metrics is not None:
            self.metrics.histogram("cluster_queued_ms", cluster=self.name).observe(
                execution.queued_ms
            )
        # planning_cost_ms's concurrent_queries argument sees the *real*
        # number of in-flight queries (this one included).
        planning = self.coordinator.planning_cost_ms(
            len(
                [
                    w
                    for w in self.workers.values()
                    if w.state is not WorkerState.SHUT_DOWN
                ]
            ),
            self.running_query_count(),
        )
        execution.started_at = now + planning
        self._set_query_gauges()
        self._set_group_gauges(run.group)
        self._at(execution.started_at, lambda: self._pump(run))

    def _pump(self, run: ConcurrentRun) -> None:
        """Advance one query: dispatch its ready tasks as split work.

        Steps the handle through the current stage, turning each executed
        task into a :class:`SplitWork` on the ordinary FIFO/affinity
        scheduling path (so worker crashes requeue concurrent queries'
        splits exactly like legacy ones).  Stops at stage barriers — the
        next stage's tasks are not planned until every dispatched split
        of the current stage has drained through the workers.
        """
        if run.state is not QueryState.RUNNING:
            return
        handle = run.handle
        execution = run.execution
        dispatched = False
        while not handle.done:
            next_stage = handle.peek_stage()
            if (
                run.last_stage is not None
                and next_stage != run.last_stage
                and run.inflight > 0
            ):
                break  # stage barrier: previous stage still in flight
            try:
                step = handle.step()
            except PrestoError:
                self._finish_run(run, failed=True)
                return
            if step is None:
                break
            run.last_stage = step.stage
            run.inflight += 1
            execution.splits_total += 1
            execution.pending.append(
                SplitWork(
                    execution.query_id,
                    step.sim_ms,
                    step.data_key,
                    step.data_bytes,
                )
            )
            dispatched = True
        if handle.done and run.inflight == 0 and not execution.pending:
            self._finish_run(run)
            return
        if dispatched:
            self._schedule_pending()

    def _cancel_splits(self, execution: QueryExecution) -> None:
        """Withdraw a failed query's dispatched-but-unfinished splits."""
        stale = [
            assignment_id
            for assignment_id, (_, owner, _) in self._assignments.items()
            if owner is execution
        ]
        for assignment_id in stale:
            worker, _, _ = self._assignments.pop(assignment_id)
            worker.running -= 1
        execution.pending.clear()
        self._set_slot_gauge()

    def _finish_run(self, run: ConcurrentRun, failed: bool = False) -> None:
        if run.state is not QueryState.RUNNING:
            return
        now = self.clock.now_ms()
        execution = run.execution
        run.state = QueryState.FAILED if failed else QueryState.FINISHED
        if failed:
            self._cancel_splits(execution)
            self._count("cluster_queries_failed_total")
        execution.finished_at = now
        admitted = run.admitted_at if run.admitted_at is not None else now
        execution.running_ms = now - admitted
        run.group.release(run.memory_mb)
        run.group.queries_completed += 1
        self._user_running[run.user] -= 1
        self._completed_runs += 1
        self._completed_running_ms += execution.running_ms
        tracer = getattr(run.handle, "trace", None)
        if tracer is not None and run.admission_span is not None:
            run.admission_span.set(
                running_ms=execution.running_ms, state=run.state.value
            )
            tracer.close_span(run.admission_span)
        if self.metrics is not None:
            self.metrics.histogram("cluster_running_ms", cluster=self.name).observe(
                execution.running_ms
            )
        self._timeline.append(
            {
                "query_id": execution.query_id,
                "user": run.user,
                "group": run.group.path,
                "state": run.state.value,
                "submitted_ms": execution.submitted_at,
                "admitted_ms": run.admitted_at,
                "finished_ms": now,
                "queued_ms": execution.queued_ms,
                "running_ms": execution.running_ms,
            }
        )
        self._set_query_gauges()
        self._set_group_gauges(run.group)
        if run.on_finish is not None:
            run.on_finish(run)
        self._dequeue_next()

    def _dequeue_next(self) -> None:
        """Admit queued queries while capacity lasts (fair-share order).

        Pick order: highest priority first, then the user with the
        fewest queries currently running (fair share), then submission
        order — all deterministic.
        """
        while self._queued_runs:
            candidates = [
                run for run in self._queued_runs if run.group.can_admit(run.memory_mb)
            ]
            if not candidates:
                return
            chosen = min(
                candidates,
                key=lambda run: (
                    -run.priority,
                    self._user_running.get(run.user, 0),
                    run.sequence,
                ),
            )
            self._queued_runs.remove(chosen)
            chosen.group.dequeue()
            self._admit(chosen)

    def evict_queued(self) -> list[ConcurrentRun]:
        """Drop every queued (never-admitted) query, e.g. for a drain.

        The runs never executed a task — no split was dispatched and no
        page published — so a gateway can resubmit their handles to
        another cluster without any double-publish risk.  Returns the
        evicted runs in queue order.
        """
        evicted = list(self._queued_runs)
        self._queued_runs.clear()
        now = self.clock.now_ms()
        for run in evicted:
            run.group.dequeue()
            run.state = QueryState.EVICTED
            run.execution.finished_at = now
            run.execution.queued_ms = now - run.execution.submitted_at
            del self._runs[run.execution.query_id]
            self._count("cluster_queries_evicted_total")
            self._set_group_gauges(run.group)
        self._set_query_gauges()
        return evicted

    # -- cluster timeline -----------------------------------------------------

    def timeline_trace(self) -> QueryTrace:
        """The cluster-wide query timeline on the shared simulated clock.

        Unlike a per-query trace (private clock anchored at 0), these
        spans carry cluster-clock timestamps — overlapping ``cluster
        .query`` spans are the visible proof that more than one query was
        in flight at once.
        """
        trace = QueryTrace()
        root = trace.add_span(
            "cluster.timeline", 0.0, self.clock.now_ms(), cluster=self.name
        )
        for record in sorted(
            self._timeline, key=lambda r: (r["admitted_ms"], r["query_id"])
        ):
            trace.add_span(
                "cluster.query",
                record["admitted_ms"],
                record["finished_ms"],
                parent=root,
                query_id=record["query_id"],
                user=record["user"],
                group=record["group"],
                state=record["state"],
                queued_ms=record["queued_ms"],
                running_ms=record["running_ms"],
            )
        return trace

    def max_concurrent_running(self) -> int:
        """Peak number of concurrently-running served queries."""
        events: list[tuple[float, int]] = []
        for record in self._timeline:
            events.append((record["admitted_ms"], 1))
            events.append((record["finished_ms"], -1))
        events.sort()
        current = peak = 0
        for _, delta in events:
            current += delta
            peak = max(peak, current)
        return peak

    # -- event loop -----------------------------------------------------------------

    def _at(self, time_ms: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._events, (time_ms, next(self._event_sequence), callback))

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Process events until no work remains."""
        processed = 0
        while self._events:
            time_ms, _, callback = heapq.heappop(self._events)
            if time_ms > self.clock.now_ms():
                self.clock.advance(time_ms - self.clock.now_ms())
            callback()
            processed += 1
            if processed > max_events:
                raise ExecutionError("cluster simulation did not converge")

    def _schedule_pending(self) -> None:
        self._assign_splits()
        self._set_slot_gauge()

    def _assign_splits(self) -> None:
        now = self.clock.now_ms()
        for execution in self.queries.values():
            if execution.finished_at is not None or now < execution.started_at:
                continue
            while execution.pending:
                # FIFO: schedule splits in submission order so completion
                # order, cache warm-up, and records match the order work
                # was produced.
                split = execution.pending[0]
                worker = self._pick_worker(now, split)
                if worker is None:
                    return  # no capacity; a completion event will reschedule
                execution.pending.popleft()
                worker.running += 1
                duration = split.duration_ms
                if split.data_key is not None and worker.data_cache is not None:
                    # The worker reads the split's data through its tiered
                    # cache: a hot hit skips the remote read almost
                    # entirely, an SSD hit costs more but still beats
                    # remote, a miss pays full price and warms the tiers.
                    read = worker.data_cache.read(
                        split.data_key, split.data_size_bytes
                    )
                    if read.tier == "hot":
                        duration = duration * self.cache_hit_speedup
                    elif read.tier == "ssd":
                        duration = duration * self.ssd_hit_speedup
                    duration += read.latency_ms
                    if read.hit:
                        worker.cache_hits += 1
                        self._count("cluster_affinity_cache_hits_total")
                assignment_id = next(self._assignment_sequence)
                self._assignments[assignment_id] = (worker, execution, split)
                self._at(
                    now + duration,
                    lambda a=assignment_id: self._on_split_done(a),
                )

    def _pick_worker(self, now_ms: float, split: Optional[SplitWork] = None) -> Optional[Worker]:
        candidates = [
            w
            for w in self.workers.values()
            if w.worker_id not in self.blacklisted_workers and w.schedulable(now_ms)
        ]
        if not candidates:
            return None
        if (
            self.affinity_scheduling
            and split is not None
            and split.data_key is not None
        ):
            # Soft affinity: the consistent-hash ring names the preferred
            # worker; fall through to least-loaded when it has no free
            # slot.  The ring hashes with CRC32 (stable across processes —
            # ``hash()`` would re-route every key on restart) and holds
            # ACTIVE workers only, so draining or dead workers never
            # capture keys.  Unlike the old ``stable_hash % len(workers)``
            # pick, ring membership changes remap only the departed
            # worker's ~1/N key share instead of nearly all keys.
            preferred_id = self.affinity_ring.lookup(split.data_key)
            if preferred_id is not None:
                preferred = self.workers[preferred_id]
                if (
                    preferred.state is WorkerState.ACTIVE
                    and preferred.schedulable(now_ms)
                ):
                    return preferred
        return min(candidates, key=lambda w: w.running / w.slots)

    def _on_split_done(self, assignment_id: int) -> None:
        assignment = self._assignments.pop(assignment_id, None)
        if assignment is None:
            # The worker crashed mid-split; the split was requeued and its
            # re-run's own completion event finishes it.
            return
        worker, execution, _ = assignment
        worker.running -= 1
        worker.completed_splits += 1
        self._count("cluster_splits_completed_total")
        execution.splits_done += 1
        run = self._runs.get(execution.query_id)
        if run is None:
            # Legacy path: all splits were known up front, so exhausting
            # them finishes the query.
            if execution.splits_done == execution.splits_total and not execution.pending:
                execution.finished_at = self.clock.now_ms()
                self._set_query_gauges()
        else:
            # Concurrent path: splits_total grows as stages dispatch, so
            # completion is decided by the pump (handle done + drained).
            run.inflight -= 1
            if run.state is QueryState.RUNNING:
                self._pump(run)
        if worker.state is WorkerState.SHUTTING_DOWN and worker.running == 0:
            visible = (
                worker.shutdown_visible_at is not None
                and self.clock.now_ms() >= worker.shutdown_visible_at
            )
            if visible:
                self._try_finish_shutdown(
                    worker,
                    worker.shutdown_visible_at - worker.shutdown_requested_at,  # type: ignore[operator]
                )
        self._schedule_pending()
