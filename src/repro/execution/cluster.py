"""Cluster control plane: coordinator, workers, scheduling, elasticity.

A discrete-event simulation of one Presto cluster's control plane:

- the **coordinator** admits queries, plans them (cost grows with worker
  count and concurrency — it "could become the bottleneck ... bigger than
  1000 machines, or more than 500 complex queries running concurrently",
  section VIII), and assigns splits to worker execution slots;
- **workers** process split work in parallel slots and support the
  graceful shutdown protocol of section IX: SHUTTING_DOWN → sleep grace
  period → coordinator stops sending tasks → drain active tasks → sleep
  grace period again → shut down;
- **crashes** are the ungraceful counterpart: :meth:`crash_worker` kills
  a worker without draining — its in-flight splits requeue at the front
  of their queries' pending work and re-run on surviving workers, the
  crashed worker is blacklisted from scheduling and from the affinity
  ring, and its data cache is lost;
- **expansion** is a registration: "New workers are automatically added to
  the existing cluster."

Splits are scheduled FIFO (submission order), so completion order, cache
warm-up order, and task records all follow the order work was produced.
Time is fully simulated; `run_until_idle` drives the event loop.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError
from repro.common.hashing import stable_hash
from repro.obs.trace import QueryTrace, activate, current_tracer


class WorkerState(enum.Enum):
    ACTIVE = "active"
    SHUTTING_DOWN = "shutting_down"
    SHUT_DOWN = "shut_down"
    CRASHED = "crashed"


DEFAULT_GRACE_PERIOD_MS = 120_000.0  # shutdown.grace-period: 2 minutes


@dataclass
class SplitWork:
    """One unit of work: occupies one slot for ``duration_ms``.

    ``data_key`` identifies the underlying data (e.g. a file path); with
    affinity scheduling, splits with the same key prefer the same worker,
    whose local data cache then serves repeat reads faster.
    """

    query_id: str
    duration_ms: float
    data_key: Optional[str] = None


@dataclass
class Worker:
    worker_id: str
    slots: int
    state: WorkerState = WorkerState.ACTIVE
    running: int = 0
    completed_splits: int = 0
    shutdown_requested_at: Optional[float] = None
    shutdown_visible_at: Optional[float] = None  # coordinator aware
    shut_down_at: Optional[float] = None
    crashed_at: Optional[float] = None
    # Local data cache (affinity scheduling): keys of split data this
    # worker has read before.
    cached_keys: set = field(default_factory=set)
    cache_hits: int = 0

    def has_capacity(self) -> bool:
        return self.state is WorkerState.ACTIVE and self.running < self.slots

    def schedulable(self, now_ms: float) -> bool:
        """Whether the coordinator will send new tasks to this worker.

        During the first grace period the coordinator has not yet observed
        the shutdown and may still assign tasks.
        """
        if self.state is WorkerState.ACTIVE:
            return self.running < self.slots
        if self.state is WorkerState.SHUTTING_DOWN:
            visible = self.shutdown_visible_at is not None and now_ms >= self.shutdown_visible_at
            return not visible and self.running < self.slots
        return False


@dataclass
class QueryExecution:
    query_id: str
    splits_total: int
    splits_done: int = 0
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: Optional[float] = None
    # FIFO: splits schedule in submission order (popleft); crash-requeued
    # splits go back to the front so recovered work runs first.
    pending: deque = field(default_factory=deque)
    splits_requeued: int = 0

    @property
    def latency_ms(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


@dataclass
class CoordinatorModel:
    """The coordinator's capacity model.

    Planning and tracking costs grow superlinearly with cluster size and
    query concurrency, reproducing the section VIII bottleneck.
    """

    planning_base_ms: float = 50.0
    worker_tracking_factor: float = 1000.0  # degradation knee (machines)
    concurrency_factor: float = 500.0  # degradation knee (queries)

    def planning_cost_ms(self, workers: int, concurrent_queries: int) -> float:
        worker_load = (workers / self.worker_tracking_factor) ** 2
        concurrency_load = (concurrent_queries / self.concurrency_factor) ** 2
        return self.planning_base_ms * (1.0 + 4.0 * worker_load + 8.0 * concurrency_load)


class PrestoClusterSim:
    """One simulated Presto cluster (one coordinator, many workers)."""

    def __init__(
        self,
        workers: int = 10,
        slots_per_worker: int = 4,
        clock: Optional[SimulatedClock] = None,
        coordinator: Optional[CoordinatorModel] = None,
        name: str = "cluster",
        affinity_scheduling: bool = False,
        cache_hit_speedup: float = 0.3,
        metrics=None,
    ) -> None:
        self.name = name
        # Optional observability: per-cluster counters (queries admitted,
        # splits completed/requeued, affinity cache hits) and an
        # active-worker gauge, labeled ``cluster=<name>``.
        self.metrics = metrics
        self.clock = clock or SimulatedClock()
        self.coordinator = coordinator or CoordinatorModel()
        self.slots_per_worker = slots_per_worker
        # Affinity scheduling (section VII, RaptorX): route splits for the
        # same data to the same worker so its local cache gets hits.
        self.affinity_scheduling = affinity_scheduling
        self.cache_hit_speedup = cache_hit_speedup
        self.workers: dict[str, Worker] = {}
        self._worker_ids = itertools.count()
        self._query_ids = itertools.count()
        self.queries: dict[str, QueryExecution] = {}
        # Workers the coordinator will never schedule on again (crashed).
        self.blacklisted_workers: set[str] = set()
        # In-flight split assignments: id -> (worker, execution, split).
        # Completion events resolve through this table so a crash can
        # cancel them and requeue the splits.
        self._assignments: dict[int, tuple[Worker, QueryExecution, SplitWork]] = {}
        self._assignment_sequence = itertools.count()
        # Event heap: (time_ms, sequence, callback)
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._event_sequence = itertools.count()
        for _ in range(workers):
            self.add_worker()

    # -- observability --------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, cluster=self.name).inc(amount)

    def _update_worker_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("cluster_active_workers", cluster=self.name).set(
                self.active_worker_count()
            )

    # -- elasticity -----------------------------------------------------------

    def add_worker(self, slots: Optional[int] = None) -> Worker:
        """Expansion: a new worker registers and immediately takes tasks."""
        worker = Worker(f"{self.name}-worker-{next(self._worker_ids)}", slots or self.slots_per_worker)
        self.workers[worker.worker_id] = worker
        self._update_worker_gauge()
        self._schedule_pending()
        return worker

    def request_graceful_shutdown(
        self, worker_id: str, grace_period_ms: float = DEFAULT_GRACE_PERIOD_MS
    ) -> None:
        """Section IX: worker enters SHUTTING_DOWN and drains."""
        worker = self.workers[worker_id]
        if worker.state is not WorkerState.ACTIVE:
            return
        now = self.clock.now_ms()
        worker.state = WorkerState.SHUTTING_DOWN
        worker.shutdown_requested_at = now
        self._update_worker_gauge()
        # After sleeping the grace period the coordinator is aware and
        # stops sending tasks to the worker.
        worker.shutdown_visible_at = now + grace_period_ms
        self._at(now + grace_period_ms, lambda: self._try_finish_shutdown(worker, grace_period_ms))

    def _try_finish_shutdown(self, worker: Worker, grace_period_ms: float) -> None:
        if worker.state is not WorkerState.SHUTTING_DOWN:
            return
        if worker.running > 0:
            # Still draining; check again when a split completes (events
            # re-invoke this via _on_split_done).
            return
        # All tasks complete: sleep the grace period again so the
        # coordinator sees completion, then shut down.
        shutdown_time = self.clock.now_ms() + grace_period_ms

        def finish() -> None:
            worker.state = WorkerState.SHUT_DOWN
            worker.shut_down_at = self.clock.now_ms()
            self._update_worker_gauge()

        self._at(shutdown_time, finish)

    def crash_worker(self, worker_id: str) -> list[SplitWork]:
        """Kill a worker without draining (the ungraceful path).

        Every in-flight split on the worker requeues at the *front* of its
        query's pending work and re-runs on a surviving worker; the crashed
        worker is blacklisted (never scheduled again, out of the affinity
        ring) and its data cache is gone.  Works in any state — a crash
        during SHUTTING_DOWN simply preempts the drain.  Returns the
        requeued splits.
        """
        worker = self.workers[worker_id]
        if worker.state in (WorkerState.SHUT_DOWN, WorkerState.CRASHED):
            return []
        worker.state = WorkerState.CRASHED
        worker.crashed_at = self.clock.now_ms()
        self._count("cluster_worker_crashes_total")
        self._update_worker_gauge()
        self.blacklisted_workers.add(worker_id)
        worker.cached_keys.clear()
        lost = [
            (assignment_id, execution, split)
            for assignment_id, (w, execution, split) in self._assignments.items()
            if w is worker
        ]
        requeued = []
        # Reverse order + appendleft keeps the splits' relative order at
        # the front of each query's deque.
        for assignment_id, execution, split in reversed(lost):
            del self._assignments[assignment_id]
            execution.pending.appendleft(split)
            execution.splits_requeued += 1
            self._count("cluster_splits_requeued_total")
            requeued.append(split)
        requeued.reverse()
        worker.running = 0
        self._schedule_pending()
        return requeued

    def crash_worker_at(self, time_ms: float, worker_id: str) -> None:
        """Schedule a crash event at an absolute simulated time."""
        self._at(time_ms, lambda: self.crash_worker(worker_id))

    def active_worker_count(self) -> int:
        return sum(1 for w in self.workers.values() if w.state is WorkerState.ACTIVE)

    # -- query admission ----------------------------------------------------------

    def submit_query(
        self,
        split_durations_ms: list[float],
        query_id: Optional[str] = None,
        split_keys: Optional[list[str]] = None,
    ) -> QueryExecution:
        """Admit a query whose work is the given split durations.

        ``split_keys`` (optional, parallel to the durations) name the data
        each split reads, enabling affinity scheduling and cache hits.
        """
        if not split_durations_ms:
            raise ExecutionError("query needs at least one split")
        if split_keys is not None and len(split_keys) != len(split_durations_ms):
            raise ExecutionError("split_keys length must match split durations")
        query_id = query_id or f"{self.name}-q{next(self._query_ids)}"
        # Engine-assigned ids can repeat across engines (or gateway
        # failovers); keep cluster-side records unambiguous.
        if query_id in self.queries:
            base = query_id
            for retry in itertools.count(1):
                query_id = f"{base}-r{retry}"
                if query_id not in self.queries:
                    break
        now = self.clock.now_ms()
        execution = QueryExecution(
            query_id, splits_total=len(split_durations_ms), submitted_at=now
        )
        self.queries[query_id] = execution
        self._count("cluster_queries_total")
        planning = self.coordinator.planning_cost_ms(
            len([w for w in self.workers.values() if w.state is not WorkerState.SHUT_DOWN]),
            self.running_query_count() + 1,
        )
        execution.started_at = now + planning
        execution.pending = deque(
            SplitWork(query_id, d, split_keys[i] if split_keys else None)
            for i, d in enumerate(split_durations_ms)
        )
        self._at(execution.started_at, self._schedule_pending)
        return execution

    def submit_tasks(
        self, tasks: list[SplitWork], query_id: Optional[str] = None
    ) -> QueryExecution:
        """Admit a query whose work is the given tasks.

        Generalizes :meth:`submit_query` to pre-built :class:`SplitWork`
        items — the shape staged execution produces (one per task, with
        the task's simulated duration and its affinity data key).
        """
        if not tasks:
            raise ExecutionError("query needs at least one task")
        return self.submit_query(
            [t.duration_ms for t in tasks],
            query_id=query_id,
            split_keys=[t.data_key for t in tasks]
            if any(t.data_key is not None for t in tasks)
            else None,
        )

    def submit_engine_query(self, engine, sql: str) -> tuple:
        """Run ``sql`` on ``engine`` staged, then schedule its real tasks.

        The bridge from query execution to the cluster simulation: the
        engine's StageScheduler records one task record per executed task
        (stage, split, rows, simulated cost); those records — not
        synthetic durations — become the cluster's work.  Returns
        ``(QueryResult, QueryExecution)``.
        """
        # Run under a span so the cluster hop shows up in the query's
        # trace: an existing active trace (a gateway submission) is
        # reused; a standalone submission to a tracing engine gets its
        # own tree with cluster admission at the root.
        tracer = current_tracer()
        if tracer is None and getattr(engine, "tracing", False):
            tracer = QueryTrace()
        if tracer is not None:
            with activate(tracer), tracer.span("cluster.admission", cluster=self.name):
                result = engine.execute(sql)
        else:
            result = engine.execute(sql)
        # Thread the engine's query id through (namespaced by cluster) so
        # cluster-side records (QueryExecution, SplitWork) join back to
        # the engine query that produced them.
        query_id = (
            f"{self.name}-{result.stats.query_id}" if result.stats.query_id else None
        )
        records = result.stats.task_records
        if records:
            tasks = [
                SplitWork(
                    query_id=query_id or "",
                    duration_ms=record["sim_ms"],
                    data_key=record["data_key"],
                )
                for record in records
            ]
        else:
            # Metadata statements and direct execution produce no task
            # records; account a single coordinator-side task.
            tasks = [SplitWork(query_id=query_id or "", duration_ms=1.0)]
        execution = self.submit_tasks(tasks, query_id=query_id)
        return result, execution

    def running_query_count(self) -> int:
        return sum(1 for q in self.queries.values() if q.finished_at is None)

    # -- event loop -----------------------------------------------------------------

    def _at(self, time_ms: float, callback: Callable[[], None]) -> None:
        heapq.heappush(self._events, (time_ms, next(self._event_sequence), callback))

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Process events until no work remains."""
        processed = 0
        while self._events:
            time_ms, _, callback = heapq.heappop(self._events)
            if time_ms > self.clock.now_ms():
                self.clock.advance(time_ms - self.clock.now_ms())
            callback()
            processed += 1
            if processed > max_events:
                raise ExecutionError("cluster simulation did not converge")

    def _schedule_pending(self) -> None:
        now = self.clock.now_ms()
        for execution in self.queries.values():
            if execution.finished_at is not None or now < execution.started_at:
                continue
            while execution.pending:
                # FIFO: schedule splits in submission order so completion
                # order, cache warm-up, and records match the order work
                # was produced.
                split = execution.pending[0]
                worker = self._pick_worker(now, split)
                if worker is None:
                    return  # no capacity; a completion event will reschedule
                execution.pending.popleft()
                worker.running += 1
                duration = split.duration_ms
                if split.data_key is not None:
                    if split.data_key in worker.cached_keys:
                        worker.cache_hits += 1
                        self._count("cluster_affinity_cache_hits_total")
                        duration *= self.cache_hit_speedup
                    else:
                        worker.cached_keys.add(split.data_key)
                assignment_id = next(self._assignment_sequence)
                self._assignments[assignment_id] = (worker, execution, split)
                self._at(
                    now + duration,
                    lambda a=assignment_id: self._on_split_done(a),
                )

    def _pick_worker(self, now_ms: float, split: Optional[SplitWork] = None) -> Optional[Worker]:
        candidates = [
            w
            for w in self.workers.values()
            if w.worker_id not in self.blacklisted_workers and w.schedulable(now_ms)
        ]
        if not candidates:
            return None
        if (
            self.affinity_scheduling
            and split is not None
            and split.data_key is not None
        ):
            # Soft affinity: deterministic preferred worker by key hash;
            # fall through to least-loaded when it has no free slot.  The
            # hash must be stable across processes (``hash()`` of a str
            # changes with PYTHONHASHSEED, which would re-route every key
            # on restart and empty the affinity caches).  The ring holds
            # ACTIVE workers only — a draining or dead worker in the ring
            # would permanently capture every key hashing to it, so those
            # keys would fall through to least-loaded forever and their
            # caches could never re-warm.
            ring = sorted(
                worker_id
                for worker_id, worker in self.workers.items()
                if worker.state is WorkerState.ACTIVE
            )
            if ring:
                preferred = self.workers[ring[stable_hash(split.data_key) % len(ring)]]
                if preferred.schedulable(now_ms):
                    return preferred
        return min(candidates, key=lambda w: w.running / w.slots)

    def _on_split_done(self, assignment_id: int) -> None:
        assignment = self._assignments.pop(assignment_id, None)
        if assignment is None:
            # The worker crashed mid-split; the split was requeued and its
            # re-run's own completion event finishes it.
            return
        worker, execution, _ = assignment
        worker.running -= 1
        worker.completed_splits += 1
        self._count("cluster_splits_completed_total")
        execution.splits_done += 1
        if execution.splits_done == execution.splits_total and not execution.pending:
            execution.finished_at = self.clock.now_ms()
        if worker.state is WorkerState.SHUTTING_DOWN and worker.running == 0:
            visible = (
                worker.shutdown_visible_at is not None
                and self.clock.now_ms() >= worker.shutdown_visible_at
            )
            if visible:
                self._try_finish_shutdown(
                    worker,
                    worker.shutdown_visible_at - worker.shutdown_requested_at,  # type: ignore[operator]
                )
        self._schedule_pending()
