"""Query execution: operators, driver, coordinator/worker control plane.

Section III: a plan is divided into fragments; "each running plan fragment
is called a stage ... Stage consists of tasks, which are processing one or
many splits of input data."  In this single-process reproduction queries
run *staged* by default: :class:`repro.execution.scheduler.StageScheduler`
expands each fragment into tasks (one per connector split for leaf
stages) and moves pages between stages over
:class:`repro.execution.exchange.ExchangeBuffer` objects, while every
task's operators execute as a pull-based pipeline of vectorized operators
(:mod:`repro.execution.driver`).  The control plane — coordinator,
workers, task scheduling, graceful shutdown — is modeled explicitly in
:mod:`repro.execution.cluster` for the federation and elasticity
experiments, and consumes the task records staged execution produces.
"""

from repro.execution.context import ExecutionContext, QueryStats
from repro.execution.driver import execute_plan
from repro.execution.engine import PrestoEngine, QueryResult
from repro.execution.exchange import ExchangeBuffer
from repro.execution.scheduler import StageScheduler

__all__ = [
    "ExecutionContext",
    "QueryStats",
    "execute_plan",
    "PrestoEngine",
    "QueryResult",
    "ExchangeBuffer",
    "StageScheduler",
]
