"""Query execution: operators, driver, coordinator/worker control plane.

Section III: a plan is divided into fragments; "each running plan fragment
is called a stage ... Stage consists of tasks, which are processing one or
many splits of input data."  In this single-process reproduction the data
plane executes as a pull-based pipeline of vectorized operators
(:mod:`repro.execution.driver`), while the control plane — coordinator,
workers, task scheduling, graceful shutdown — is modeled explicitly in
:mod:`repro.execution.cluster` for the federation and elasticity
experiments.
"""

from repro.execution.context import ExecutionContext, QueryStats
from repro.execution.driver import execute_plan
from repro.execution.engine import PrestoEngine, QueryResult

__all__ = [
    "ExecutionContext",
    "QueryStats",
    "execute_plan",
    "PrestoEngine",
    "QueryResult",
]
