"""Hash aggregation operator.

Supports grouped and global aggregation, DISTINCT aggregates, and the
"merge" evaluation mode used after aggregation pushdown: when a connector
returns pre-aggregated rows (figure 2), the engine's final aggregation
combines them with merge semantics rather than re-accumulating raw rows.

The hot path is vectorized (section III): group keys factorize into dense
int64 codes per page (:mod:`repro.execution.kernels`) and count/sum/min/
max/avg accumulate with array kernels.  DISTINCT aggregates, unsupported
key or argument block kinds, and exotic aggregates drop to the retained
row-at-a-time reference (:func:`execute_aggregation_rows` is the original
implementation, kept verbatim as the differential-test oracle).
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.core.blocks import PrimitiveBlock, block_from_values
from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution import kernels
from repro.execution.operators.filter_project import bindings_for
from repro.planner.plan import AggregationNode, AggregationStep


def execute_aggregation(
    node: AggregationNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    implementations = [
        ctx.registry.aggregate_for(a.function_handle) for a in node.aggregations
    ]
    source_outputs = node.source.outputs
    key_names = [k.name for k in node.group_keys]
    agg_argument_names = [[a.name for a in agg.arguments] for agg in node.aggregations]
    merge_mode = node.step == "FINAL"

    index = kernels.GroupIndex()
    accumulators = [
        kernels.make_accumulator(aggregation, impl, merge_mode)
        for aggregation, impl in zip(node.aggregations, implementations)
    ]

    for page in source:
        count = page.position_count
        if count == 0:
            continue
        bindings = bindings_for(page, source_outputs)
        key_blocks = [bindings[name].loaded() for name in key_names]
        argument_blocks = [[bindings[name] for name in names] for names in agg_argument_names]

        if key_names:
            factorized = kernels.factorize_keys(key_blocks)
            if factorized is None:
                group_ids = index.map_rows(key_blocks, count)
                keys_vectorized = False
            else:
                codes, uniques = factorized
                group_ids = index.map_codes(codes, uniques)
                keys_vectorized = True
        else:
            index.ensure_group(())
            group_ids = np.zeros(count, dtype=np.int64)
            keys_vectorized = True

        page_vectorized = keys_vectorized
        group_count = len(index)
        for i, accumulator in enumerate(accumulators):
            try:
                accumulator.add_page(group_count, group_ids, argument_blocks[i], count)
            except kernels.FallbackNeeded:
                # Spill this aggregate's array state into the generic
                # per-group state machine and replay the page row-wise.
                accumulator = kernels.GenericAccumulator(
                    implementations[i],
                    node.aggregations[i].distinct,
                    merge_mode,
                    initial_states=accumulator.to_states(),
                )
                accumulators[i] = accumulator
                accumulator.add_page(group_count, group_ids, argument_blocks[i], count)
            if not accumulator.vectorized:
                page_vectorized = False
        if page_vectorized:
            ctx.stats.rows_processed_vectorized += count
        else:
            ctx.stats.rows_processed_fallback += count

    if not index.keys and not node.group_keys:
        # Global aggregation over empty input still yields one row.
        index.ensure_group(())

    group_count = len(index)
    output_types = [v.type for v in node.outputs]
    columns: list[list[Any]] = [
        [key[channel] for key in index.keys] for channel in range(len(key_names))
    ]
    if node.step == AggregationStep.PARTIAL:
        # Partial aggregations (staged execution) emit raw accumulator
        # states: the FINAL stage beyond the exchange merges them.  States
        # that are not scalars (avg's (sum, count), approx_distinct's set)
        # travel in object-storage blocks under the declared output type.
        for accumulator in accumulators:
            accumulator.finalize_all(group_count)  # grow to full group count
            columns.append(accumulator.to_states())
        yield _partial_page(output_types, len(key_names), columns, group_count)
        return
    for accumulator in accumulators:
        columns.append(accumulator.finalize_all(group_count))
    yield Page.from_columns(output_types, columns)


_SCALAR_STATE_TYPES = (int, float, str, bool, bytes)


def _partial_page(output_types, key_count, columns, group_count) -> Page:
    """Page of per-group partial states, tolerating non-scalar states."""
    blocks = []
    for channel, (presto_type, values) in enumerate(zip(output_types, columns)):
        scalar = channel < key_count or all(
            v is None or isinstance(v, _SCALAR_STATE_TYPES) for v in values
        )
        if scalar:
            try:
                blocks.append(block_from_values(presto_type, values))
                continue
            except Exception:
                pass
        storage = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            storage[i] = v
        blocks.append(PrimitiveBlock(presto_type, storage))
    return Page(blocks, group_count)


def execute_aggregation_rows(
    node: AggregationNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    """Row-at-a-time reference implementation (the pre-kernel hot path).

    Retained as the semantics oracle for the differential tests and the
    baseline for ``benchmarks/bench_operator_kernels.py``.
    """
    implementations = [
        ctx.registry.aggregate_for(a.function_handle) for a in node.aggregations
    ]
    source_outputs = node.source.outputs
    key_names = [k.name for k in node.group_keys]
    agg_argument_names = [[a.name for a in agg.arguments] for agg in node.aggregations]
    distinct_flags = [agg.distinct for agg in node.aggregations]
    merge_mode = node.step == "FINAL"

    groups: dict[tuple, list[Any]] = {}
    distinct_seen: dict[tuple, list[set]] = {}
    group_order: list[tuple] = []

    def new_states() -> list[Any]:
        return [impl.create_state() for impl in implementations]

    for page in source:
        if page.position_count == 0:
            continue
        bindings = bindings_for(page, source_outputs)
        key_blocks = [bindings[name].loaded() for name in key_names]
        argument_blocks = [
            [bindings[name].loaded() for name in names] for names in agg_argument_names
        ]
        for position in range(page.position_count):
            key = tuple(
                kernels.canonical_key(block.get(position)) for block in key_blocks
            )
            states = groups.get(key)
            if states is None:
                states = new_states()
                groups[key] = states
                group_order.append(key)
                if any(distinct_flags):
                    distinct_seen[key] = [set() for _ in implementations]
            for index, impl in enumerate(implementations):
                arguments = tuple(
                    block.get(position) for block in argument_blocks[index]
                )
                if distinct_flags[index]:
                    if arguments in distinct_seen[key][index]:
                        continue
                    distinct_seen[key][index].add(arguments)
                if merge_mode:
                    states[index] = impl.merge(states[index], arguments[0])
                else:
                    states[index] = impl.add_input(states[index], arguments)

    if not groups and not node.group_keys:
        # Global aggregation over empty input still yields one row.
        groups[()] = new_states()
        group_order.append(())

    output_types = [v.type for v in node.outputs]
    if node.step == AggregationStep.PARTIAL:
        key_count = len(key_names)
        columns = [
            [key[channel] for key in group_order] for channel in range(key_count)
        ]
        for index in range(len(implementations)):
            columns.append([groups[key][index] for key in group_order])
        yield _partial_page(output_types, key_count, columns, len(group_order))
        return
    rows = []
    for key in group_order:
        states = groups[key]
        finals = [impl.finalize(state) for impl, state in zip(implementations, states)]
        rows.append(tuple(key) + tuple(finals))
    yield Page.from_rows(output_types, rows)
