"""Hash aggregation operator.

Supports grouped and global aggregation, DISTINCT aggregates, and the
"merge" evaluation mode used after aggregation pushdown: when a connector
returns pre-aggregated rows (figure 2), the engine's final aggregation
combines them with merge semantics rather than re-accumulating raw rows.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution.operators.filter_project import bindings_for
from repro.planner.plan import AggregationNode


def execute_aggregation(
    node: AggregationNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    implementations = [
        ctx.registry.aggregate_for(a.function_handle) for a in node.aggregations
    ]
    source_outputs = node.source.outputs
    key_names = [k.name for k in node.group_keys]
    agg_argument_names = [[a.name for a in agg.arguments] for agg in node.aggregations]
    distinct_flags = [agg.distinct for agg in node.aggregations]
    merge_mode = node.step == "FINAL"

    groups: dict[tuple, list[Any]] = {}
    distinct_seen: dict[tuple, list[set]] = {}
    group_order: list[tuple] = []

    def new_states() -> list[Any]:
        return [impl.create_state() for impl in implementations]

    for page in source:
        if page.position_count == 0:
            continue
        bindings = bindings_for(page, source_outputs)
        key_blocks = [bindings[name].loaded() for name in key_names]
        argument_blocks = [
            [bindings[name].loaded() for name in names] for names in agg_argument_names
        ]
        for position in range(page.position_count):
            key = tuple(block.get(position) for block in key_blocks)
            states = groups.get(key)
            if states is None:
                states = new_states()
                groups[key] = states
                group_order.append(key)
                if any(distinct_flags):
                    distinct_seen[key] = [set() for _ in implementations]
            for index, impl in enumerate(implementations):
                arguments = tuple(
                    block.get(position) for block in argument_blocks[index]
                )
                if distinct_flags[index]:
                    if arguments in distinct_seen[key][index]:
                        continue
                    distinct_seen[key][index].add(arguments)
                if merge_mode:
                    states[index] = impl.merge(states[index], arguments[0])
                else:
                    states[index] = impl.add_input(states[index], arguments)

    if not groups and not node.group_keys:
        # Global aggregation over empty input still yields one row.
        groups[()] = new_states()
        group_order.append(())

    output_types = [v.type for v in node.outputs]
    rows = []
    for key in group_order:
        states = groups[key]
        finals = [impl.finalize(state) for impl, state in zip(implementations, states)]
        rows.append(tuple(key) + tuple(finals))
    yield Page.from_rows(output_types, rows)
