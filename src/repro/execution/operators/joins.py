"""Hash join, nested-loop (cross) join, and the geospatial join.

The hash join builds on the right side and probes with the left, matching
Presto's default.  Build-side size is charged against the context's memory
limit; exceeding it raises ``InsufficientResourcesError`` — the failure
mode users hit with big joins (section XII.C).

The equi-join probe is vectorized (section III): the build side stays in
columnar blocks, keys factorize into dense codes, and each probe page
expands into ``(probe_positions, build_positions)`` index arrays that
construct the output with ``Block.take`` instead of ``Page.from_rows``.
Key kinds the factorizer does not support fall back to the retained
row-at-a-time reference, :func:`_hash_join_rows` — the original
implementation, kept verbatim as the differential-test oracle.

The spatial join implements both execution strategies of section VI: the
brute-force path evaluates ``st_contains`` for every (point, polygon) pair,
while the indexed path builds a QuadTree over the polygons on the fly
(``build_geo_index``) and only tests candidate polygons.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from repro.common.errors import ExecutionError, InsufficientResourcesError
from repro.core.page import Page, concat_pages
from repro.execution import kernels
from repro.execution.context import ExecutionContext
from repro.execution.operators.filter_project import bindings_for
from repro.planner.plan import JoinNode, SpatialJoinNode


def execute_join(
    node: JoinNode,
    ctx: ExecutionContext,
    left_source: Iterator[Page],
    right_source: Iterator[Page],
) -> Iterator[Page]:
    if node.join_type == "right":
        # Execute as a left join with sides swapped, then restore column order.
        swapped = JoinNode(
            join_type="left",
            left=node.right,
            right=node.left,
            criteria=tuple((r, l) for l, r in node.criteria),
            filter=node.filter,
            distribution=node.distribution,
        )
        left_width = len(node.left.outputs)
        right_width = len(node.right.outputs)
        for page in execute_join(swapped, ctx, right_source, left_source):
            reorder = list(range(right_width, right_width + left_width)) + list(
                range(right_width)
            )
            yield page.select_channels(reorder)
        return

    if node.join_type == "cross" or not node.criteria:
        yield from _nested_loop_join(node, ctx, left_source, right_source)
        return
    yield from _hash_join(node, ctx, left_source, right_source)


def _build_rows(
    ctx: ExecutionContext, source: Iterator[Page], width: int
) -> list[tuple]:
    rows: list[tuple] = []
    for page in source:
        page = page.loaded()
        rows.extend(page.rows())
        if len(rows) > ctx.max_build_rows:
            raise InsufficientResourcesError(
                "Insufficient Resources: join build side exceeds memory limit "
                f"({ctx.max_build_rows} rows)"
            )
    ctx.stats.peak_build_rows = max(ctx.stats.peak_build_rows, len(rows))
    return rows


def _build_pages(ctx: ExecutionContext, source: Iterator[Page]) -> list[Page]:
    """Load the build side as pages (blocks, not tuples), memory-checked."""
    pages: list[Page] = []
    total = 0
    for page in source:
        page = page.loaded()
        total += page.position_count
        if total > ctx.max_build_rows:
            raise InsufficientResourcesError(
                "Insufficient Resources: join build side exceeds memory limit "
                f"({ctx.max_build_rows} rows)"
            )
        pages.append(page)
    ctx.stats.peak_build_rows = max(ctx.stats.peak_build_rows, total)
    return pages


def _hash_join(
    node: JoinNode,
    ctx: ExecutionContext,
    left_source: Iterator[Page],
    right_source: Iterator[Page],
) -> Iterator[Page]:
    right_outputs = node.right.outputs
    right_key_indexes = [
        [v.name for v in right_outputs].index(r.name) for _, r in node.criteria
    ]
    left_outputs = node.left.outputs
    left_key_indexes = [
        [v.name for v in left_outputs].index(l.name) for l, _ in node.criteria
    ]

    pages = _build_pages(ctx, right_source)
    right_types = [v.type for v in right_outputs]
    build_page = concat_pages(right_types, pages)

    index = kernels.build_join_index(
        [build_page.block(i) for i in right_key_indexes]
    )
    if index is None:
        # Unsupported key kind (nested types, mixed object values): the
        # original row-at-a-time join is the reference fallback.
        yield from _hash_join_rows(node, ctx, left_source, iter(pages))
        return

    evaluator = ctx.evaluator
    join_filter = node.filter
    is_left_join = node.join_type == "left"
    left_width = len(left_outputs)
    right_width = len(right_outputs)
    build_rows_cache: Optional[list[tuple]] = None
    tuple_table: Optional[dict[tuple, np.ndarray]] = None

    for page in left_source:
        count = page.position_count
        try:
            codes = (
                index.probe_codes(
                    [page.block(i).loaded() for i in left_key_indexes], count
                )
                if count
                else kernels.EMPTY_POSITIONS
            )
        except kernels.FallbackNeeded:
            # Probe values incomparable with the build side's (e.g. mixed
            # object types): row-at-a-time probe against a key-tuple table
            # built lazily on first need.
            if tuple_table is None:
                tuple_table = _tuple_table(build_page, right_key_indexes)
            if build_rows_cache is None:
                build_rows_cache = build_page.to_rows()
            ctx.stats.rows_processed_fallback += count
            yield _probe_page_rows(
                node, evaluator, page, left_key_indexes, tuple_table, build_rows_cache
            )
            continue
        ctx.stats.rows_processed_vectorized += count
        probe_positions, build_positions = index.expand(codes)

        if join_filter is not None and len(probe_positions):
            bindings = {}
            for i, variable in enumerate(left_outputs):
                bindings[variable.name] = page.block(i).take(probe_positions)
            for i, variable in enumerate(right_outputs):
                bindings[variable.name] = build_page.block(i).take(build_positions)
            mask = evaluator.filter_mask(join_filter, bindings, len(probe_positions))
            probe_positions = probe_positions[mask]
            build_positions = build_positions[mask]

        if is_left_join:
            matched = np.zeros(count, dtype=bool)
            matched[probe_positions] = True
            unmatched = np.flatnonzero(~matched)
            if len(unmatched):
                probe_positions = np.concatenate([probe_positions, unmatched])
                build_positions = np.concatenate(
                    [build_positions, np.full(len(unmatched), -1, dtype=np.int64)]
                )
                # Stable sort interleaves the null-padded rows back into
                # probe order (a probe row is matched xor padded).
                reorder = np.argsort(probe_positions, kind="stable")
                probe_positions = probe_positions[reorder]
                build_positions = build_positions[reorder]

        blocks = [page.block(i).take(probe_positions) for i in range(left_width)]
        null_pad = build_positions < 0
        if null_pad.any():
            blocks.extend(
                kernels.take_nullable(build_page.block(i), build_positions, null_pad)
                for i in range(right_width)
            )
        else:
            blocks.extend(
                build_page.block(i).take(build_positions) for i in range(right_width)
            )
        yield Page(blocks, len(probe_positions))


def _tuple_table(build_page: Page, key_indexes: list[int]) -> dict[tuple, np.ndarray]:
    """Key-tuple -> build positions, for the row-at-a-time probe fallback.

    Only built when a probe page's values cannot be compared against the
    build side vectorized; ``factorize_keys`` succeeds whenever
    ``build_join_index`` did, since both share the column factorizer.
    """
    table: dict[tuple, np.ndarray] = {}
    if not build_page.position_count:
        return table
    factorized = kernels.factorize_keys(
        [build_page.block(i) for i in key_indexes]
    )
    assert factorized is not None
    codes, uniques = factorized
    by_code = kernels.positions_by_code(codes, len(uniques))
    for code, key in enumerate(uniques):
        if any(component is None for component in key):
            continue  # SQL: null keys never match
        table[key] = by_code[code]
    return table


def _probe_page_rows(
    node: JoinNode,
    evaluator,
    page: Page,
    left_key_indexes: list[int],
    table: dict[tuple, np.ndarray],
    build_rows: list[tuple],
) -> Page:
    """Row-at-a-time probe of one page against the vectorized build table."""
    page = page.loaded()
    output_types = [v.type for v in node.outputs]
    all_outputs = node.outputs
    join_filter = node.filter
    is_left_join = node.join_type == "left"
    right_null_row = (None,) * len(node.right.outputs)
    result_rows: list[tuple] = []
    for probe_row in page.rows():
        key = tuple(kernels.canonical_key(probe_row[i]) for i in left_key_indexes)
        if any(k is None for k in key):
            matches: Any = ()
        else:
            matches = table.get(key, ())
        matched = False
        for build_position in matches:
            combined = probe_row + build_rows[int(build_position)]
            if join_filter is not None and not _filter_row(
                evaluator, join_filter, all_outputs, combined
            ):
                continue
            matched = True
            result_rows.append(combined)
        if is_left_join and not matched:
            result_rows.append(probe_row + right_null_row)
    return Page.from_rows(output_types, result_rows)


def _hash_join_rows(
    node: JoinNode,
    ctx: ExecutionContext,
    left_source: Iterator[Page],
    right_source: Iterator[Page],
) -> Iterator[Page]:
    """Row-at-a-time reference join (the pre-kernel hot path).

    Retained as the semantics oracle for the differential tests, the
    baseline for ``benchmarks/bench_operator_kernels.py``, and the
    fallback when build keys cannot be factorized.
    """
    right_outputs = node.right.outputs
    right_key_indexes = [
        [v.name for v in right_outputs].index(r.name) for _, r in node.criteria
    ]
    left_outputs = node.left.outputs
    left_key_indexes = [
        [v.name for v in left_outputs].index(l.name) for l, _ in node.criteria
    ]
    output_types = [v.type for v in node.outputs]

    build_rows = _build_rows(ctx, right_source, len(right_outputs))
    table: dict[tuple, list[tuple]] = {}
    for row in build_rows:
        key = tuple(kernels.canonical_key(row[i]) for i in right_key_indexes)
        if any(k is None for k in key):
            continue  # SQL: NULL keys (and canonicalized NaN) never match
        table.setdefault(key, []).append(row)

    evaluator = ctx.evaluator
    join_filter = node.filter
    all_outputs = node.outputs
    is_left_join = node.join_type == "left"
    right_null_row = (None,) * len(right_outputs)

    for page in left_source:
        page = page.loaded()
        result_rows: list[tuple] = []
        for probe_row in page.rows():
            key = tuple(
                kernels.canonical_key(probe_row[i]) for i in left_key_indexes
            )
            matches = [] if any(k is None for k in key) else table.get(key, [])
            matched = False
            for build_row in matches:
                combined = probe_row + build_row
                if join_filter is not None and not _filter_row(
                    evaluator, join_filter, all_outputs, combined
                ):
                    continue
                matched = True
                result_rows.append(combined)
            if is_left_join and not matched:
                result_rows.append(probe_row + right_null_row)
        yield Page.from_rows(output_types, result_rows)


def _nested_loop_join(
    node: JoinNode,
    ctx: ExecutionContext,
    left_source: Iterator[Page],
    right_source: Iterator[Page],
) -> Iterator[Page]:
    if node.join_type not in ("cross", "inner", "left"):
        raise ExecutionError(f"unsupported non-equi join type {node.join_type}")
    right_rows = _build_rows(ctx, right_source, len(node.right.outputs))
    output_types = [v.type for v in node.outputs]
    evaluator = ctx.evaluator
    right_outputs = node.right.outputs
    left_outputs = node.left.outputs
    right_null_row = (None,) * len(right_outputs)
    is_left_join = node.join_type == "left"

    for page in left_source:
        page = page.loaded()
        n = page.position_count
        result_rows: list[tuple] = []
        matched = np.zeros(n, dtype=bool)
        # Vectorize across probe rows: one filter evaluation per build row.
        probe_bindings = {
            variable.name: page.block(i) for i, variable in enumerate(left_outputs)
        }
        probe_rows = page.to_rows()
        for build_row in right_rows:
            if node.filter is not None:
                from repro.core.evaluator import constant_block

                bindings = dict(probe_bindings)
                for variable, value in zip(right_outputs, build_row):
                    bindings[variable.name] = constant_block(value, variable.type, n)
                mask = evaluator.filter_mask(node.filter, bindings, n)
                positions = np.nonzero(mask)[0]
            else:
                positions = np.arange(n)
            matched[positions] = True
            result_rows.extend(probe_rows[int(p)] + build_row for p in positions)
        if is_left_join:
            for position in np.nonzero(~matched)[0]:
                result_rows.append(probe_rows[int(position)] + right_null_row)
        yield Page.from_rows(output_types, result_rows)


def _filter_row(evaluator, predicate, outputs, row: tuple) -> bool:
    from repro.core.blocks import block_from_values

    bindings = {
        variable.name: block_from_values(variable.type, [value])
        for variable, value in zip(outputs, row)
    }
    mask = evaluator.filter_mask(predicate, bindings, 1)
    return bool(mask[0])


def execute_spatial_join(
    node: SpatialJoinNode,
    ctx: ExecutionContext,
    left_source: Iterator[Page],
    right_source: Iterator[Page],
) -> Iterator[Page]:
    from repro.geo.geometry import Geometry
    from repro.geo.quadtree import GeoIndex

    right_outputs = node.right.outputs
    polygon_index = [v.name for v in right_outputs].index(node.polygon_variable.name)
    build_rows = _build_rows(ctx, right_source, len(right_outputs))

    index: Optional[GeoIndex] = None
    if node.use_index:
        # build_geo_index: serialize polygons into a QuadTree on the fly
        # (section VI.E, figure 13).
        index = GeoIndex.build(
            [(i, row[polygon_index]) for i, row in enumerate(build_rows)]
        )

    output_types = [v.type for v in node.outputs]
    left_outputs = node.left.outputs
    evaluator = ctx.evaluator

    for page in left_source:
        page = page.loaded()
        bindings = bindings_for(page, left_outputs)
        point_block = evaluator.evaluate(
            node.point_expression, bindings, page.position_count
        ).loaded()
        result_rows: list[tuple] = []
        for position in range(page.position_count):
            point = point_block.get(position)
            if point is None:
                continue
            probe_row = page.row(position)
            if index is not None:
                candidates = index.candidates(point)
                for build_index in candidates:
                    build_row = build_rows[build_index]
                    polygon: Geometry = build_row[polygon_index]
                    if polygon is not None and polygon.contains_point(point):
                        result_rows.append(probe_row + build_row)
            else:
                # Brute force: the full geometry test for every pair, as in
                # the paper's pre-QuadTree baseline ("this simple query
                # could cost hundreds of millions of st_contains"), with no
                # spatial pruning of any kind.
                for build_row in build_rows:
                    polygon = build_row[polygon_index]
                    if polygon is not None and polygon.ray_cast(point):
                        result_rows.append(probe_row + build_row)
        yield Page.from_rows(output_types, result_rows)
