"""Filter and project operators."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.blocks import Block
from repro.core.expressions import VariableReferenceExpression
from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.planner.plan import FilterNode, ProjectNode


def bindings_for(page: Page, outputs) -> dict[str, Block]:
    """Map plan variable names to the page's blocks by position."""
    return {variable.name: page.block(i) for i, variable in enumerate(outputs)}


def execute_filter(
    node: FilterNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    outputs = node.source.outputs
    evaluator = ctx.evaluator
    # Hoisted per query, not per page: a predicate that constant-folds to
    # TRUE (e.g. `WHERE 1 = 1` conjuncts) never touches the pages at all.
    if evaluator.predicate_is_always_true(node.predicate):
        yield from source
        return
    for page in source:
        if page.position_count == 0:
            yield page
            continue
        bindings = bindings_for(page, outputs)
        mask = evaluator.filter_mask(node.predicate, bindings, page.position_count)
        selected = np.nonzero(mask)[0]
        if len(selected) == page.position_count:
            yield page
        else:
            yield page.take(selected)


def execute_project(
    node: ProjectNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    outputs = node.source.outputs
    for page in source:
        bindings = bindings_for(page, outputs)
        blocks: list[Block] = []
        for variable, expression in node.assignments:
            if isinstance(expression, VariableReferenceExpression):
                # Identity projection: forward the block untouched so lazy
                # blocks stay unloaded (section V.H).
                blocks.append(bindings[expression.name])
            else:
                blocks.append(
                    ctx.evaluator.evaluate(expression, bindings, page.position_count)
                )
        yield Page(blocks, page.position_count)
