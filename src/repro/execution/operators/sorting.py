"""Sort, TopN, and Limit operators."""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.planner.plan import LimitNode, SortNode, TopNNode


class _SortKey:
    """Total order over possibly-null values: nulls sort last ascending."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.ascending
        if b is None:
            return self.ascending
        return a < b if self.ascending else b < a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _sorted_rows(node, source: Iterator[Page]) -> list[tuple]:
    key_indexes = [
        ([v.name for v in node.source.outputs].index(variable.name), ascending)
        for variable, ascending in node.order_by
    ]
    rows: list[tuple] = []
    for page in source:
        rows.extend(page.loaded().rows())
    rows.sort(key=lambda row: tuple(_SortKey(row[i], asc) for i, asc in key_indexes))
    return rows


def execute_sort(
    node: SortNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    rows = _sorted_rows(node, source)
    yield Page.from_rows([v.type for v in node.outputs], rows)


def execute_topn(
    node: TopNNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    # TopN keeps only ``count`` rows resident (vs a full sort).
    key_indexes = [
        ([v.name for v in node.source.outputs].index(variable.name), ascending)
        for variable, ascending in node.order_by
    ]

    def sort_key(row: tuple):
        return tuple(_SortKey(row[i], asc) for i, asc in key_indexes)

    best: list[tuple] = []
    for page in source:
        for row in page.loaded().rows():
            best.append(row)
            if len(best) > 4 * node.count:
                best.sort(key=sort_key)
                del best[node.count :]
    best.sort(key=sort_key)
    yield Page.from_rows([v.type for v in node.outputs], best[: node.count])


def execute_limit(
    node: LimitNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    remaining = node.count
    for page in source:
        if remaining <= 0:
            break
        page = page.loaded()
        if page.position_count <= remaining:
            remaining -= page.position_count
            yield page
        else:
            import numpy as np

            yield page.take(np.arange(remaining))
            remaining = 0
