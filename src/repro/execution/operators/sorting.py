"""Sort, TopN, and Limit operators.

``execute_sort`` is vectorized: input pages concatenate block-wise
(:func:`repro.core.page.concat_pages`), each key column factorizes to a
dense rank array, and one stable ``np.lexsort`` orders the page
(:func:`repro.execution.kernels.sort_order`).  Key kinds the factorizer
does not support fall back to the retained row-at-a-time reference,
:func:`_sorted_rows`.  TopN keeps a bounded heap of ``count`` rows
instead of re-sorting its buffer on every overflow.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from repro.core.page import Page, concat_pages
from repro.execution import kernels
from repro.execution.context import ExecutionContext
from repro.planner.plan import LimitNode, SortNode, TopNNode


class _SortKey:
    """Total order over possibly-null values: nulls sort last ascending."""

    __slots__ = ("value", "ascending")

    def __init__(self, value, ascending: bool) -> None:
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.ascending
        if b is None:
            return self.ascending
        return a < b if self.ascending else b < a

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


class _ReversedEntry:
    """Max-heap adapter for heapq: reverses comparison of (key, seq) entries."""

    __slots__ = ("item",)

    def __init__(self, item) -> None:
        self.item = item

    def __lt__(self, other: "_ReversedEntry") -> bool:
        return other.item[:2] < self.item[:2]


def _key_indexes(node) -> list[tuple[int, bool]]:
    return [
        ([v.name for v in node.source.outputs].index(variable.name), ascending)
        for variable, ascending in node.order_by
    ]


def _sorted_rows(node, source: Iterator[Page]) -> list[tuple]:
    """Row-at-a-time reference sort (retained as the differential oracle)."""
    key_indexes = _key_indexes(node)
    rows: list[tuple] = []
    for page in source:
        rows.extend(page.loaded().rows())
    rows.sort(key=lambda row: tuple(_SortKey(row[i], asc) for i, asc in key_indexes))
    return rows


def execute_sort(
    node: SortNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    key_indexes = _key_indexes(node)
    types = [v.type for v in node.outputs]
    page = concat_pages(types, list(source))
    order = None
    if key_indexes:
        order = kernels.sort_order(
            [page.block(i) for i, _ in key_indexes],
            [ascending for _, ascending in key_indexes],
        )
    if order is None:
        rows = page.to_rows()
        rows.sort(key=lambda row: tuple(_SortKey(row[i], asc) for i, asc in key_indexes))
        ctx.stats.rows_processed_fallback += page.position_count
        yield Page.from_rows(types, rows)
        return
    ctx.stats.rows_processed_vectorized += page.position_count
    yield page.take(order)


def execute_topn(
    node: TopNNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    # TopN keeps only ``count`` rows resident in a bounded max-heap; the
    # arrival sequence number breaks key ties so the output matches a
    # stable full sort truncated to ``count``.
    key_indexes = _key_indexes(node)

    def sort_key(row: tuple):
        return tuple(_SortKey(row[i], asc) for i, asc in key_indexes)

    heap: list[_ReversedEntry] = []
    sequence = 0
    for page in source:
        for row in page.loaded().rows():
            entry = (sort_key(row), sequence, row)
            sequence += 1
            if len(heap) < node.count:
                heapq.heappush(heap, _ReversedEntry(entry))
            elif heap and entry[:2] < heap[0].item[:2]:
                heapq.heapreplace(heap, _ReversedEntry(entry))
    ordered = sorted((entry.item for entry in heap), key=lambda item: item[:2])
    yield Page.from_rows([v.type for v in node.outputs], [item[2] for item in ordered])


def execute_limit(
    node: LimitNode, ctx: ExecutionContext, source: Iterator[Page]
) -> Iterator[Page]:
    remaining = node.count
    for page in source:
        if remaining <= 0:
            break
        page = page.loaded()
        if page.position_count <= remaining:
            remaining -= page.position_count
            yield page
        else:
            yield page.take(np.arange(remaining))
            remaining = 0
