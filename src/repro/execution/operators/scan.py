"""Table scan and values operators.

The scan asks the connector's split manager for splits and streams every
split's pages through the record-set provider, renaming connector columns
to plan variables.  Splits are the unit of parallelism (section III); the
cluster simulation layer accounts their costs across workers.

When a runtime dynamic filter targets the scan (adaptive execution), the
scan pushes its expression form into the connector handle — so readers
can skip whole row groups — and masks every surviving page against the
full filters (including bloom summaries the expression form cannot
carry).  The fragment result cache is bypassed for dynamically-filtered
scans: the cache key does not include the filter, and filtered results
must never be served to an unfiltered run.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution.dynamic_filters import DynamicFilterSet
from repro.planner.plan import TableScanNode, ValuesNode


def execute_table_scan(node: TableScanNode, ctx: ExecutionContext) -> Iterator[Page]:
    connector = ctx.catalog.connector(node.catalog)
    provider = connector.record_set_provider()
    columns = [column for _, column in node.assignments]

    filter_set: Optional[DynamicFilterSet] = None
    if ctx.dynamic_filters is not None:
        filter_set = ctx.dynamic_filters.get(node.id)

    handle = node.handle
    if filter_set is not None and filter_set.expression_dict:
        handle = handle.with_(dynamic_filter=filter_set.expression_dict)

    # Staged execution pins each task to its assigned splits; the direct
    # pipeline enumerates every split of the table in one pass.
    splits = None
    if ctx.scan_splits is not None:
        splits = ctx.scan_splits.get(node.id)
    if splits is None:
        if filter_set is not None and filter_set.is_empty:
            # An empty build side means no probe row can ever match: skip
            # split enumeration entirely (mirrors the scheduler's staged
            # shortcut, counted the same way).
            skipped = len(connector.split_manager().get_splits(handle))
            ctx.stats.dynamic_filter_splits_skipped += skipped
            splits = []
        else:
            splits = connector.split_manager().get_splits(handle)

    mask_channels = _dynamic_mask_channels(node, filter_set)

    produced_any = False
    for split in splits:
        ctx.stats.splits_scanned += 1
        if ctx.clock is not None:
            # Task creation/assignment RPC overhead per split.
            ctx.clock.advance(0.2)
        split_rows = 0
        pages, cache_status = _split_pages(
            node, ctx, provider, handle, split, columns, filter_set
        )
        for page in pages:
            if mask_channels:
                page = _apply_dynamic_mask(page, mask_channels, ctx)
            ctx.stats.rows_scanned += page.position_count
            split_rows += page.position_count
            ctx.stats.pages_produced += 1
            if page.position_count or not produced_any:
                produced_any = True
                yield page
        _harvest_reader_stats(ctx, pages)
        if ctx.tracer is not None:
            span = ctx.tracer.instant(
                "split",
                split_id=split.split_id,
                catalog=node.catalog,
                rows=split_rows,
            )
            if cache_status is not None:
                span.set(cache=cache_status)


def _dynamic_mask_channels(node, filter_set):
    """Pairs of (page channel, filters) to mask pages with, or []."""
    if filter_set is None or not filter_set.filters:
        return []
    channel_by_column = {
        column: channel for channel, (_, column) in enumerate(node.assignments)
    }
    mask_channels = []
    for column, filters in sorted(filter_set.filters.items()):
        channel = channel_by_column.get(column)
        if channel is not None:
            mask_channels.append((channel, filters))
    return mask_channels


def _apply_dynamic_mask(page: Page, mask_channels, ctx: ExecutionContext) -> Page:
    """Drop rows whose join keys cannot match any build-side key.

    Runs before ``rows_scanned`` accounting, matching the reader's static
    predicate (filtered rows never count as scanned); the pruned volume
    is visible in ``dynamic_filter_rows_pruned``.
    """
    if page.position_count == 0:
        return page
    mask = np.ones(page.position_count, dtype=bool)
    for channel, filters in mask_channels:
        block = page.block(channel)
        for dynamic_filter in filters:
            mask &= dynamic_filter.mask(block)
            if not mask.any():
                break
    kept = int(mask.sum())
    if kept == page.position_count:
        return page
    ctx.stats.dynamic_filter_rows_pruned += page.position_count - kept
    return page.take(np.flatnonzero(mask))


def _harvest_reader_stats(ctx: ExecutionContext, pages) -> None:
    """Fold a drained split's reader statistics into the query counters.

    Providers that wrap a format reader (hive/parquet) expose its stats
    as a ``reader_stats`` attribute on the returned page iterator; plain
    generators (memory connector, cached results) simply have none.
    """
    reader_stats = getattr(pages, "reader_stats", None)
    if reader_stats is None:
        return
    ctx.stats.row_groups_total += reader_stats.row_groups_total
    ctx.stats.row_groups_skipped_by_stats += reader_stats.row_groups_skipped_by_stats
    ctx.stats.row_groups_skipped_by_dictionary += (
        reader_stats.row_groups_skipped_by_dictionary
    )
    ctx.stats.row_groups_skipped_by_dynamic_filter += (
        reader_stats.row_groups_skipped_by_dynamic_filter
    )


def _split_pages(node, ctx, provider, handle, split, columns, filter_set):
    """One split's pages, optionally served from the fragment result cache.

    The cache key is the scan fragment's canonical description plus the
    split id plus the split's data version; a version change (file rewrite,
    new rows) makes the old entry unreachable, so stale results are never
    served (section VII).  Returns ``(pages, cache_status)`` where the
    status is ``"hit"``/``"miss"`` when the fragment cache was consulted,
    else None.  Dynamically-filtered scans never touch the cache — the
    key excludes the runtime filter.
    """
    cache = ctx.fragment_cache
    data_version = split.info_dict().get("data_version")
    if cache is None or data_version is None or filter_set is not None:
        return provider.pages(handle, split, columns), None
    key = cache.fragment_key(
        node.describe() + "|" + ",".join(columns), split.split_id, data_version
    )
    pages, hit = cache.get_or_compute_with_status(
        key, lambda: provider.pages(handle, split, columns)
    )
    if hit:
        ctx.stats.fragment_cache_hits += 1
    return iter(pages), "hit" if hit else "miss"


def execute_values(node: ValuesNode, ctx: ExecutionContext) -> Iterator[Page]:
    types = [v.type for v in node.output_variables]
    if not node.output_variables:
        # Zero-column values (e.g. SELECT without FROM): emit one empty-width
        # page per row so downstream projections produce one output row each.
        yield Page([], position_count=len(node.rows))
        return
    yield Page.from_rows(types, list(node.rows))
