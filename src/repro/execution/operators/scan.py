"""Table scan and values operators.

The scan asks the connector's split manager for splits and streams every
split's pages through the record-set provider, renaming connector columns
to plan variables.  Splits are the unit of parallelism (section III); the
cluster simulation layer accounts their costs across workers.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.planner.plan import TableScanNode, ValuesNode


def execute_table_scan(node: TableScanNode, ctx: ExecutionContext) -> Iterator[Page]:
    connector = ctx.catalog.connector(node.catalog)
    provider = connector.record_set_provider()
    columns = [column for _, column in node.assignments]

    # Staged execution pins each task to its assigned splits; the direct
    # pipeline enumerates every split of the table in one pass.
    splits = None
    if ctx.scan_splits is not None:
        splits = ctx.scan_splits.get(node.id)
    if splits is None:
        splits = connector.split_manager().get_splits(node.handle)

    produced_any = False
    for split in splits:
        ctx.stats.splits_scanned += 1
        if ctx.clock is not None:
            # Task creation/assignment RPC overhead per split.
            ctx.clock.advance(0.2)
        split_rows = 0
        pages, cache_status = _split_pages(node, ctx, provider, split, columns)
        for page in pages:
            ctx.stats.rows_scanned += page.position_count
            split_rows += page.position_count
            ctx.stats.pages_produced += 1
            if page.position_count or not produced_any:
                produced_any = True
                yield page
        if ctx.tracer is not None:
            span = ctx.tracer.instant(
                "split",
                split_id=split.split_id,
                catalog=node.catalog,
                rows=split_rows,
            )
            if cache_status is not None:
                span.set(cache=cache_status)


def _split_pages(node, ctx, provider, split, columns):
    """One split's pages, optionally served from the fragment result cache.

    The cache key is the scan fragment's canonical description plus the
    split id plus the split's data version; a version change (file rewrite,
    new rows) makes the old entry unreachable, so stale results are never
    served (section VII).  Returns ``(pages, cache_status)`` where the
    status is ``"hit"``/``"miss"`` when the fragment cache was consulted,
    else None.
    """
    cache = ctx.fragment_cache
    data_version = split.info_dict().get("data_version")
    if cache is None or data_version is None:
        return provider.pages(node.handle, split, columns), None
    key = cache.fragment_key(
        node.describe() + "|" + ",".join(columns), split.split_id, data_version
    )
    pages, hit = cache.get_or_compute_with_status(
        key, lambda: provider.pages(node.handle, split, columns)
    )
    if hit:
        ctx.stats.fragment_cache_hits += 1
    return iter(pages), "hit" if hit else "miss"


def execute_values(node: ValuesNode, ctx: ExecutionContext) -> Iterator[Page]:
    types = [v.type for v in node.output_variables]
    if not node.output_variables:
        # Zero-column values (e.g. SELECT without FROM): emit one empty-width
        # page per row so downstream projections produce one output row each.
        yield Page([], position_count=len(node.rows))
        return
    yield Page.from_rows(types, list(node.rows))
