"""Vectorized operator implementations, one module per operator family.

The ``*_rows`` entries are the retained row-at-a-time reference
implementations: fallbacks for key kinds the vectorized kernels do not
cover, oracles for the differential tests, and baselines for
``benchmarks/bench_operator_kernels.py``.
"""

from repro.execution.operators.scan import execute_table_scan, execute_values
from repro.execution.operators.filter_project import execute_filter, execute_project
from repro.execution.operators.aggregation import (
    execute_aggregation,
    execute_aggregation_rows,
)
from repro.execution.operators.joins import (
    execute_join,
    execute_spatial_join,
    _hash_join_rows,
)
from repro.execution.operators.sorting import execute_limit, execute_sort, execute_topn

__all__ = [
    "execute_table_scan",
    "execute_values",
    "execute_filter",
    "execute_project",
    "execute_aggregation",
    "execute_aggregation_rows",
    "execute_join",
    "execute_spatial_join",
    "execute_limit",
    "execute_sort",
    "execute_topn",
]
