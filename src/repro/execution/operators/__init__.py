"""Vectorized operator implementations, one module per operator family."""

from repro.execution.operators.scan import execute_table_scan, execute_values
from repro.execution.operators.filter_project import execute_filter, execute_project
from repro.execution.operators.aggregation import execute_aggregation
from repro.execution.operators.joins import execute_join, execute_spatial_join
from repro.execution.operators.sorting import execute_limit, execute_sort, execute_topn

__all__ = [
    "execute_table_scan",
    "execute_values",
    "execute_filter",
    "execute_project",
    "execute_aggregation",
    "execute_join",
    "execute_spatial_join",
    "execute_limit",
    "execute_sort",
    "execute_topn",
]
