"""Runtime dynamic filters: build-side summaries pushed into probe scans.

When a hash join's build side finishes, its join-key values are known
exactly — before the probe side has scanned a single row (the fragmenter
schedules the build fragment strictly before the fragment holding the
join).  A :class:`DynamicFilter` summarizes those values (min/max, the
exact value set while small, a deterministic bloom filter otherwise) and
the scheduler pushes it into the probe-side table scan, where it is
applied at three granularities:

- **split level** — conjuncts over partition keys prune whole partitions
  at split enumeration (via the serialized expression form);
- **row-group level** — the parquet reader checks footer min/max and
  dictionaries against the expression form and skips groups;
- **row level** — every surviving page is masked against the full filter
  (including the bloom summary the expression form cannot carry).

Dynamic filters are only attached to join types that drop probe rows
lacking a build-side match (``inner`` and ``right``); ``left``/``full``
joins preserve unmatched probe rows, so filtering their probe side would
change results.  NULL probe keys never match in those join types either,
so the filter drops them.

Everything here is deterministic: the bloom filter hashes through the
CRC32-based :func:`repro.common.hashing.stable_hash`, so a retried task
— or a re-run of the whole query — sees the identical filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.common.hashing import stable_hash
from repro.core.blocks import Block
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    combine_conjuncts,
)
from repro.core.types import BOOLEAN, PrestoType

# Keep the exact value set up to this many distinct build keys; beyond it
# the filter degrades to min/max + bloom.
DEFAULT_EXACT_VALUES_LIMIT = 10_000
# Serialize the value set as an IN expression only while it is small —
# the expression travels into readers and evaluates per row group.
IN_EXPRESSION_LIMIT = 100
BLOOM_BITS_PER_VALUE = 10
BLOOM_HASHES = 4


def _normalize(value: Any) -> Any:
    """Collapse numerically-equal representations before hashing.

    ``-0.0 == 0.0`` and ``1 == 1.0`` under SQL equality, but their reprs
    (hence their CRC32 hashes) differ; fold floats with integral values
    onto ints and negative zero onto zero so the bloom filter never gives
    a false *negative*.
    """
    if isinstance(value, float):
        if value != value:  # NaN never equals anything; keep as-is
            return value
        if value.is_integer():
            return int(value)
    return value


class BloomFilter:
    """Deterministic bloom filter over scalar values."""

    def __init__(self, bits: np.ndarray, num_hashes: int) -> None:
        self.bits = bits  # bool ndarray
        self.num_hashes = num_hashes

    @classmethod
    def build(
        cls,
        values: Iterable[Any],
        count: int,
        bits_per_value: int = BLOOM_BITS_PER_VALUE,
        num_hashes: int = BLOOM_HASHES,
    ) -> "BloomFilter":
        size = max(count * bits_per_value, 64)
        bits = np.zeros(size, dtype=bool)
        bloom = cls(bits, num_hashes)
        for value in values:
            for index in bloom._indexes(value):
                bits[index] = True
        return bloom

    def _indexes(self, value: Any) -> list[int]:
        normalized = _normalize(value)
        h1 = stable_hash(normalized)
        h2 = stable_hash(("bloom", normalized)) | 1  # odd: full cycle
        size = len(self.bits)
        return [(h1 + i * h2) % size for i in range(self.num_hashes)]

    def contains(self, value: Any) -> bool:
        return all(self.bits[index] for index in self._indexes(value))


@dataclass
class DynamicFilter:
    """Summary of one join key's build-side values."""

    min_value: Any = None
    max_value: Any = None
    values: Optional[frozenset] = None  # exact set while small
    bloom: Optional[BloomFilter] = None
    build_distinct: int = 0
    build_rows: int = 0

    @property
    def is_empty(self) -> bool:
        """True when the build side had no defined keys: nothing matches."""
        return self.build_distinct == 0

    def matches(self, value: Any) -> bool:
        if value is None:
            return False  # NULL never equals a build key (inner/right join)
        if self.build_distinct == 0:
            return False  # empty build: nothing can match
        if self.values is not None:
            return _normalize(value) in self.values
        if self.min_value is not None:
            try:
                if value < self.min_value or value > self.max_value:
                    return False
            except TypeError:
                pass
        return self.bloom is None or self.bloom.contains(value)

    def mask(self, block: Block) -> np.ndarray:
        values = block.loaded().to_list()
        return np.fromiter(
            (self.matches(v) for v in values), dtype=bool, count=len(values)
        )

    def to_expression(
        self, column: str, presto_type: PrestoType, registry
    ) -> Optional[RowExpression]:
        """Expression form over connector column ``column``, or None.

        Carries the exact set (as IN) while small, else the min/max range;
        the bloom summary has no expression form and stays row-level only.
        An empty filter has no expression — callers handle it via
        :attr:`is_empty`.
        """
        variable = VariableReferenceExpression(column, presto_type)
        if (
            self.values is not None
            and 0 < len(self.values) <= IN_EXPRESSION_LIMIT
        ):
            constants = tuple(
                ConstantExpression(v, presto_type)
                for v in sorted(self.values, key=lambda v: (str(type(v)), v))
            )
            if len(constants) == 1:
                return _comparison(registry, "equal", variable, constants[0])
            return SpecialFormExpression(
                SpecialForm.IN, BOOLEAN, (variable,) + constants
            )
        if self.min_value is None or self.max_value is None:
            return None
        return combine_conjuncts(
            [
                _comparison(
                    registry,
                    "greater_than_or_equal",
                    variable,
                    ConstantExpression(self.min_value, presto_type),
                ),
                _comparison(
                    registry,
                    "less_than_or_equal",
                    variable,
                    ConstantExpression(self.max_value, presto_type),
                ),
            ]
        )


@dataclass
class DynamicFilterSet:
    """All dynamic filters targeting one probe-side table scan.

    ``filters`` maps each connector column name to the filters targeting
    it — one per join criteria pair, so a scan probed by several joins
    accumulates several entries whose conjunction applies.
    ``expression_dict`` is the serialized conjunction of the filters'
    expression forms over *connector column* names — the shape connector
    handles carry in ``constraint`` — precomputed once at build time so
    retried tasks and split enumeration see the identical predicate.
    """

    filters: dict[str, list[DynamicFilter]] = field(default_factory=dict)
    expression_dict: Optional[dict] = None

    @property
    def is_empty(self) -> bool:
        return any(
            f.is_empty for column_filters in self.filters.values() for f in column_filters
        )


def build_dynamic_filter(
    values: Iterable[Any], exact_limit: int = DEFAULT_EXACT_VALUES_LIMIT
) -> DynamicFilter:
    """Summarize one build-side key column's values (NULLs excluded)."""
    distinct: set = set()
    rows = 0
    for value in values:
        rows += 1
        if value is not None:
            distinct.add(_normalize(value))
    if not distinct:
        return DynamicFilter(build_rows=rows)
    try:
        low, high = min(distinct), max(distinct)
    except TypeError:  # mixed/unorderable values: keep membership forms only
        low = high = None
    if len(distinct) <= exact_limit:
        return DynamicFilter(
            min_value=low,
            max_value=high,
            values=frozenset(distinct),
            build_distinct=len(distinct),
            build_rows=rows,
        )
    return DynamicFilter(
        min_value=low,
        max_value=high,
        bloom=BloomFilter.build(distinct, len(distinct)),
        build_distinct=len(distinct),
        build_rows=rows,
    )


def _comparison(registry, name: str, left: RowExpression, right: RowExpression):
    handle, _ = registry.resolve_scalar(name, [left.type, right.type])
    return CallExpression(name, handle, BOOLEAN, (left, right))
