"""Vectorized operator kernels: the engine-side array hot path.

The block layer (section III: Presto "processes a bunch of in memory
encoded column values vectorized, instead of row by row") keeps column
values in numpy storage, but the relational operators downstream used to
fall back to ``block.get(position)`` loops over Python tuples.  This
module is the kernel layer that keeps them columnar:

- **Group-key factorization** (:func:`factorize_keys`): encode the key
  columns of a page into one dense ``int64`` code array plus the list of
  distinct key tuples.  Dictionary-encoded columns factorize directly on
  their id arrays without decoding; primitive columns go through
  ``np.unique``; offsets-based :class:`VarcharBlock` columns factorize on
  padded byte views (no per-element Python compares); legacy object-dtype
  (varchar) columns get a null-safe ``np.unique`` over the non-null
  values.  Unsupported block kinds (row, array, map, mixed-type object
  columns) return ``None`` and the caller falls back to the retained
  row-at-a-time reference path.
- **Grouped accumulators**: count/sum/min/max/avg accumulate per group
  code with ``np.bincount`` / ``np.add.at`` / ``np.minimum.at`` instead
  of a per-row dict of Python states.  ``np.add.at`` applies updates in
  row order, so float results are bit-identical to the row loop.  The
  :class:`GenericAccumulator` wraps any aggregate's create/add/merge
  state machine for the cases the array kernels do not cover (DISTINCT,
  object-dtype inputs, avg in merge mode) and is also the differential
  reference.
- **Join probe expansion** (:func:`expand_matches`): given probe codes
  and per-code build-position arrays, produce the
  ``(probe_positions, build_positions)`` index pair in probe-row order
  via ``repeat``/``tile`` plus one stable argsort.
- **Sort ranks** (:func:`sort_order`): per-key rank arrays (nulls
  ranked last ascending, first descending — matching ``_SortKey``) fed
  to a stable ``np.lexsort``.

NaN keys canonicalize to the null sentinel before factorization (NaN is
not equal to itself, so ``np.unique`` grouping and dict-keyed grouping
would otherwise disagree); :func:`canonical_key` applies the same rule to
the row-at-a-time reference paths, so both lanes treat a NaN key exactly
like SQL NULL.  NULL keys are handled exactly.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.blocks import (
    Block,
    DictionaryBlock,
    PrimitiveBlock,
    VarcharBlock,
    _numpy_dtype_for,
)
from repro.core.types import parse_type

EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


class FallbackNeeded(Exception):
    """Raised by a vector kernel when a page needs the row-at-a-time path."""


def canonical_key(value: Any) -> Any:
    """Canonical form of one key component: NaN becomes the null sentinel.

    Every row-at-a-time reference path that builds key tuples (group by,
    hash join, partitioning) routes values through here so the dict-keyed
    lanes agree with the factorized lanes, where NaN maps to code ``-1``.
    """
    if isinstance(value, float) and value != value:
        return None
    return value


# ---------------------------------------------------------------------------
# Factorization
# ---------------------------------------------------------------------------


def _to_python(value: Any) -> Any:
    return value.item() if isinstance(value, np.generic) else value


def column_codes(block: Block) -> Optional[tuple[np.ndarray, list]]:
    """Factorize one column into ``(codes, uniques)``.

    ``codes`` is an int64 array with ``-1`` marking nulls; ``uniques[c]``
    is the Python value for code ``c``, in ascending sorted order.
    Returns ``None`` when the block kind or value mix is unsupported.
    """
    raw = _column_codes_raw(block)
    if raw is None:
        return None
    codes, uniq = raw
    return codes, [_to_python(v) for v in uniq]


def _column_codes_raw(block: Block) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """``column_codes`` keeping the distinct values as a sorted ndarray."""
    block = block.loaded()
    if isinstance(block, DictionaryBlock):
        return _dictionary_codes(block)
    if isinstance(block, VarcharBlock):
        return block.factorize()
    if not isinstance(block, PrimitiveBlock):
        return None
    values = block.values
    nulls = block.null_mask()
    if np.issubdtype(values.dtype, np.floating):
        # NaN keys canonicalize to the null sentinel (module docstring).
        nulls = nulls | np.isnan(values)
    if values.dtype == object or nulls.any():
        non_null = ~nulls
        try:
            uniq, inverse = np.unique(values[non_null], return_inverse=True)
        except TypeError:
            return None  # mixed or non-orderable object values
        codes = np.full(len(values), -1, dtype=np.int64)
        codes[non_null] = inverse
    else:
        try:
            uniq, inverse = np.unique(values, return_inverse=True)
        except TypeError:
            return None
        codes = inverse.astype(np.int64, copy=False)
    return codes, uniq


def _dictionary_codes(block: DictionaryBlock) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Factorize on the id array without decoding the column.

    The dictionary itself is deduplicated defensively (a dictionary with
    repeated values must not split one group in two): the small
    dictionary is factorized once, then the remap table is applied to
    the full id array with one vectorized gather.
    """
    raw = _column_codes_raw(block.dictionary)
    if raw is None:
        return None
    dict_codes, uniq = raw
    # remap[dict_id] -> code; the extra trailing slot catches id == -1.
    remap = np.empty(len(dict_codes) + 1, dtype=np.int64)
    remap[: len(dict_codes)] = dict_codes
    remap[len(dict_codes)] = -1
    ids = block.ids
    safe_ids = np.where(ids < 0, len(dict_codes), ids)
    return remap[safe_ids], uniq


def factorize_keys(blocks: Sequence[Block]) -> Optional[tuple[np.ndarray, list[tuple]]]:
    """Encode multi-column row keys into dense int64 group codes.

    Returns ``(codes, uniques)`` where ``codes[row]`` indexes into
    ``uniques``, a list of distinct key tuples (``None`` components for
    null keys).  Columns are combined with mixed-radix arithmetic,
    re-compacting through ``np.unique`` whenever the radix product could
    overflow int64.  Returns ``None`` when any column is unsupported so
    the caller can take the row-at-a-time path.
    """
    if not blocks:
        return None
    columns = []
    for block in blocks:
        factorized = column_codes(block)
        if factorized is None:
            return None
        columns.append(factorized)
    n = len(columns[0][0])
    combined = np.zeros(n, dtype=np.int64)
    radix = 1
    for codes, uniques in columns:
        width = len(uniques) + 1  # +1 slot so null (-1) encodes as 0
        if radix > (2**62) // max(width, 1):
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64, copy=False)
            radix = int(combined.max()) + 1 if n else 1
        combined = combined * width + (codes + 1)
        radix *= width
    if radix <= 65536:
        # Small key domain: dense first-occurrence table, no sort of the
        # row codes.  Reversed assignment leaves each slot holding the
        # SMALLEST row index that wrote it.
        first = np.full(radix, -1, dtype=np.int64)
        first[combined[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        values = np.flatnonzero(first >= 0)
        appearance = np.argsort(first[values], kind="stable")  # #distinct only
        rank_table = np.zeros(radix, dtype=np.int64)
        rank_table[values[appearance]] = np.arange(len(values), dtype=np.int64)
        group_codes = rank_table[combined]
        reps = first[values][appearance]
    else:
        _, first_rows, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        # Relabel so codes follow first-appearance order (np.unique sorts
        # by value); group output order must match the row-at-a-time
        # reference.
        appearance = np.argsort(first_rows, kind="stable")
        rank = np.empty(len(appearance), dtype=np.int64)
        rank[appearance] = np.arange(len(appearance), dtype=np.int64)
        group_codes = rank[inverse]
        reps = first_rows[appearance]
    uniques_out: list[tuple] = []
    for rep in reps:
        key = tuple(
            uniques[codes[rep]] if codes[rep] >= 0 else None
            for codes, uniques in columns
        )
        uniques_out.append(key)
    return group_codes, uniques_out


def partition_assignments(blocks: Sequence[Block], n_partitions: int) -> np.ndarray:
    """Per-row partition indexes for a hash-partitioned exchange.

    Vectorized path: the key columns factorize into dense codes
    (:func:`factorize_keys`), one :func:`stable_hash` is computed per
    *distinct* key tuple, and the per-row assignment is a single gather.
    Unsupported key kinds fall back to hashing row tuples directly.  Both
    paths use the CRC32-based :func:`repro.common.hashing.stable_hash`,
    so placement is identical across processes (no ``PYTHONHASHSEED``
    dependence).
    """
    from repro.common.hashing import stable_hash

    if not blocks:
        raise ValueError("partitioning requires at least one key column")
    count = blocks[0].position_count
    factorized = factorize_keys(blocks)
    if factorized is None:
        loaded = [b.loaded() for b in blocks]
        out = np.empty(count, dtype=np.int64)
        for position in range(count):
            key = tuple(canonical_key(block.get(position)) for block in loaded)
            out[position] = stable_hash(key) % n_partitions
        return out
    codes, uniques = factorized
    table = np.fromiter(
        (stable_hash(key) % n_partitions for key in uniques),
        dtype=np.int64,
        count=len(uniques),
    )
    return table[codes] if len(uniques) else np.zeros(count, dtype=np.int64)


class GroupIndex:
    """Incremental key-tuple -> dense group id mapping, first-seen order.

    Pages factorize locally; only each page's *distinct* keys touch the
    Python dict, so the per-row cost is one vectorized gather.
    """

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self.keys: list[tuple] = []

    def __len__(self) -> int:
        return len(self.keys)

    def map_codes(self, codes: np.ndarray, uniques: Sequence[tuple]) -> np.ndarray:
        """Translate page-local codes into global group ids."""
        remap = np.empty(len(uniques), dtype=np.int64)
        for local, key in enumerate(uniques):
            group = self._ids.get(key)
            if group is None:
                group = len(self.keys)
                self._ids[key] = group
                self.keys.append(key)
            remap[local] = group
        return remap[codes]

    def map_rows(self, key_blocks: Sequence[Block], count: int) -> np.ndarray:
        """Row-at-a-time fallback for unsupported key block kinds."""
        group_ids = np.empty(count, dtype=np.int64)
        ids = self._ids
        for position in range(count):
            key = tuple(canonical_key(block.get(position)) for block in key_blocks)
            group = ids.get(key)
            if group is None:
                group = len(self.keys)
                ids[key] = group
                self.keys.append(key)
            group_ids[position] = group
        return group_ids

    def ensure_group(self, key: tuple) -> int:
        group = self._ids.get(key)
        if group is None:
            group = len(self.keys)
            self._ids[key] = group
            self.keys.append(key)
        return group


# ---------------------------------------------------------------------------
# Grouped accumulators
# ---------------------------------------------------------------------------


def _numeric_input(block: Block) -> tuple[np.ndarray, np.ndarray]:
    """Values + null mask of a numeric column, or FallbackNeeded."""
    block = block.loaded()
    if isinstance(block, DictionaryBlock):
        block = block.decode()
    if not isinstance(block, PrimitiveBlock) or block.values.dtype == object:
        raise FallbackNeeded
    return block.values, block.null_mask()


class GroupedAccumulator:
    """One aggregate accumulated across pages, keyed by dense group ids."""

    vectorized = True

    def add_page(
        self,
        group_count: int,
        group_ids: np.ndarray,
        argument_blocks: Sequence[Block],
        position_count: int,
    ) -> None:
        raise NotImplementedError

    def finalize_all(self, group_count: int) -> list:
        raise NotImplementedError

    def to_states(self) -> list:
        """Convert array state to per-group Python states (for fallback)."""
        raise NotImplementedError


class GenericAccumulator(GroupedAccumulator):
    """Row-at-a-time reference: drives any AggregateFunction state machine.

    Handles DISTINCT, merge (FINAL) mode, and object-dtype inputs; also
    the target the vector accumulators spill into when a later page turns
    out not to be vectorizable.
    """

    vectorized = False

    def __init__(
        self,
        impl,
        distinct: bool,
        merge_mode: bool,
        initial_states: Optional[list] = None,
    ) -> None:
        self.impl = impl
        self.distinct = distinct
        self.merge_mode = merge_mode
        self.states: list = list(initial_states) if initial_states else []
        self.seen: list[set] = [set() for _ in self.states] if distinct else []

    def _grow(self, group_count: int) -> None:
        while len(self.states) < group_count:
            self.states.append(self.impl.create_state())
            if self.distinct:
                self.seen.append(set())

    def add_page(self, group_count, group_ids, argument_blocks, position_count):
        self._grow(group_count)
        impl = self.impl
        states = self.states
        blocks = [b.loaded() for b in argument_blocks]
        for position in range(position_count):
            group = int(group_ids[position])
            arguments = tuple(block.get(position) for block in blocks)
            if self.distinct:
                if arguments in self.seen[group]:
                    continue
                self.seen[group].add(arguments)
            if self.merge_mode:
                states[group] = impl.merge(states[group], arguments[0])
            else:
                states[group] = impl.add_input(states[group], arguments)

    def finalize_all(self, group_count):
        self._grow(group_count)
        return [self.impl.finalize(state) for state in self.states]

    def to_states(self):
        return list(self.states)


class _ArrayAccumulator(GroupedAccumulator):
    """Shared growable-array plumbing for the vector accumulators."""

    def __init__(self) -> None:
        self._size = 0

    def _grow(self, group_count: int) -> None:
        if group_count <= self._size:
            return
        self._grow_arrays(self._size, group_count)
        self._size = group_count

    def _grow_arrays(self, old: int, new: int) -> None:
        raise NotImplementedError


def _extended(array: np.ndarray, new_size: int, fill) -> np.ndarray:
    out = np.full(new_size, fill, dtype=array.dtype)
    out[: len(array)] = array
    return out


class CountAccumulator(_ArrayAccumulator):
    """count(*) / count(x); in merge mode sums partial counts."""

    def __init__(self, has_argument: bool, merge_mode: bool) -> None:
        super().__init__()
        self.has_argument = has_argument
        self.merge_mode = merge_mode
        self.counts = np.zeros(0, dtype=np.int64)

    def _grow_arrays(self, old, new):
        self.counts = _extended(self.counts, new, 0)

    def add_page(self, group_count, group_ids, argument_blocks, position_count):
        self._grow(group_count)
        if self.merge_mode:
            values, nulls = _numeric_input(argument_blocks[0])
            if nulls.any():
                # The reference merge raises on a null partial count; fall
                # back so behavior (including the error) matches exactly.
                raise FallbackNeeded
            np.add.at(self.counts, group_ids, values.astype(np.int64, copy=False))
            return
        if self.has_argument:
            nulls = argument_blocks[0].loaded().null_mask()
            group_ids = group_ids[~nulls]
        counts = np.bincount(group_ids, minlength=self._size)
        self.counts[: len(counts)] += counts.astype(np.int64, copy=False)

    def finalize_all(self, group_count):
        self._grow(group_count)
        return [int(c) for c in self.counts]

    def to_states(self):
        return [int(c) for c in self.counts]


class SumAccumulator(_ArrayAccumulator):
    """sum(x); merge mode is the same null-skipping addition."""

    def __init__(self, dtype) -> None:
        super().__init__()
        self.sums = np.zeros(0, dtype=dtype)
        self.has_value = np.zeros(0, dtype=bool)

    def _grow_arrays(self, old, new):
        self.sums = _extended(self.sums, new, 0)
        self.has_value = _extended(self.has_value, new, False)

    def add_page(self, group_count, group_ids, argument_blocks, position_count):
        self._grow(group_count)
        values, nulls = _numeric_input(argument_blocks[0])
        if not np.can_cast(values.dtype, self.sums.dtype, casting="same_kind"):
            raise FallbackNeeded
        if nulls.any():
            keep = ~nulls
            group_ids = group_ids[keep]
            values = values[keep]
        np.add.at(self.sums, group_ids, values)
        self.has_value[group_ids] = True

    def _python_value(self, index: int):
        if not self.has_value[index]:
            return None
        return _to_python(self.sums[index])

    def finalize_all(self, group_count):
        self._grow(group_count)
        return [self._python_value(i) for i in range(self._size)]

    def to_states(self):
        return [self._python_value(i) for i in range(self._size)]


class MinMaxAccumulator(_ArrayAccumulator):
    """min(x) / max(x) over numeric inputs via ufunc.at."""

    def __init__(self, dtype, is_min: bool) -> None:
        super().__init__()
        self.is_min = is_min
        if np.issubdtype(dtype, np.bool_):
            raise FallbackNeeded
        if np.issubdtype(dtype, np.floating):
            self._sentinel = np.inf if is_min else -np.inf
        else:
            info = np.iinfo(dtype)
            self._sentinel = info.max if is_min else info.min
        self.best = np.zeros(0, dtype=dtype)
        self.has_value = np.zeros(0, dtype=bool)

    def _grow_arrays(self, old, new):
        self.best = _extended(self.best, new, self._sentinel)
        self.has_value = _extended(self.has_value, new, False)

    def add_page(self, group_count, group_ids, argument_blocks, position_count):
        self._grow(group_count)
        values, nulls = _numeric_input(argument_blocks[0])
        if not np.can_cast(values.dtype, self.best.dtype, casting="same_kind"):
            raise FallbackNeeded
        if nulls.any():
            keep = ~nulls
            group_ids = group_ids[keep]
            values = values[keep]
        ufunc = np.minimum if self.is_min else np.maximum
        ufunc.at(self.best, group_ids, values)
        self.has_value[group_ids] = True

    def _python_value(self, index: int):
        if not self.has_value[index]:
            return None
        return _to_python(self.best[index])

    def finalize_all(self, group_count):
        self._grow(group_count)
        return [self._python_value(i) for i in range(self._size)]

    def to_states(self):
        return [self._python_value(i) for i in range(self._size)]


class AvgAccumulator(_ArrayAccumulator):
    """avg(x): float64 running sums + int64 counts, row-ordered adds."""

    def __init__(self) -> None:
        super().__init__()
        self.sums = np.zeros(0, dtype=np.float64)
        self.counts = np.zeros(0, dtype=np.int64)

    def _grow_arrays(self, old, new):
        self.sums = _extended(self.sums, new, 0.0)
        self.counts = _extended(self.counts, new, 0)

    def add_page(self, group_count, group_ids, argument_blocks, position_count):
        self._grow(group_count)
        values, nulls = _numeric_input(argument_blocks[0])
        if nulls.any():
            keep = ~nulls
            group_ids = group_ids[keep]
            values = values[keep]
        np.add.at(self.sums, group_ids, values)
        self.counts[: self._size] += np.bincount(group_ids, minlength=self._size)

    def finalize_all(self, group_count):
        self._grow(group_count)
        return [
            float(self.sums[i]) / int(self.counts[i]) if self.counts[i] else None
            for i in range(self._size)
        ]

    def to_states(self):
        return [(float(self.sums[i]), int(self.counts[i])) for i in range(self._size)]


def make_accumulator(aggregation, impl, merge_mode: bool) -> GroupedAccumulator:
    """Pick the vector kernel for one aggregate, or the generic reference.

    DISTINCT aggregates, object-dtype (varchar/date) inputs, avg in merge
    mode, and any function outside count/sum/min/max/avg always use
    :class:`GenericAccumulator`, whose semantics are the row-at-a-time
    reference by construction.
    """
    if aggregation.distinct:
        return GenericAccumulator(impl, True, merge_mode)
    name = impl.name
    argument_types = [parse_type(t) for t in aggregation.function_handle.argument_types]
    dtypes = [_numpy_dtype_for(t) for t in argument_types]
    try:
        if name == "count" and len(dtypes) <= 1:
            if merge_mode and not dtypes:
                return GenericAccumulator(impl, False, merge_mode)
            return CountAccumulator(bool(dtypes), merge_mode)
        if len(dtypes) == 1 and dtypes[0] is not object:
            if name == "sum":
                return SumAccumulator(dtypes[0])
            if name in ("min", "max"):
                return MinMaxAccumulator(dtypes[0], name == "min")
            if name == "avg" and not merge_mode:
                return AvgAccumulator()
    except FallbackNeeded:
        pass
    return GenericAccumulator(impl, aggregation.distinct, merge_mode)


# ---------------------------------------------------------------------------
# Join probe expansion
# ---------------------------------------------------------------------------


def positions_by_code(codes: np.ndarray, code_count: int) -> list[np.ndarray]:
    """Row positions per code, ascending within each code."""
    order = np.argsort(codes, kind="stable")
    sorted_codes = codes[order]
    all_codes = np.arange(code_count, dtype=np.int64)
    starts = np.searchsorted(sorted_codes, all_codes, side="left")
    ends = np.searchsorted(sorted_codes, all_codes, side="right")
    return [order[s:e] for s, e in zip(starts, ends)]


def expand_matches(
    probe_codes: np.ndarray,
    match_positions: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Cross probe rows with their matching build positions.

    ``match_positions[c]`` holds the build-side positions matching probe
    code ``c``.  Returns ``(probe_positions, build_positions)`` ordered
    exactly like the row-at-a-time loop: probe position ascending, build
    positions in table insertion order within one probe row.  Negative
    probe codes (NULL keys) match nothing.
    """
    if len(probe_codes) == 0 or not match_positions:
        return EMPTY_POSITIONS, EMPTY_POSITIONS
    counts = np.fromiter(
        (len(m) for m in match_positions), dtype=np.int64, count=len(match_positions)
    )
    if not counts.any():
        return EMPTY_POSITIONS, EMPTY_POSITIONS
    offsets = np.zeros(len(match_positions) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    flat = np.concatenate(list(match_positions))
    valid = probe_codes >= 0
    row_counts = np.where(valid, counts[np.where(valid, probe_codes, 0)], 0)
    total = int(row_counts.sum())
    if total == 0:
        return EMPTY_POSITIONS, EMPTY_POSITIONS
    probe_positions = np.repeat(
        np.arange(len(probe_codes), dtype=np.int64), row_counts
    )
    # Index-within-probe-row for every output row: counting resets at each
    # probe row's exclusive prefix sum.  Adding it to the code's offset into
    # ``flat`` reads the matches in insertion order, so no sort is needed.
    row_starts = np.cumsum(row_counts) - row_counts
    within = np.arange(total, dtype=np.int64) - np.repeat(row_starts, row_counts)
    build_positions = flat[offsets[probe_codes[probe_positions]] + within]
    return probe_positions, build_positions


class JoinKeyIndex:
    """Code-space hash-join index: probe pages never materialize key tuples.

    The build side is factorized once into mixed-radix combined codes.
    Probe columns are mapped into the *same* per-column code space with
    ``np.searchsorted`` against the build side's sorted distinct values,
    so an entire probe page resolves to build-row positions with a
    handful of array operations — no per-key Python dict lookups.
    """

    def __init__(
        self,
        column_uniques: list[np.ndarray],
        widths: list[int],
        compactions: list[tuple[int, np.ndarray]],
        code_values: np.ndarray,
        counts: np.ndarray,
        offsets: np.ndarray,
        flat: np.ndarray,
    ) -> None:
        self.column_uniques = column_uniques
        self.widths = widths
        self.compactions = compactions
        self.code_values = code_values  # sorted combined codes, null keys excluded
        self.counts = counts  # build rows per code
        self.offsets = offsets  # exclusive prefix sums into ``flat``
        self.flat = flat  # build positions grouped by code, insertion order

    def probe_codes(self, blocks: Sequence[Block], count: int) -> np.ndarray:
        """Map probe rows to build code space; ``-1`` means no match.

        Raises :class:`FallbackNeeded` when a probe column holds values
        that cannot be compared against the build side's.
        """
        combined = np.zeros(count, dtype=np.int64)
        invalid = np.zeros(count, dtype=bool)
        for i, block in enumerate(blocks):
            for at_column, table in self.compactions:
                if at_column == i:
                    idx = np.searchsorted(table, combined)
                    idx = np.clip(idx, 0, max(len(table) - 1, 0))
                    if len(table):
                        invalid |= table[idx] != combined
                    else:
                        invalid[:] = True
                    combined = idx
            codes = self._map_column(i, block)
            invalid |= codes < 0
            combined = combined * self.widths[i] + (np.maximum(codes, -1) + 1)
        if not len(self.code_values):
            return np.full(count, -1, dtype=np.int64)
        idx = np.searchsorted(self.code_values, combined)
        idx = np.clip(idx, 0, len(self.code_values) - 1)
        found = (self.code_values[idx] == combined) & ~invalid
        return np.where(found, idx, -1)

    def expand(self, probe_codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``expand_matches`` over this index's precomputed flat layout."""
        if not len(probe_codes) or not len(self.flat):
            return EMPTY_POSITIONS, EMPTY_POSITIONS
        valid = probe_codes >= 0
        row_counts = np.where(
            valid, self.counts[np.where(valid, probe_codes, 0)], 0
        )
        total = int(row_counts.sum())
        if total == 0:
            return EMPTY_POSITIONS, EMPTY_POSITIONS
        probe_positions = np.repeat(
            np.arange(len(probe_codes), dtype=np.int64), row_counts
        )
        row_starts = np.cumsum(row_counts) - row_counts
        within = np.arange(total, dtype=np.int64) - np.repeat(row_starts, row_counts)
        build_positions = self.flat[
            self.offsets[probe_codes[probe_positions]] + within
        ]
        return probe_positions, build_positions

    def _map_column(self, i: int, block: Block) -> np.ndarray:
        block = block.loaded()
        if isinstance(block, DictionaryBlock):
            dict_codes = self._map_flat(i, block.dictionary)
            lookup = np.empty(len(dict_codes) + 1, dtype=np.int64)
            lookup[: len(dict_codes)] = dict_codes
            lookup[len(dict_codes)] = -1  # id == -1 (null row)
            ids = block.ids
            safe_ids = np.where(ids < 0, len(dict_codes), ids)
            return lookup[safe_ids]
        return self._map_flat(i, block)

    def _map_flat(self, i: int, block: Block) -> np.ndarray:
        if isinstance(block, VarcharBlock):
            # Factorize the probe page once, match only its distinct
            # strings against the build side, then gather per row.
            local_codes, local_uniques = block.factorize()
            mapped = self._match_values(
                i, local_uniques, np.zeros(len(local_uniques), dtype=bool)
            )
            lookup = np.empty(len(local_uniques) + 1, dtype=np.int64)
            lookup[: len(local_uniques)] = mapped
            lookup[len(local_uniques)] = -1
            safe = np.where(local_codes < 0, len(local_uniques), local_codes)
            return lookup[safe]
        if not isinstance(block, PrimitiveBlock):
            raise FallbackNeeded("unsupported probe key block")
        values = block.values
        nulls = block.null_mask()
        if np.issubdtype(values.dtype, np.floating):
            # NaN probe keys canonicalize to null: they never match.
            nulls = nulls | np.isnan(values)
        return self._match_values(i, values, nulls)

    def _match_values(
        self, i: int, values: np.ndarray, nulls: np.ndarray
    ) -> np.ndarray:
        uniq = self.column_uniques[i]
        codes = np.full(len(values), -1, dtype=np.int64)
        non_null = ~nulls
        candidates = values[non_null]
        if not len(uniq) or not len(candidates):
            return codes
        try:
            idx = np.searchsorted(uniq, candidates)
        except TypeError:
            raise FallbackNeeded("unorderable probe key values")
        idx = np.clip(idx, 0, len(uniq) - 1)
        try:
            matched = uniq[idx] == candidates
        except TypeError:
            raise FallbackNeeded("incomparable probe key values")
        codes[non_null] = np.where(matched, idx, -1)
        return codes


def build_join_index(blocks: Sequence[Block]) -> Optional[JoinKeyIndex]:
    """Factorize the build side of a hash join into a :class:`JoinKeyIndex`.

    Returns ``None`` when a key column's block kind or value mix is
    unsupported, in which case the caller takes the row-at-a-time path.
    Build rows whose key contains NULL are excluded (SQL join semantics).
    """
    columns = []
    for block in blocks:
        raw = _column_codes_raw(block)
        if raw is None:
            return None
        columns.append(raw)
    if not columns:
        return None
    n = len(columns[0][0])
    combined = np.zeros(n, dtype=np.int64)
    null_row = np.zeros(n, dtype=bool)
    widths: list[int] = []
    compactions: list[tuple[int, np.ndarray]] = []
    radix = 1
    for i, (codes, uniq) in enumerate(columns):
        width = len(uniq) + 1  # +1 slot so null (-1) encodes as 0
        if radix > (2**62) // max(width, 1):
            # Same overflow guard as factorize_keys, but the compaction
            # table is kept so probe pages can replay the mapping.
            table = np.unique(combined)
            compactions.append((i, table))
            combined = np.searchsorted(table, combined).astype(np.int64, copy=False)
            radix = len(table)
        null_row |= codes < 0
        combined = combined * width + (codes + 1)
        widths.append(width)
        radix *= width
    valid_positions = np.flatnonzero(~null_row)
    code_values, inverse = np.unique(combined[valid_positions], return_inverse=True)
    # Stable sort by code keeps ascending original positions within each
    # code — exactly the dict-insertion order of the row-at-a-time build.
    order = np.argsort(inverse, kind="stable")
    flat = valid_positions[order]
    counts = np.bincount(inverse, minlength=len(code_values)).astype(np.int64)
    offsets = np.zeros(len(code_values) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return JoinKeyIndex(
        [uniq for _, uniq in columns],
        widths,
        compactions,
        code_values,
        counts,
        offsets,
        flat,
    )


def take_nullable(block: Block, positions: np.ndarray, null_mask: np.ndarray) -> Block:
    """``block.take`` where ``null_mask`` rows become NULL (outer-join pad)."""
    block = block.loaded()
    safe = np.where(null_mask, 0, positions)
    if isinstance(block, PrimitiveBlock):
        if block.position_count == 0:
            # Build side is empty: every row is padding.
            values = np.zeros(len(positions), dtype=block.values.dtype)
            if values.dtype == object:
                values[:] = None
            return PrimitiveBlock(block.type, values, np.ones(len(positions), bool))
        values = block.values[safe]
        nulls = block.null_mask()[safe] | null_mask
        if values.dtype == object and null_mask.any():
            values = values.copy()
            values[null_mask] = None
        return PrimitiveBlock(block.type, values, nulls)
    if isinstance(block, VarcharBlock):
        if block.position_count == 0:
            return VarcharBlock.all_null(len(positions), block.type)
        taken = block.take(safe)
        nulls = taken.null_mask() | null_mask
        return VarcharBlock(block.type, taken.data, taken.offsets, nulls)
    if isinstance(block, DictionaryBlock):
        if block.position_count == 0:
            ids = np.full(len(positions), -1, dtype=np.int64)
        else:
            ids = np.where(null_mask, -1, block.ids[safe])
        return DictionaryBlock(block.dictionary, ids)
    from repro.core.blocks import block_from_values

    values = [
        None if null_mask[i] else block.get(int(positions[i]))
        for i in range(len(positions))
    ]
    return block_from_values(block.type, values)


# ---------------------------------------------------------------------------
# Sort ranks
# ---------------------------------------------------------------------------


def sort_order(
    blocks: Sequence[Block], ascending_flags: Sequence[bool]
) -> Optional[np.ndarray]:
    """Stable row order for multi-key ORDER BY, or ``None`` to fall back.

    Each key column factorizes to dense ranks; nulls rank above every
    value, so after direction negation they sort last ascending and
    first descending — exactly the ``_SortKey`` total order.
    """
    rank_keys = []
    for block, ascending in zip(blocks, ascending_flags):
        factorized = column_codes(block)
        if factorized is None:
            return None
        codes, uniques = factorized
        ranks = np.where(codes < 0, len(uniques), codes)
        rank_keys.append(ranks if ascending else -ranks)
    if not rank_keys:
        return np.arange(0, dtype=np.int64)
    # np.lexsort treats its *last* key as primary.
    return np.lexsort(rank_keys[::-1]).astype(np.int64, copy=False)
