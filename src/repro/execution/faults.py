"""Deterministic fault injection for staged execution.

The paper's operational sections are about surviving failure — graceful
shutdown (IX), the coordinator bottleneck and gateway federation (VIII),
"Insufficient Resources" (XII.C) — but failures are useless for
experiments unless they are *reproducible*.  The :class:`FaultInjector`
therefore decides every failure by a stable hash of
``(seed, kind, query_id, stage, task, attempt)`` rather than a random
number generator: the same seed always fails the same attempts of the
same tasks, two runs with the same seed produce byte-identical
``QueryStats.task_records``, and sweeping the seed samples independent
failure patterns.  The coin is MD5, not the engine's CRC32
``stable_hash`` — CRC32 is linear, so nearby seeds and task indexes
would fail in correlated pairs instead of independently.

Three levels can fail, each with its own rate and error category:

- **tasks** (``task_failure_rate``) — a whole task attempt in the
  ``StageScheduler`` fails before doing work, default INTERNAL_ERROR
  (a worker died mid-task);
- **splits** (``split_failure_rate``) — reading one assigned connector
  split fails, default EXTERNAL (the storage system refused the read);
- **storage requests** (``storage_failure_rate``) — the adapter from
  :meth:`storage_failure_injector` plugs into the simulated
  ``S3Client(failure_injector=...)`` hook and fails that fraction of
  requests deterministically by call sequence.

Because the retry loop hashes the *attempt number* into the decision, a
failed task usually succeeds on retry — exactly the transient-failure
profile task retries exist for.  Rates of 1.0 make a level always fail,
which is how the tests pin down fail-fast vs retry-to-the-bound behavior.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Callable

from repro.common.errors import ErrorCategory, InjectedFaultError

_HASH_SPACE = 2**64


class FaultInjector:
    """Seeded, hash-driven failure source for tasks, splits, and storage."""

    def __init__(
        self,
        seed: int = 0,
        task_failure_rate: float = 0.0,
        split_failure_rate: float = 0.0,
        storage_failure_rate: float = 0.0,
        pipeline_failure_rate: float = 0.0,
        task_error_category: ErrorCategory = ErrorCategory.INTERNAL_ERROR,
        split_error_category: ErrorCategory = ErrorCategory.EXTERNAL,
    ) -> None:
        for name, rate in (
            ("task_failure_rate", task_failure_rate),
            ("split_failure_rate", split_failure_rate),
            ("storage_failure_rate", storage_failure_rate),
            ("pipeline_failure_rate", pipeline_failure_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.task_failure_rate = task_failure_rate
        self.split_failure_rate = split_failure_rate
        self.storage_failure_rate = storage_failure_rate
        self.pipeline_failure_rate = pipeline_failure_rate
        self.task_error_category = task_error_category
        self.split_error_category = split_error_category
        self.tasks_failed = 0
        self.splits_failed = 0
        self.storage_requests_failed = 0
        self.pipeline_crashes = 0
        self._storage_sequence = itertools.count()

    # -- the deterministic coin ---------------------------------------------

    def _chance(self, *key) -> float:
        """Uniform value in [0, 1) derived only from seed + key."""
        data = repr((self.seed,) + key).encode("utf-8", "surrogatepass")
        digest = hashlib.md5(data).digest()
        return int.from_bytes(digest[:8], "big") / _HASH_SPACE

    # -- task level ----------------------------------------------------------

    def should_fail_task(
        self, query_id: str, stage: int, task: int, attempt: int
    ) -> bool:
        return (
            self._chance("task", query_id, stage, task, attempt)
            < self.task_failure_rate
        )

    def maybe_fail_task(
        self, query_id: str, stage: int, task: int, attempt: int
    ) -> None:
        """Raise an :class:`InjectedFaultError` if this attempt is doomed."""
        if self.should_fail_task(query_id, stage, task, attempt):
            self.tasks_failed += 1
            raise InjectedFaultError(
                f"injected task failure: query {query_id!r} stage {stage} "
                f"task {task} attempt {attempt}",
                category=self.task_error_category,
            )

    # -- split level ---------------------------------------------------------

    def should_fail_split(
        self, query_id: str, stage: int, task: int, split_key: str, attempt: int
    ) -> bool:
        return (
            self._chance("split", query_id, stage, task, split_key, attempt)
            < self.split_failure_rate
        )

    def maybe_fail_split(
        self, query_id: str, stage: int, task: int, split_key: str, attempt: int
    ) -> None:
        if self.should_fail_split(query_id, stage, task, split_key, attempt):
            self.splits_failed += 1
            raise InjectedFaultError(
                f"injected split read failure: query {query_id!r} stage {stage} "
                f"task {task} split {split_key!r} attempt {attempt}",
                category=self.split_error_category,
            )

    # -- pipeline level ------------------------------------------------------
    #
    # Long-running background components (the streaming ingestion pipeline,
    # the compactor) are not task attempts: they crash at *commit-protocol
    # points* — just before appending a batch, just before committing
    # offsets, between writing a data file and committing the snapshot —
    # and then restart and recover.  The coin hashes the component name,
    # the step (poll / compaction cycle), the sub-unit (partition), and the
    # injection point, so a given seed always crashes the same points of
    # the same cycles, independent of wall interleaving.

    def should_crash_pipeline(
        self, component: str, step: int, unit: int, point: str
    ) -> bool:
        return (
            self._chance("pipeline", component, step, unit, point)
            < self.pipeline_failure_rate
        )

    def maybe_crash_pipeline(
        self, component: str, step: int, unit: int, point: str
    ) -> None:
        """Raise an :class:`InjectedFaultError` if this point is doomed."""
        if self.should_crash_pipeline(component, step, unit, point):
            self.pipeline_crashes += 1
            raise InjectedFaultError(
                f"injected pipeline crash: {component} step {step} "
                f"unit {unit} at {point!r}",
                category=ErrorCategory.INTERNAL_ERROR,
            )

    # -- storage level -------------------------------------------------------

    def storage_failure_injector(self) -> Callable[[str], bool]:
        """Adapter for ``S3Client(failure_injector=...)``.

        Each call draws the next value of an internal sequence, so a fixed
        request order (which the simulation guarantees) fails the same
        requests on every run.
        """

        def inject(operation: str) -> bool:
            draw = self._chance("storage", operation, next(self._storage_sequence))
            failed = draw < self.storage_failure_rate
            if failed:
                self.storage_requests_failed += 1
            return failed

        return inject
