"""Plan driver: compiles a plan tree into a pull-based page pipeline."""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import ExecutionError
from repro.core.page import Page
from repro.execution.context import ExecutionContext
from repro.execution.operators import (
    execute_aggregation,
    execute_filter,
    execute_join,
    execute_limit,
    execute_project,
    execute_sort,
    execute_spatial_join,
    execute_table_scan,
    execute_topn,
    execute_values,
)
from repro.planner.fragmenter import RemoteSourceNode
from repro.planner.plan import (
    AggregationNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
    UnionNode,
    ValuesNode,
)


def execute_plan(node: PlanNode, ctx: ExecutionContext) -> Iterator[Page]:
    """Execute ``node``, yielding result pages.

    With a tracer attached, every operator's output rows are accumulated
    into ``ctx.operator_rows`` (plan node id → rows); the scheduler or
    engine renders them as operator spans once the pipeline drains.
    """
    pipeline = _dispatch(node, ctx)
    if ctx.operator_rows is None:
        return pipeline
    # Register eagerly so operators that are never pulled (LIMIT upstream)
    # still appear, with zero rows, in deterministic plan order.
    ctx.operator_rows.setdefault(node.id, 0)
    return _counted(node, ctx, pipeline)


def _counted(node: PlanNode, ctx: ExecutionContext, pipeline: Iterator[Page]) -> Iterator[Page]:
    for page in pipeline:
        ctx.operator_rows[node.id] += page.position_count
        yield page


def record_operator_spans(tracer, root: PlanNode, operator_rows: dict) -> None:
    """Emit one instant operator span per plan node, in pre-order.

    Spans are stamped at the current simulated time (operators do not
    charge simulated time themselves; the task's cost model does) and
    identified by the node's *position* in the plan, not its process-wide
    id, so traces stay byte-identical across runs.
    """
    ordinal = 0

    def walk(node: PlanNode) -> None:
        nonlocal ordinal
        if node.id in operator_rows:
            tracer.instant(
                "operator",
                op=ordinal,
                node=type(node).__name__,
                rows=operator_rows[node.id],
            )
        ordinal += 1
        for source in node.sources():
            walk(source)

    walk(root)


def _dispatch(node: PlanNode, ctx: ExecutionContext) -> Iterator[Page]:
    if isinstance(node, TableScanNode):
        return execute_table_scan(node, ctx)
    if isinstance(node, ValuesNode):
        return execute_values(node, ctx)
    if isinstance(node, FilterNode):
        return execute_filter(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, ProjectNode):
        return execute_project(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, AggregationNode):
        return execute_aggregation(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, JoinNode):
        return execute_join(
            node, ctx, execute_plan(node.left, ctx), execute_plan(node.right, ctx)
        )
    if isinstance(node, SpatialJoinNode):
        return execute_spatial_join(
            node, ctx, execute_plan(node.left, ctx), execute_plan(node.right, ctx)
        )
    if isinstance(node, SortNode):
        return execute_sort(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, TopNNode):
        return execute_topn(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, LimitNode):
        return execute_limit(node, ctx, execute_plan(node.source, ctx))
    if isinstance(node, UnionNode):
        return _execute_union(node, ctx)
    if isinstance(node, RemoteSourceNode):
        return _execute_remote_source(node, ctx)
    if isinstance(node, OutputNode):
        return _execute_output(node, ctx)
    raise ExecutionError(f"no operator for plan node {type(node).__name__}")


def _execute_remote_source(node: RemoteSourceNode, ctx: ExecutionContext) -> Iterator[Page]:
    # Staged execution: the StageScheduler resolved this exchange against
    # the upstream stage's buffer before starting the task.
    if ctx.exchange_inputs is None or node.exchange not in ctx.exchange_inputs:
        raise ExecutionError(
            "RemoteSource outside staged execution: no pages buffered for "
            f"exchange from fragment {node.exchange.source_fragment}"
        )
    yield from ctx.exchange_inputs[node.exchange]


def _execute_union(node: UnionNode, ctx: ExecutionContext) -> Iterator[Page]:
    # UNION ALL: branches stream in order; every branch was projected onto
    # the same output variables, so pages pass through positionally.
    for source in node.union_sources:
        yield from execute_plan(source, ctx)


def _execute_output(node: OutputNode, ctx: ExecutionContext) -> Iterator[Page]:
    visible = len(node.column_names)
    for page in execute_plan(node.source, ctx):
        page = page.loaded()
        if page.channel_count > visible:
            page = page.select_channels(list(range(visible)))
        ctx.stats.rows_output += page.position_count
        yield page
