"""The engine facade: SQL string in, rows out.

Mirrors figure 1 end to end: parse → analyze → optimize → execute.  This
is the object examples and benchmarks interact with; distributed concerns
(clusters, gateways, elasticity) wrap around it in
:mod:`repro.execution.cluster` and :mod:`repro.federation`.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.common.clock import SimulatedClock
from repro.common.errors import ExecutionError, PrestoError
from repro.connectors.spi import Catalog
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.page import Page
from repro.execution.context import ExecutionContext, QueryStats
from repro.execution.driver import execute_plan, record_operator_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace, activate, current_tracer
from repro.planner.analyzer import Analyzer, Session
from repro.planner.optimizer import Optimizer
from repro.planner.plan import OutputNode
from repro.sql import parse_sql


@dataclass
class QueryResult:
    """Materialized query result."""

    column_names: list[str]
    rows: list[tuple]
    stats: QueryStats
    # The query's span tree (None when the engine runs with tracing off).
    trace: Optional[QueryTrace] = None

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.column_names, row)) for row in self.rows]

    def __repr__(self) -> str:
        return f"QueryResult(columns={self.column_names}, rows={len(self.rows)})"


class QueryHandle:
    """A submitted-but-not-finished query: the non-blocking execute.

    Returned by :meth:`PrestoEngine.submit`.  Each :meth:`step` advances
    the underlying :class:`~repro.execution.scheduler.QueryScheduler` by
    exactly one task, so a cluster event loop can interleave many
    queries' tasks on the shared simulated clock.  Driving a handle to
    completion produces a :class:`QueryResult` (and trace) byte-identical
    to the blocking :meth:`PrestoEngine.execute` path — the handle merely
    re-activates its tracer around each step instead of holding it active
    across the whole query.
    """

    def __init__(self, engine: "PrestoEngine", plan, ctx, machine) -> None:
        self._engine = engine
        self._plan = plan
        self.ctx = ctx
        self._machine = machine
        self.trace: Optional[QueryTrace] = ctx.tracer
        self.stats: QueryStats = ctx.stats
        self.query_id: str = ctx.stats.query_id
        self.error: Optional[BaseException] = None
        self._query_span = None
        self._result: Optional[QueryResult] = None

    @classmethod
    def completed(cls, result: QueryResult) -> "QueryHandle":
        """Wrap an already-materialized result (metadata statements)."""
        handle = cls.__new__(cls)
        handle._engine = None
        handle._plan = None
        handle.ctx = None
        handle._machine = None
        handle.trace = result.trace
        handle.stats = result.stats
        handle.query_id = result.stats.query_id
        handle.error = None
        handle._query_span = None
        handle._result = result
        return handle

    # -- state ----------------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._result is not None or self.error is not None

    @property
    def state(self) -> str:
        if self.error is not None:
            return "failed"
        if self._result is not None:
            return "finished"
        return "running"

    def peek_stage(self) -> Optional[int]:
        """Stage the next step will run in (None when nothing remains)."""
        if self._machine is None or self.done:
            return None
        return self._machine.peek_stage()

    # -- driving --------------------------------------------------------------

    def step(self):
        """Run one task; returns its :class:`TaskStep` (None if finished).

        On terminal failure the error is recorded on :attr:`error` *and*
        raised, mirroring the blocking path's exception behavior.
        """
        if self.done or self._machine is None:
            return None
        tracer = self.trace
        with activate(tracer) if tracer is not None else nullcontext():
            if tracer is not None and self._query_span is None:
                self._query_span = tracer.open_span(
                    "query", query_id=self.query_id, path="staged"
                )
            try:
                step = self._machine.step()
            except PrestoError as error:
                self.error = error
                if tracer is not None and self._query_span is not None:
                    tracer.close_span(self._query_span)
                raise
        if self._machine.done:
            self._finalize()
        return step

    def _finalize(self) -> None:
        rows: list[tuple] = []
        for page in self._machine.result_pages:
            rows.extend(page.rows())
        tracer = self.trace
        if tracer is not None:
            if self._query_span is not None:
                tracer.close_span(self._query_span)
            self._engine.metrics.histogram("query_simulated_ms").observe(
                self.ctx.stats.simulated_ms
            )
        self._result = QueryResult(
            list(self._plan.column_names), rows, self.ctx.stats, trace=tracer
        )

    def run_to_completion(self) -> QueryResult:
        """Block until done; the legacy execute path is exactly this."""
        while not self.done:
            self.step()
        return self.result()

    def result(self) -> QueryResult:
        """The materialized result; raises the query's error if it failed."""
        if self.error is not None:
            raise self.error
        if self._result is None:
            raise ExecutionError(
                f"{self.query_id} still running; step it (or run_to_completion)"
            )
        return self._result


class PrestoEngine:
    """A single-coordinator query engine over a catalog of connectors."""

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        session: Optional[Session] = None,
        registry: Optional[FunctionRegistry] = None,
        clock: Optional[SimulatedClock] = None,
        max_build_rows: int = 10_000_000,
        enable_optimizer: bool = True,
        fragment_result_cache=None,
        staged_execution: bool = True,
        hash_partitions: int = 4,
        fault_injector=None,
        max_task_retries: int = 3,
        retry_backoff_ms: float = 10.0,
        task_timeout_ms: Optional[float] = None,
        enable_dynamic_filtering: bool = True,
        adaptive_partitioning: bool = False,
        target_partition_rows: Optional[int] = None,
        evaluator_options=None,
        metrics: Optional[MetricsRegistry] = None,
        tracing: bool = True,
    ) -> None:
        # The geospatial plugin registers its functions on import
        # (section VI.E: "Using the Presto plugin framework").
        import repro.geo.functions  # noqa: F401

        self.catalog = catalog or Catalog()
        self.session = session or Session()
        self.registry = registry or default_registry()
        self.clock = clock
        self.max_build_rows = max_build_rows
        self.fragment_result_cache = fragment_result_cache
        # Staged execution (section III): execute() fragments the plan and
        # runs it stage by stage through exchanges.  The direct pipeline
        # stays available as execute_direct(), the differential oracle.
        self.staged_execution = staged_execution
        self.hash_partitions = hash_partitions
        # Fault tolerance (sections VIII/IX/XII.C): an optional seeded
        # FaultInjector dooms a deterministic fraction of task attempts;
        # the StageScheduler retries retryable failures up to
        # max_task_retries with exponential simulated backoff.
        self.fault_injector = fault_injector
        self.max_task_retries = max_task_retries
        self.retry_backoff_ms = retry_backoff_ms
        self.task_timeout_ms = task_timeout_ms
        # Adaptive execution: push each hash join's build-side key summary
        # into not-yet-started probe scans (staged execution only).
        self.enable_dynamic_filtering = enable_dynamic_filtering
        # Adaptive exchange sizing: choose each hash stage's partition
        # count from the observed input volume instead of always running
        # hash_partitions tasks.  Off by default — it changes task counts
        # (and thus the simulated schedule), not results.
        self.adaptive_partitioning = adaptive_partitioning
        self.target_partition_rows = target_partition_rows
        # Expression-evaluation lane: compiled kernel DAGs by default,
        # EvaluatorOptions(mode="interpreted") for the row-at-a-time oracle.
        from repro.core.compiler import EvaluatorOptions

        self.evaluator_options = evaluator_options or EvaluatorOptions()
        # Observability (on by default): every query gets a deterministic
        # span tree on ``QueryResult.trace``, and the engine's components
        # report into one shared metrics registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracing = tracing
        if self.fragment_result_cache is not None and hasattr(
            self.fragment_result_cache, "bind_metrics"
        ):
            self.fragment_result_cache.bind_metrics(self.metrics)
        self._query_sequence = itertools.count()
        # Simulated control-plane costs charged per query when a clock is
        # attached: coordinator parse/plan/schedule plus result streaming.
        self.coordinator_overhead_ms = 15.0
        self._optimizer = Optimizer(self.catalog, self.registry) if enable_optimizer else None

    # -- public API ----------------------------------------------------------

    def register_connector(self, catalog_name: str, connector) -> None:
        self.catalog.register(catalog_name, connector)

    def plan(self, sql: str) -> OutputNode:
        """Parse, analyze and optimize ``sql``, returning the final plan."""
        query = parse_sql(sql)
        analyzer = Analyzer(self.catalog, self.session, self.registry)
        plan = analyzer.analyze(query)
        if self._optimizer is not None:
            plan = self._optimizer.optimize(plan, self.session)
        return plan

    def explain(self, sql: str) -> str:
        """EXPLAIN-style rendering of the optimized plan.

        Nodes whose subtree has ANALYZE statistics carry an estimated row
        count; un-analyzed plans render exactly as before.
        """
        from repro.planner.cost import CostEstimator
        from repro.planner.stats import StatsProvider

        estimator = CostEstimator(StatsProvider(self.catalog))

        def annotate(node) -> str:
            estimate = estimator.estimate(node)
            if estimate is None:
                return ""
            return f"{{rows: {_format_row_estimate(estimate.row_count)}}}"

        return self.plan(sql).pretty(annotate=annotate)

    def explain_distributed(self, sql: str) -> str:
        """EXPLAIN (TYPE DISTRIBUTED): the plan divided into fragments.

        Shows the stages of section III — where partial aggregations run,
        where the build side of a join is exchanged, where results gather.
        """
        from repro.planner.fragmenter import Fragmenter

        return Fragmenter().fragment(self.plan(sql)).describe()

    def execute(self, sql: str) -> QueryResult:
        """Run ``sql`` to completion and materialize the result.

        SELECT queries run through staged execution by default: the plan
        is fragmented (section III), each fragment runs as a stage of
        tasks, and pages move between stages over exchange buffers.  Pass
        ``staged_execution=False`` to the engine (or call
        :meth:`execute_direct`) for the single-pipeline path.

        Besides SELECT queries, the metadata statements are supported:
        ``EXPLAIN [ANALYZE | (TYPE DISTRIBUTED)] <query>``,
        ``SHOW CATALOGS``, ``SHOW SCHEMAS [FROM catalog]``, ``SHOW TABLES
        [FROM catalog.schema]``, and ``DESCRIBE <table>``.
        """
        statement = _match_metadata_statement(sql)
        if statement is not None:
            return statement(self)
        if self.staged_execution:
            return self._execute_staged(self.plan(sql))
        return self._execute_pipeline(self.plan(sql))

    def execute_direct(self, sql: str) -> QueryResult:
        """Run ``sql`` through the single in-process pipeline.

        The pre-staged execution path, retained as the differential
        oracle (the convention the operator kernels also follow): staged
        and direct execution must return the same rows.
        """
        statement = _match_metadata_statement(sql)
        if statement is not None:
            return statement(self)
        return self._execute_pipeline(self.plan(sql))

    def execute_staged(self, sql: str) -> QueryResult:
        """Run ``sql`` through fragments, stages, tasks and exchanges."""
        return self._execute_staged(self.plan(sql))

    def submit(self, sql: str) -> QueryHandle:
        """Non-blocking submit: plan ``sql`` and return a steppable handle.

        Planning/analysis runs eagerly (it is coordinator work and can
        raise USER_ERRORs synchronously, as Presto's POST /v1/statement
        does); execution advances only as the caller — normally a
        cluster's event loop — steps the handle.  Metadata statements
        complete immediately.
        """
        statement = _match_metadata_statement(sql)
        if statement is not None:
            return QueryHandle.completed(statement(self))
        return self._submit_plan(self.plan(sql))

    def _submit_plan(self, plan: OutputNode) -> QueryHandle:
        from repro.execution.scheduler import StageScheduler
        from repro.planner.fragmenter import Fragmenter

        fragmented = Fragmenter().fragment(plan)
        ctx = self._fresh_context()
        scheduler = StageScheduler(
            ctx,
            hash_partitions=self.hash_partitions,
            fault_injector=self.fault_injector,
            max_task_retries=self.max_task_retries,
            retry_backoff_ms=self.retry_backoff_ms,
            task_timeout_ms=self.task_timeout_ms,
            dynamic_filtering=self.enable_dynamic_filtering,
            adaptive_partitioning=self.adaptive_partitioning,
            **(
                {"target_partition_rows": self.target_partition_rows}
                if self.target_partition_rows is not None
                else {}
            ),
        )
        return QueryHandle(self, plan, ctx, scheduler.start(fragmented))

    # -- internals -----------------------------------------------------------

    def _fresh_context(self) -> ExecutionContext:
        if self.clock is not None:
            self.clock.advance(self.coordinator_overhead_ms)
        tracer = None
        if self.tracing:
            # Inside a gateway/cluster submission the trace already exists
            # (with routing and admission spans open); the engine's spans
            # nest under it.  Standalone queries get their own tree.
            tracer = current_tracer()
            if tracer is None:
                tracer = QueryTrace()
        stats = QueryStats(query_id=f"query-{next(self._query_sequence)}")
        self.metrics.counter("engine_queries_total").inc()
        return ExecutionContext(
            catalog=self.catalog,
            session=self.session,
            registry=self.registry,
            clock=self.clock,
            max_build_rows=self.max_build_rows,
            fragment_cache=self.fragment_result_cache,
            stats=stats,
            evaluator_options=self.evaluator_options,
            tracer=tracer,
            metrics=self.metrics,
        )

    def _execute_pipeline(self, plan: OutputNode) -> QueryResult:
        ctx = self._fresh_context()
        rows: list[tuple] = []
        if ctx.tracer is None:
            for page in execute_plan(plan, ctx):
                rows.extend(page.rows())
            return QueryResult(list(plan.column_names), rows, ctx.stats)
        tracer = ctx.tracer
        ctx.operator_rows = {}
        with activate(tracer), tracer.span(
            "query", query_id=ctx.stats.query_id, path="direct"
        ):
            try:
                for page in execute_plan(plan, ctx):
                    rows.extend(page.rows())
            finally:
                record_operator_spans(tracer, plan, ctx.operator_rows)
        return QueryResult(list(plan.column_names), rows, ctx.stats, trace=tracer)

    def _execute_staged(self, plan: OutputNode) -> QueryResult:
        # The blocking path is the steppable path driven to completion in
        # one go — one code path, so traces/stats cannot drift between
        # single-query and concurrent execution.
        return self._submit_plan(plan).run_to_completion()

    def explain_analyze(self, sql: str) -> str:
        """EXPLAIN ANALYZE: run staged, report per-stage execution stats."""
        plan = self.plan(sql)
        from repro.planner.fragmenter import Fragmenter

        fragmented = Fragmenter().fragment(plan)
        result = self._execute_staged(plan)
        stats = result.stats
        lines = [
            f"Query: {stats.stages_total} stages, {stats.tasks_total} tasks "
            f"({stats.tasks_retried} retried, {stats.tasks_failed} failed), "
            f"{stats.rows_exchanged} rows exchanged, "
            f"{stats.simulated_ms:.2f} simulated ms",
            f"Expressions: {stats.expr_positions_vectorized} positions vectorized, "
            f"{stats.expr_positions_fallback} interpreter fallback, "
            f"{stats.expr_positions_dictionary_saved} saved by dictionary evaluation",
        ]
        if stats.dynamic_filters_built:
            skipped = (
                stats.row_groups_skipped_by_stats
                + stats.row_groups_skipped_by_dictionary
                + stats.row_groups_skipped_by_dynamic_filter
            )
            lines.append(
                f"Dynamic filters: {stats.dynamic_filters_built} built, "
                f"{stats.dynamic_filter_splits_skipped} splits skipped, "
                f"{stats.row_groups_skipped_by_dynamic_filter}/"
                f"{stats.row_groups_total} row groups skipped "
                f"({skipped} by all pruning tiers), "
                f"{stats.dynamic_filter_rows_pruned} rows pruned at scan"
            )
        for summary in reversed(stats.stage_summaries):
            fragment = fragmented.fragment_by_id(summary["stage"])
            lines.append(
                f"Stage {summary['stage']} [{summary['distribution']}]: "
                f"{summary['tasks']} tasks, rows in {summary['rows_in']}, "
                f"rows out {summary['rows_out']}, "
                f"{summary['sim_ms']:.2f} simulated ms"
            )
            lines.extend("  " + line for line in fragment.root.pretty().splitlines())
        if result.trace is not None:
            query_spans = result.trace.find("query")
            if query_spans:
                entries = result.trace.critical_path(query_spans[0])
                total = sum(entry.contribution_ms for entry in entries)
                lines.append(f"Critical path: {total:.2f} simulated ms")
                for entry in entries:
                    attrs = ", ".join(
                        f"{key}={value}"
                        for key, value in sorted(entry.span.attributes.items())
                    )
                    lines.append(
                        f"  {entry.span.name} [{attrs}]: "
                        f"{entry.contribution_ms:.2f} ms"
                    )
        return "\n".join(lines)


def _format_row_estimate(rows: float) -> str:
    if rows >= 100 or rows == int(rows):
        return str(int(round(rows)))
    return f"{rows:.2f}"


def _match_metadata_statement(sql: str):
    """Recognize EXPLAIN / SHOW / DESCRIBE; returns a handler or None."""
    import re

    stripped = sql.strip().rstrip(";")
    lowered = stripped.lower()

    analyze = re.match(r"explain\s+analyze\s+(.*)", stripped, re.IGNORECASE | re.DOTALL)
    if analyze:
        inner = analyze.group(1)

        def run_explain_analyze(engine: "PrestoEngine") -> QueryResult:
            text = engine.explain_analyze(inner)
            return QueryResult(
                ["Query Plan"], [(line,) for line in text.splitlines()], QueryStats()
            )

        return run_explain_analyze

    explain = re.match(
        r"explain\s*(\(\s*type\s+distributed\s*\))?\s+(.*)", stripped, re.IGNORECASE | re.DOTALL
    )
    if explain:
        distributed = explain.group(1) is not None
        inner = explain.group(2)

        def run_explain(engine: "PrestoEngine") -> QueryResult:
            text = (
                engine.explain_distributed(inner) if distributed else engine.explain(inner)
            )
            return QueryResult(
                ["Query Plan"], [(line,) for line in text.splitlines()], QueryStats()
            )

        return run_explain

    if lowered == "show catalogs":
        def run_show_catalogs(engine: "PrestoEngine") -> QueryResult:
            rows = [(name,) for name in engine.catalog.catalog_names()]
            return QueryResult(["Catalog"], rows, QueryStats())

        return run_show_catalogs

    # SHOW keyword matching is case-insensitive, but catalog/schema
    # identifiers are matched against the *original* string so their case
    # survives (``SHOW SCHEMAS FROM MyCatalog`` must look up "MyCatalog",
    # not "mycatalog").
    schemas = re.match(r"show\s+schemas(?:\s+from\s+(\w+))?$", stripped, re.IGNORECASE)
    if schemas:
        def run_show_schemas(engine: "PrestoEngine") -> QueryResult:
            catalog_name = schemas.group(1) or engine.session.catalog
            if catalog_name is None:
                from repro.common.errors import SemanticError

                raise SemanticError("SHOW SCHEMAS requires a catalog")
            metadata = engine.catalog.connector(catalog_name).metadata()
            return QueryResult(
                ["Schema"], [(s,) for s in metadata.list_schemas()], QueryStats()
            )

        return run_show_schemas

    tables = re.match(
        r"show\s+tables(?:\s+from\s+(\w+)(?:\.(\w+))?)?$", stripped, re.IGNORECASE
    )
    if tables:
        def run_show_tables(engine: "PrestoEngine") -> QueryResult:
            from repro.common.errors import SemanticError

            if tables.group(2):
                catalog_name, schema_name = tables.group(1), tables.group(2)
            elif tables.group(1):
                catalog_name, schema_name = engine.session.catalog, tables.group(1)
            else:
                catalog_name, schema_name = engine.session.catalog, engine.session.schema
            if catalog_name is None or schema_name is None:
                raise SemanticError("SHOW TABLES requires a catalog and schema")
            metadata = engine.catalog.connector(catalog_name).metadata()
            return QueryResult(
                ["Table"],
                [(t,) for t in metadata.list_tables(schema_name)],
                QueryStats(),
            )

        return run_show_tables

    analyze_table = re.match(
        r"analyze\s+(?:table\s+)?([\w.\"$=]+)$", stripped, re.IGNORECASE
    )
    if analyze_table:
        def run_analyze(engine: "PrestoEngine") -> QueryResult:
            from repro.common.errors import SemanticError
            from repro.planner.analyzer import Analyzer
            from repro.sql import parse_sql as _parse

            probe = _parse(f"SELECT count(*) FROM {analyze_table.group(1)}")
            reference = probe.from_relation
            analyzer = Analyzer(engine.catalog, engine.session, engine.registry)
            catalog_name, schema_name, table_name = analyzer.qualify(reference.parts)
            metadata = engine.catalog.connector(catalog_name).metadata()
            handle = metadata.get_table_handle(schema_name, table_name)
            if handle is None:
                raise SemanticError(
                    f"table {catalog_name}.{schema_name}.{table_name} does not exist"
                )
            statistics = metadata.collect_table_statistics(handle)
            if statistics is None:
                raise SemanticError(
                    f"connector {catalog_name!r} does not support ANALYZE"
                )
            engine.metrics.counter("engine_tables_analyzed_total").inc()
            return QueryResult(
                ["Table", "Rows", "Columns Analyzed"],
                [
                    (
                        f"{catalog_name}.{schema_name}.{table_name}",
                        statistics.row_count,
                        len(statistics.columns),
                    )
                ],
                QueryStats(),
            )

        return run_analyze

    describe = re.match(r"(?:describe|desc)\s+([\w.\"$=]+)$", stripped, re.IGNORECASE)
    if describe:
        def run_describe(engine: "PrestoEngine") -> QueryResult:
            from repro.common.errors import SemanticError
            from repro.planner.analyzer import Analyzer
            from repro.sql import parse_sql as _parse

            # Reuse SELECT name resolution by parsing a probe query.
            probe = _parse(f"SELECT count(*) FROM {describe.group(1)}")
            reference = probe.from_relation
            analyzer = Analyzer(engine.catalog, engine.session, engine.registry)
            catalog_name, schema_name, table_name = analyzer.qualify(reference.parts)
            metadata = engine.catalog.connector(catalog_name).metadata()
            handle = metadata.get_table_handle(schema_name, table_name)
            if handle is None:
                raise SemanticError(
                    f"table {catalog_name}.{schema_name}.{table_name} does not exist"
                )
            table_metadata = metadata.get_table_metadata(handle)
            rows = [(c.name, c.type.display()) for c in table_metadata.columns]
            return QueryResult(["Column", "Type"], rows, QueryStats())

        return run_describe

    return None
