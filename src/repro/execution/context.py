"""Execution context shared by all operators of one query."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.clock import SimulatedClock
from repro.connectors.spi import Catalog
from repro.core.evaluator import Evaluator
from repro.core.functions import FunctionRegistry, default_registry
from repro.planner.analyzer import Session


@dataclass
class QueryStats:
    """Counters accumulated while a query runs."""

    splits_scanned: int = 0
    rows_scanned: int = 0
    pages_produced: int = 0
    rows_output: int = 0
    peak_build_rows: int = 0
    fragment_cache_hits: int = 0
    # Operator-kernel counters (section III): rows that went through the
    # vectorized group-by/join/sort kernels vs the row-at-a-time fallback.
    rows_processed_vectorized: int = 0
    rows_processed_fallback: int = 0

    def as_dict(self) -> dict:
        return {
            "splits_scanned": self.splits_scanned,
            "rows_scanned": self.rows_scanned,
            "pages_produced": self.pages_produced,
            "rows_output": self.rows_output,
            "peak_build_rows": self.peak_build_rows,
            "fragment_cache_hits": self.fragment_cache_hits,
            "rows_processed_vectorized": self.rows_processed_vectorized,
            "rows_processed_fallback": self.rows_processed_fallback,
        }


@dataclass
class ExecutionContext:
    """Everything an operator needs: catalog, evaluator, session, limits.

    ``max_build_rows`` models cluster memory for join build sides; exceeding
    it raises ``InsufficientResourcesError``, reproducing the
    "Insufficient Resource" failures of section XII.C.
    """

    catalog: Catalog
    session: Session = field(default_factory=Session)
    registry: FunctionRegistry = field(default_factory=default_registry)
    clock: Optional[SimulatedClock] = None
    max_build_rows: int = 10_000_000
    stats: QueryStats = field(default_factory=QueryStats)
    # Fragment result cache (section VII): caches per-(leaf fragment,
    # split) pages, keyed additionally by the split's data version.
    fragment_cache: Optional[object] = None

    _evaluator: Optional[Evaluator] = None

    @property
    def evaluator(self) -> Evaluator:
        if self._evaluator is None:
            self._evaluator = Evaluator(self.registry)
        return self._evaluator
