"""Execution context shared by all operators of one query."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.clock import SimulatedClock
from repro.connectors.spi import Catalog
from repro.core.compiler import EvaluatorOptions
from repro.core.evaluator import Evaluator
from repro.core.functions import FunctionRegistry, default_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import QueryTrace
from repro.planner.analyzer import Session


@dataclass
class QueryStats:
    """Counters accumulated while a query runs."""

    # Engine-assigned query id; threads through task records into the
    # cluster simulation so cluster-side work joins back to the query.
    query_id: str = ""
    splits_scanned: int = 0
    rows_scanned: int = 0
    pages_produced: int = 0
    rows_output: int = 0
    peak_build_rows: int = 0
    fragment_cache_hits: int = 0
    # Operator-kernel counters (section III): rows that went through the
    # vectorized group-by/join/sort kernels vs the row-at-a-time fallback.
    rows_processed_vectorized: int = 0
    rows_processed_fallback: int = 0
    # Staged execution counters (section III: fragments → stages → tasks):
    # filled by the StageScheduler when a query runs fragmented.
    stages_total: int = 0
    tasks_total: int = 0
    rows_exchanged: int = 0
    simulated_ms: float = 0.0
    # Fault tolerance (sections VIII/IX/XII.C): task attempts that failed
    # terminally and attempts that were retried after a retryable error.
    tasks_failed: int = 0
    tasks_retried: int = 0
    # Parquet row-group accounting, harvested from reader statistics by the
    # scan operator: how many groups each skip tier eliminated.
    row_groups_total: int = 0
    row_groups_skipped_by_stats: int = 0
    row_groups_skipped_by_dictionary: int = 0
    row_groups_skipped_by_dynamic_filter: int = 0
    # Runtime dynamic filters (adaptive execution): filters built from
    # completed join build sides, rows pruned by page-level masking, and
    # splits skipped outright at enumeration.
    dynamic_filters_built: int = 0
    dynamic_filter_rows_pruned: int = 0
    dynamic_filter_splits_skipped: int = 0
    # Expression-compiler counters: positions evaluated by vectorized
    # kernels vs positions that dropped to the row-at-a-time interpreter,
    # and positions *not* evaluated at all thanks to dictionary-aware
    # evaluation (rows − distinct per dictionary-encoded expression run).
    expr_positions_vectorized: int = 0
    expr_positions_fallback: int = 0
    expr_positions_dictionary_saved: int = 0
    # One dict per stage: fragment id, distribution, task count, rows in/
    # out, simulated milliseconds.  Rendered by EXPLAIN ANALYZE.
    stage_summaries: list = field(default_factory=list)
    # One dict per task: stage, task index, split count, rows in/out, the
    # data key driving affinity scheduling, and the simulated duration.
    # PrestoClusterSim.submit_engine_query turns these into SplitWork.
    task_records: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "splits_scanned": self.splits_scanned,
            "rows_scanned": self.rows_scanned,
            "pages_produced": self.pages_produced,
            "rows_output": self.rows_output,
            "peak_build_rows": self.peak_build_rows,
            "fragment_cache_hits": self.fragment_cache_hits,
            "rows_processed_vectorized": self.rows_processed_vectorized,
            "rows_processed_fallback": self.rows_processed_fallback,
            "stages_total": self.stages_total,
            "tasks_total": self.tasks_total,
            "rows_exchanged": self.rows_exchanged,
            "simulated_ms": self.simulated_ms,
            "tasks_failed": self.tasks_failed,
            "tasks_retried": self.tasks_retried,
            "row_groups_total": self.row_groups_total,
            "row_groups_skipped_by_stats": self.row_groups_skipped_by_stats,
            "row_groups_skipped_by_dictionary": self.row_groups_skipped_by_dictionary,
            "row_groups_skipped_by_dynamic_filter": self.row_groups_skipped_by_dynamic_filter,
            "dynamic_filters_built": self.dynamic_filters_built,
            "dynamic_filter_rows_pruned": self.dynamic_filter_rows_pruned,
            "dynamic_filter_splits_skipped": self.dynamic_filter_splits_skipped,
            "expr_positions_vectorized": self.expr_positions_vectorized,
            "expr_positions_fallback": self.expr_positions_fallback,
            "expr_positions_dictionary_saved": self.expr_positions_dictionary_saved,
            "stage_summaries": list(self.stage_summaries),
        }


@dataclass
class ExecutionContext:
    """Everything an operator needs: catalog, evaluator, session, limits.

    ``max_build_rows`` models cluster memory for join build sides; exceeding
    it raises ``InsufficientResourcesError``, reproducing the
    "Insufficient Resource" failures of section XII.C.

    During staged execution the StageScheduler derives one shallow copy of
    the query context per task (sharing ``stats``): ``scan_splits`` pins
    each table scan to the task's assigned connector splits, and
    ``exchange_inputs`` resolves the task's RemoteSource leaves to pages
    buffered by upstream stages.  Both are ``None`` on the direct
    (single-pipeline) path.
    """

    catalog: Catalog
    session: Session = field(default_factory=Session)
    registry: FunctionRegistry = field(default_factory=default_registry)
    clock: Optional[SimulatedClock] = None
    max_build_rows: int = 10_000_000
    stats: QueryStats = field(default_factory=QueryStats)
    # Fragment result cache (section VII): caches per-(leaf fragment,
    # split) pages, keyed additionally by the split's data version.
    fragment_cache: Optional[object] = None
    # Staged execution, per task: TableScanNode id -> assigned splits.
    scan_splits: Optional[dict] = None
    # Staged execution, per task: Exchange -> list of input pages.
    exchange_inputs: Optional[dict] = None
    # Runtime dynamic filters, shared by every task of the query:
    # TableScanNode id -> DynamicFilterSet.  The QueryScheduler fills it
    # when a join's build side completes, before the probe stage's tasks
    # are planned; task contexts share the dict by reference.
    dynamic_filters: Optional[dict] = None
    # Expression-evaluation lane (compiled vs interpreted oracle) and its
    # optimization toggles; shared by every operator of the query.
    evaluator_options: EvaluatorOptions = field(default_factory=EvaluatorOptions)
    # Observability: the query's span tracer (one deterministic span tree
    # per query, stamped from its own simulated clock) and the engine's
    # metrics registry.  Both optional — None disables instrumentation.
    tracer: Optional[QueryTrace] = None
    metrics: Optional[MetricsRegistry] = None
    # Per-pipeline operator row accounting: plan node id -> rows produced.
    # The driver fills it when a tracer is attached; the scheduler (staged)
    # or engine (direct) turns it into operator spans after the pipeline
    # drains, so lazily-abandoned iterators (LIMIT) still account.
    operator_rows: Optional[dict] = None

    _evaluator: Optional[Evaluator] = None

    @property
    def evaluator(self) -> Evaluator:
        if self._evaluator is None:
            self._evaluator = Evaluator(
                self.registry, options=self.evaluator_options, stats=self.stats
            )
        return self._evaluator
