"""Deterministic span tracing on the simulated clock.

A :class:`QueryTrace` owns a private :class:`~repro.common.clock.
SimulatedClock` anchored at 0 and a flat list of :class:`Span` records
with parent/child links.  Components *charge* simulated time to the trace
clock (``advance``) and *stamp* spans from it (``span``/``instant``), so
for a given seed the serialized trace is byte-identical across runs —
span ids are a per-trace sequence, timestamps come only from deterministic
simulated charges, and serialization sorts every key.

The tree mirrors the paper's execution hierarchy: gateway routing →
cluster admission → stage → task attempt → operator → cache/storage
access.  The currently active trace is discoverable process-wide via
:func:`current_tracer` (a plain stack — the reproduction is single
threaded), which is how deep substrates like the simulated NameNode or S3
client attach storage-access spans to whatever query is running without
threading a tracer argument through every call.

``critical_path`` follows the chain of latest-ending spans from the root
down; each entry's *contribution* is its span's duration minus the chosen
child's, so the contributions telescope to exactly the root span's
duration — for a staged query, the total simulated milliseconds.
"""

from __future__ import annotations

import itertools
import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.common.clock import SimulatedClock


@dataclass
class Span:
    """One timed interval of a query's execution."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ms: float
    end_ms: Optional[float] = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return (self.end_ms if self.end_ms is not None else self.start_ms) - self.start_ms

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "attributes": dict(self.attributes),
        }


@dataclass
class CriticalPathEntry:
    """One hop of the critical path: a span and its exclusive contribution."""

    span: Span
    contribution_ms: float


class QueryTrace:
    """A deterministic span tree stamped from a simulated clock."""

    def __init__(self, clock: Optional[SimulatedClock] = None) -> None:
        self.clock = clock or SimulatedClock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count()

    # -- clock ----------------------------------------------------------------

    def now_ms(self) -> float:
        return self.clock.now_ms()

    def advance(self, delta_ms: float) -> float:
        """Charge simulated time inside the currently open span."""
        return self.clock.advance(delta_ms)

    # -- span recording -------------------------------------------------------

    def _open(self, name: str, attributes: dict) -> Span:
        span = Span(
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start_ms=self.now_ms(),
            attributes=attributes,
        )
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of the current span; closes on exit (or error)."""
        span = self._open(name, attributes)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end_ms = self.now_ms()

    def instant(self, name: str, **attributes: Any) -> Span:
        """A zero-duration span at the current simulated time."""
        span = self._open(name, attributes)
        span.end_ms = span.start_ms
        return span

    # -- manual span management ----------------------------------------------
    #
    # The context-manager form assumes the span's whole lifetime fits one
    # Python scope.  Steppable execution (the concurrent scheduler) opens a
    # query/stage span in one step and closes it many steps later, so these
    # expose the same push/pop the context manager performs, explicitly.

    def open_span(self, name: str, **attributes: Any) -> Span:
        """Open a span that stays open across calls; pair with close_span."""
        span = self._open(name, attributes)
        self._stack.append(span)
        return span

    def close_span(self, span: Span) -> Span:
        """Close a span opened by :meth:`open_span`, stamping its end time."""
        if span in self._stack:
            # Normally the top of the stack; removing by identity tolerates
            # an error path closing an outer span before inner cleanup ran.
            self._stack.remove(span)
        if span.end_ms is None:
            span.end_ms = self.now_ms()
        return span

    def add_span(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Record a completed span with explicit timestamps.

        Unlike :meth:`span`, the interval is caller-provided, so recorded
        spans may overlap — how the cluster timeline shows many queries in
        flight at once on the shared simulated clock.
        """
        span = Span(
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_ms=start_ms,
            end_ms=end_ms,
            attributes=attributes,
        )
        self.spans.append(span)
        return span

    @property
    def root(self) -> Optional[Span]:
        return self.spans[0] if self.spans else None

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    # -- critical path --------------------------------------------------------

    def critical_path(self, span: Optional[Span] = None) -> list[CriticalPathEntry]:
        """The chain of latest-ending spans from ``span`` (default root) down.

        Each entry's contribution is its duration minus the chosen child's,
        so the contributions sum exactly to the starting span's duration —
        the simulated schedule is sequential, hence everything on the chain
        is critical.
        """
        current = span if span is not None else self.root
        if current is None:
            return []
        path: list[CriticalPathEntry] = []
        while True:
            kids = [c for c in self.children(current) if c.end_ms is not None]
            if not kids:
                path.append(CriticalPathEntry(current, current.duration_ms))
                return path
            chosen = max(kids, key=lambda c: (c.end_ms, c.span_id))
            path.append(
                CriticalPathEntry(current, current.duration_ms - chosen.duration_ms)
            )
            current = chosen

    def critical_path_ms(self, span: Optional[Span] = None) -> float:
        return sum(entry.contribution_ms for entry in self.critical_path(span))

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"spans": [span.to_dict() for span in self.spans]}

    def to_json(self, indent: Optional[int] = None) -> str:
        """Deterministic JSON: sorted keys, spans in creation order."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent, default=repr)


# -- active-trace discovery ----------------------------------------------------

_ACTIVE: list[QueryTrace] = []


def current_tracer() -> Optional[QueryTrace]:
    """The innermost active trace, or None outside any traced request."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def activate(tracer: QueryTrace) -> Iterator[QueryTrace]:
    """Make ``tracer`` discoverable via :func:`current_tracer`."""
    _ACTIVE.append(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.pop()
