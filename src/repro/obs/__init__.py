"""Observability: deterministic query tracing and a metrics registry.

The paper's operators could only run Presto at scale because they could
*see* it — per-query metrics, stage/task breakdowns, cache hit rates and
retry counts drive every capacity and routing decision.  This package is
that layer for the reproduction:

- :mod:`repro.obs.trace` — a span tracer.  Every query produces a
  deterministic span tree (gateway routing → cluster admission → stage →
  task attempt → operator → cache/storage access) stamped from the
  simulated clock, so traces are byte-identical across runs for a given
  seed.  ``EXPLAIN ANALYZE`` renders the critical path.
- :mod:`repro.obs.metrics` — named counters, gauges and fixed-bucket
  histograms with labels (query id, stage, connector, cache name),
  snapshot-able as a plain dict and dumpable as JSON from the CLI.

Both are pure added instrumentation: query results are identical with
tracing on or off, and the differential oracles (``execute_direct``, the
interpreted evaluator) stay reachable with tracing enabled.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import QueryTrace, Span, activate, current_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QueryTrace",
    "Span",
    "activate",
    "current_tracer",
]
