"""A labeled metrics registry: counters, gauges, fixed-bucket histograms.

The reproduction's equivalent of the per-query metrics, cache hit rates
and retry counts the paper's operators run Presto by (see also the
Twitter hybrid-cloud and metadata-caching follow-ups, which report
cache-hit and latency metrics as first-class outputs).  Instruments are
named following the Prometheus convention (``snake_case`` with a
``_total`` suffix for counters) and carry a small label set — query id,
stage, connector, cache name — so one registry serves scheduler,
exchange, cache, storage and gateway series side by side.

Snapshots are plain dicts with deterministically ordered entries, so two
runs of the same seeded workload serialize byte-identically; the CLI
dumps them as JSON (``--metrics``).
"""

from __future__ import annotations

import json
from typing import Iterator, Optional, Sequence

LabelKey = tuple[tuple[str, str], ...]

# Simulated milliseconds spread several orders of magnitude; one shared
# fixed bucket ladder keeps histograms comparable across instruments.
DEFAULT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0,
                                      250.0, 500.0, 1000.0, 2500.0, 5000.0)


def _label_key(labels: dict) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter can only increase, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. live cache entries)."""

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts plus sum/count."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Named, labeled instruments; get-or-create on access."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    # -- instrument access ----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(buckets or DEFAULT_BUCKETS)
        return histogram

    # -- aggregation ----------------------------------------------------------

    def _matching(
        self, table: dict, name: str, labels: dict
    ) -> Iterator[tuple[LabelKey, object]]:
        wanted = set(_label_key(labels))
        for (metric_name, label_key), instrument in table.items():
            if metric_name == name and wanted.issubset(set(label_key)):
                yield label_key, instrument

    def total(self, name: str, **labels: object) -> float:
        """Sum of all counter series of ``name`` matching the label subset."""
        return sum(
            instrument.value
            for _, instrument in self._matching(self._counters, name, labels)
        )

    def series(self, name: str, **labels: object) -> list[tuple[dict, float]]:
        """(labels, value) for each counter series matching the subset."""
        return [
            (dict(label_key), instrument.value)
            for label_key, instrument in sorted(
                self._matching(self._counters, name, labels), key=lambda kv: kv[0]
            )
        ]

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict dump of every series, deterministically ordered."""
        result: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, label_key), counter in sorted(self._counters.items()):
            result["counters"].setdefault(name, []).append(
                {"labels": dict(label_key), "value": counter.value}
            )
        for (name, label_key), gauge in sorted(self._gauges.items()):
            result["gauges"].setdefault(name, []).append(
                {"labels": dict(label_key), "value": gauge.value}
            )
        for (name, label_key), histogram in sorted(self._histograms.items()):
            result["histograms"].setdefault(name, []).append(
                {"labels": dict(label_key), **histogram.snapshot()}
            )
        return result

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)
