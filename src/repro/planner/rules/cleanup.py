"""Cleanup rules: merge adjacent filters, drop identity projections."""

from __future__ import annotations

from typing import Optional

from repro.core.expressions import and_
from repro.planner.plan import FilterNode, PlanNode, ProjectNode, rewrite_plan


def merge_filters(plan: PlanNode, _ctx) -> PlanNode:
    """Filter(Filter(x)) → Filter(x) with ANDed predicates."""

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, FilterNode) and isinstance(node.source, FilterNode):
            return FilterNode(
                source=node.source.source,
                predicate=and_(node.source.predicate, node.predicate),
            )
        return None

    return rewrite_plan(plan, rewriter)


def remove_identity_projections(plan: PlanNode, _ctx) -> PlanNode:
    """Drop projections that forward their input unchanged."""

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, ProjectNode) and node.is_identity():
            return node.source
        return None

    return rewrite_plan(plan, rewriter)
