"""Limit pushdown and Sort+Limit → TopN."""

from __future__ import annotations

from typing import Optional

from repro.planner.plan import (
    LimitNode,
    PlanNode,
    ProjectNode,
    SortNode,
    TableScanNode,
    TopNNode,
    rewrite_plan,
)


def sort_limit_to_topn(plan: PlanNode, _ctx) -> PlanNode:
    """Limit(Sort(x)) → TopN(x): avoids a full sort."""

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if isinstance(node, LimitNode) and isinstance(node.source, SortNode):
            return TopNNode(
                source=node.source.source,
                count=node.count,
                order_by=node.source.order_by,
            )
        return None

    return rewrite_plan(plan, rewriter)


def push_limits(plan: PlanNode, ctx) -> PlanNode:
    """Push LIMIT through projections and offer it to connectors."""

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, LimitNode):
            return None
        source = node.source
        if isinstance(source, ProjectNode):
            # LIMIT commutes with a stateless projection.
            return ProjectNode(
                source=LimitNode(
                    source=source.source, count=node.count, partial=node.partial
                ),
                assignments=source.assignments,
            )
        if isinstance(source, LimitNode):
            return LimitNode(source=source.source, count=min(node.count, source.count))
        if isinstance(source, TableScanNode):
            handle = source.handle
            if handle.limit is not None and handle.limit <= node.count:
                return node  # already pushed
            metadata = ctx.catalog.connector(source.catalog).metadata()
            new_handle = metadata.apply_limit(handle, node.count)
            if new_handle is None:
                return None
            new_scan = TableScanNode(
                catalog=source.catalog,
                handle=new_handle,
                assignments=source.assignments,
                output_variables=source.output_variables,
            )
            # Keep the engine-side limit: with multiple splits each split may
            # individually satisfy the limit, so a final trim is still needed.
            return LimitNode(source=new_scan, count=node.count)
        return None

    previous = None
    current = plan
    while previous is None or current.pretty() != previous:
        previous = current.pretty()
        current = rewrite_plan(current, rewriter)
    return current
