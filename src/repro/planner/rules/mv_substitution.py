"""Materialized-view substitution for streaming aggregations.

Pattern: ``Aggregation(SINGLE) → [Project →] TableScan`` over a
connector that exposes ``find_materialized_view`` (the hybrid streaming
connector).  When the connector has a registered view computing exactly
this aggregation *at the query's read watermark*, the whole aggregation
subtree is replaced by a scan of the view — the incrementally-maintained
answer — turning a full hybrid scan + group-by into a few-row read.

Freshness gating lives connector-side: ``find_materialized_view``
returns a view only when the view's watermark equals the read watermark
(a pinned ``$watermark=`` suffix, or the committed watermark for plain
names), so substitution never changes query results — the differential
tests run the same query with the rule on and off and require identical
rows.

The rule runs *before* aggregation pushdown: a matching view beats
re-aggregating at the source; when no view matches, the scan is left
untouched for pushdown to negotiate.
"""

from __future__ import annotations

from typing import Optional

from repro.connectors.spi import ConnectorTableHandle
from repro.core.expressions import VariableReferenceExpression
from repro.planner.plan import (
    AggregationNode,
    AggregationStep,
    PlanNode,
    ProjectNode,
    TableScanNode,
    rewrite_plan,
)

# The aggregate folds a view can maintain incrementally (append-only log).
_SUBSTITUTABLE = {"count", "sum", "min", "max"}


def substitute_materialized_views(plan: PlanNode, ctx) -> PlanNode:
    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, AggregationNode) or node.step != AggregationStep.SINGLE:
            return None
        if any(a.distinct for a in node.aggregations):
            return None
        if not all(a.function_handle.name in _SUBSTITUTABLE for a in node.aggregations):
            return None

        source = node.source
        if isinstance(source, ProjectNode) and isinstance(source.source, TableScanNode):
            project, scan = source, source.source
        elif isinstance(source, TableScanNode):
            project, scan = None, source
        else:
            return None
        # Any absorbed pushdown (filter, limit, aggregation) changes what
        # the aggregate sees; the view folds the *whole* table, so only a
        # bare scan is substitutable.
        handle = scan.handle
        if (
            handle.constraint is not None
            or handle.limit is not None
            or handle.aggregation is not None
        ):
            return None

        connector = ctx.catalog.connector(scan.catalog)
        finder = getattr(connector, "find_materialized_view", None)
        if finder is None:
            return None

        variable_to_column = scan.assignments_dict()

        def scan_column(expression) -> Optional[str]:
            if not isinstance(expression, VariableReferenceExpression):
                return None
            if project is not None:
                inner = project.assignments_dict().get(expression.name)
                if not isinstance(inner, VariableReferenceExpression):
                    return None
                return variable_to_column.get(inner.name)
            return variable_to_column.get(expression.name)

        grouping_columns: list[str] = []
        for key in node.group_keys:
            column = scan_column(key)
            if column is None:
                return None
            grouping_columns.append(column)

        wanted: list[tuple[str, Optional[str]]] = []
        for aggregation in node.aggregations:
            if len(aggregation.arguments) == 0:
                wanted.append((aggregation.function_handle.name, None))
            elif len(aggregation.arguments) == 1:
                column = scan_column(aggregation.arguments[0])
                if column is None:
                    return None
                wanted.append((aggregation.function_handle.name, column))
            else:
                return None

        match = finder(handle.table_name, grouping_columns, wanted)
        if match is None:
            return None
        view_name, view_outputs = match

        # Scan the view instead: group keys keep their base-table column
        # names; each aggregate output reads its view column.  Output
        # variables are the aggregation's own, so downstream references
        # (and types) are untouched.
        assignments: list[tuple[str, str]] = []
        outputs: list[VariableReferenceExpression] = []
        for key, column in zip(node.group_keys, grouping_columns):
            assignments.append((key.name, column))
            outputs.append(key)
        for aggregation, spec in zip(node.aggregations, wanted):
            view_column = view_outputs.get(spec)
            if view_column is None:
                return None
            assignments.append((aggregation.output.name, view_column))
            outputs.append(aggregation.output)

        return TableScanNode(
            catalog=scan.catalog,
            handle=ConnectorTableHandle(handle.schema_name, view_name),
            assignments=tuple(assignments),
            output_variables=tuple(outputs),
        )

    return rewrite_plan(plan, rewriter)
