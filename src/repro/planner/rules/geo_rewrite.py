"""Geospatial query rewrite (section VI.E, figure 13).

A join whose condition is ``st_contains(polygons.geo_shape,
st_point(points.lng, points.lat))`` would execute as a nested loop testing
every (point, geofence) pair — the brute force the paper says "could take
days".  This rule rewrites it into a :class:`SpatialJoinNode`, whose
execution builds a QuadTree over the polygon side on the fly
(``build_geo_index``) and probes it per point (``geo_contains``), filtering
out "the majority of bounded rectangles that do not contain target point".

Session property ``geo_index_enabled=False`` keeps the SpatialJoinNode but
forces the brute-force strategy, enabling the >50× comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.core.expressions import (
    CallExpression,
    VariableReferenceExpression,
    combine_conjuncts,
    conjuncts,
)
from repro.planner.plan import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    SpatialJoinNode,
    rewrite_plan,
)


def rewrite_geospatial_joins(plan: PlanNode, ctx) -> PlanNode:
    use_index = ctx.session.properties.get("geo_index_enabled", True)

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        # Normalize Filter(Join) so WHERE-clause st_contains also matches.
        if (
            isinstance(node, FilterNode)
            and isinstance(node.source, JoinNode)
            and not node.source.criteria
            and node.source.join_type in ("inner", "cross")
            and node.source.filter is None
        ):
            join = node.source
            merged = JoinNode(
                join_type="inner",
                left=join.left,
                right=join.right,
                criteria=(),
                filter=node.predicate,
                distribution=join.distribution,
            )
            replacement = _rewrite_join(merged, use_index)
            return replacement

        if isinstance(node, JoinNode):
            return _rewrite_join(node, use_index)
        return None

    return rewrite_plan(plan, rewriter)


def _rewrite_join(join: JoinNode, use_index: bool) -> Optional[PlanNode]:
    if join.criteria or join.join_type not in ("inner", "cross") or join.filter is None:
        return None
    left_names = {v.name for v in join.left.outputs}
    right_names = {v.name for v in join.right.outputs}

    spatial_conjunct = None
    remaining = []
    polygon_on_left = False
    for conjunct in conjuncts(join.filter):
        match = _match_st_contains(conjunct, left_names, right_names)
        if match is not None and spatial_conjunct is None:
            spatial_conjunct = match
            polygon_on_left = match[2]
        else:
            remaining.append(conjunct)
    if spatial_conjunct is None:
        return None

    polygon_variable, point_expression, polygon_left = spatial_conjunct
    if polygon_left:
        points_side, polygons_side = join.right, join.left
    else:
        points_side, polygons_side = join.left, join.right

    spatial = SpatialJoinNode(
        left=points_side,
        right=polygons_side,
        point_expression=point_expression,
        polygon_variable=polygon_variable,
        use_index=use_index,
    )
    result: PlanNode = spatial
    if polygon_left:
        # SpatialJoin outputs (points + polygons); restore (left + right).
        reorder = tuple(
            (v, v) for v in (join.left.outputs + join.right.outputs)
        )
        result = ProjectNode(source=result, assignments=reorder)
    residual = combine_conjuncts(remaining)
    if residual is not None:
        result = FilterNode(source=result, predicate=residual)
    return result


def _match_st_contains(
    conjunct, left_names: set[str], right_names: set[str]
) -> Optional[tuple[VariableReferenceExpression, object, bool]]:
    """Match st_contains(polygon_var, point_expr) split across the join.

    Returns (polygon variable, point expression, polygon_is_on_left).
    """
    if not (
        isinstance(conjunct, CallExpression)
        and conjunct.function_handle.name == "st_contains"
        and len(conjunct.arguments) == 2
    ):
        return None
    shape, point = conjunct.arguments
    if not isinstance(shape, VariableReferenceExpression):
        return None
    point_names = {v.name for v in point.variables()}
    if shape.name in right_names and point_names <= left_names:
        return shape, point, False
    if shape.name in left_names and point_names <= right_names:
        return shape, point, True
    return None
