"""Predicate pushdown (section IV.A).

Filters move down through projections and joins toward table scans, and at
the scan they are *offered* to the connector as serialized RowExpressions
over connector column names.  "It is desirable to let MySQL only stream
filtered, projected, and limited rows into Presto, instead of streaming the
whole table" — connectors absorb what their storage can evaluate and hand
back the remainder for the engine to evaluate.
"""

from __future__ import annotations

from typing import Optional

from repro.core.expressions import (
    VariableReferenceExpression,
    combine_conjuncts,
    conjuncts,
    expression_from_dict,
    substitute,
)
from repro.planner.plan import (
    FilterNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    TableScanNode,
    rewrite_plan,
)


def push_predicates(plan: PlanNode, ctx) -> PlanNode:
    """One pass of predicate pushdown; the optimizer iterates to fixpoint."""

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, FilterNode):
            return None
        source = node.source
        if isinstance(source, ProjectNode):
            return _through_project(node, source)
        if isinstance(source, JoinNode):
            return _through_join(node, source)
        if isinstance(source, TableScanNode):
            return _into_scan(node, source, ctx)
        return None

    return rewrite_plan(plan, rewriter)


def _through_project(filter_node: FilterNode, project: ProjectNode) -> Optional[PlanNode]:
    mapping = project.assignments_dict()
    if not all(v.name in mapping for v in filter_node.predicate.variables()):
        return None
    pushed = substitute(filter_node.predicate, mapping)
    return ProjectNode(
        source=FilterNode(source=project.source, predicate=pushed),
        assignments=project.assignments,
    )


def _through_join(filter_node: FilterNode, join: JoinNode) -> Optional[PlanNode]:
    left_names = {v.name for v in join.left.outputs}
    right_names = {v.name for v in join.right.outputs}
    push_left: list = []
    push_right: list = []
    keep: list = []
    for conjunct in conjuncts(filter_node.predicate):
        names = {v.name for v in conjunct.variables()}
        if names and names <= left_names:
            push_left.append(conjunct)
        elif names and names <= right_names and join.join_type in ("inner", "cross"):
            # Pushing below the null-producing side of an outer join would
            # change semantics, so only inner/cross joins push right.
            push_right.append(conjunct)
        else:
            keep.append(conjunct)
    if not push_left and not push_right:
        return None
    new_left = join.left
    new_right = join.right
    if push_left:
        new_left = FilterNode(source=new_left, predicate=combine_conjuncts(push_left))
    if push_right:
        new_right = FilterNode(source=new_right, predicate=combine_conjuncts(push_right))
    new_join = join.replace_sources([new_left, new_right])
    remaining = combine_conjuncts(keep)
    if remaining is None:
        return new_join
    return FilterNode(source=new_join, predicate=remaining)


def _into_scan(
    filter_node: FilterNode, scan: TableScanNode, ctx
) -> Optional[PlanNode]:
    metadata = ctx.catalog.connector(scan.catalog).metadata()
    variable_to_column = scan.assignments_dict()
    scan_variables = {v.name: v for v in scan.output_variables}
    if not all(v.name in variable_to_column for v in filter_node.predicate.variables()):
        return None

    # Rewrite the predicate in terms of connector column names so the
    # pushed expression is meaningful on the connector's side.
    to_columns = {
        name: VariableReferenceExpression(column, scan_variables[name].type)
        for name, column in variable_to_column.items()
    }
    offered = substitute(filter_node.predicate, to_columns)
    result = metadata.apply_filter(scan.handle, offered)
    if result is None:
        return None
    if result.remaining_expression is not None and result.remaining_expression == offered.to_dict():
        return None  # connector absorbed nothing; avoid rewrite loops

    new_scan = TableScanNode(
        catalog=scan.catalog,
        handle=result.handle,
        assignments=scan.assignments,
        output_variables=scan.output_variables,
    )
    if result.remaining_expression is None:
        return new_scan
    remaining = expression_from_dict(result.remaining_expression)
    to_variables = {
        column: VariableReferenceExpression(name, scan_variables[name].type)
        for name, column in variable_to_column.items()
    }
    return FilterNode(source=new_scan, predicate=substitute(remaining, to_variables))
