"""Optimizer rules, one module per rule family.

Each rule is a function ``(plan, context) -> plan`` applied by the
:class:`~repro.planner.optimizer.Optimizer`.  Pushdown rules negotiate with
connectors through the SPI, which is how "pushdown optimizations could be
implemented for each connector as a connector specific optimizer rule"
(section IV.B).
"""
