"""Aggregation pushdown (section IV.B, figure 2).

Pattern: ``Aggregation(SINGLE) → Project → TableScan`` where every group
key and aggregate argument is a direct column reference.  The rule offers
the aggregation to the connector; if accepted, the scan streams
*pre-aggregated* rows ("only stream aggregated results to Presto") and the
engine keeps a FINAL aggregation that merges per-split partial results —
exactly figure 2's "final aggregation max(columnB)" box above the
connector.
"""

from __future__ import annotations

from typing import Optional

from repro.connectors.spi import AggregationFunction
from repro.core.expressions import (
    SpecialForm,
    SpecialFormExpression,
    ConstantExpression,
    VariableReferenceExpression,
)
from repro.planner.plan import (
    Aggregation,
    AggregationNode,
    AggregationStep,
    PlanNode,
    ProjectNode,
    TableScanNode,
    rewrite_plan,
)

# Aggregates whose per-split partial results merge losslessly engine-side.
_PUSHABLE = {"count", "sum", "min", "max"}


def push_aggregations(plan: PlanNode, ctx) -> PlanNode:
    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, AggregationNode) or node.step != AggregationStep.SINGLE:
            return None
        if any(a.distinct for a in node.aggregations):
            return None
        if not all(a.function_handle.name in _PUSHABLE for a in node.aggregations):
            return None

        source = node.source
        if isinstance(source, ProjectNode) and isinstance(source.source, TableScanNode):
            project, scan = source, source.source
        elif isinstance(source, TableScanNode):
            project, scan = None, source
        else:
            return None
        if getattr(scan.handle, "aggregation", None) is not None:
            return None

        variable_to_column = scan.assignments_dict()

        def column_path(expression) -> Optional[str]:
            """Resolve a scan-level expression to a connector column path."""
            if isinstance(expression, VariableReferenceExpression):
                return variable_to_column.get(expression.name)
            if (
                isinstance(expression, SpecialFormExpression)
                and expression.form is SpecialForm.DEREFERENCE
            ):
                base = column_path(expression.arguments[0])
                field_name = expression.arguments[1]
                if base is None or not isinstance(field_name, ConstantExpression):
                    return None
                return f"{base}.{field_name.value}"
            return None

        def scan_column(expression) -> Optional[str]:
            """Resolve a post-projection variable to a connector column path."""
            if not isinstance(expression, VariableReferenceExpression):
                return None
            if project is not None:
                inner = project.assignments_dict().get(expression.name)
                if inner is None:
                    return None
                return column_path(inner)
            return column_path(expression)

        grouping_columns: list[str] = []
        for key in node.group_keys:
            column = scan_column(key)
            if column is None:
                return None
            grouping_columns.append(column)

        offered: list[AggregationFunction] = []
        for aggregation in node.aggregations:
            input_columns: list[str] = []
            for argument in aggregation.arguments:
                column = scan_column(argument)
                if column is None:
                    return None
                input_columns.append(column)
            offered.append(
                AggregationFunction(
                    function_handle=aggregation.function_handle,
                    inputs=tuple(input_columns),
                    output_name=aggregation.output.name,
                )
            )

        metadata = ctx.catalog.connector(scan.catalog).metadata()
        result = metadata.apply_aggregation(scan.handle, offered, grouping_columns)
        if result is None:
            return None

        # New scan streams (group keys + partial aggregates).  Key outputs
        # reuse the original group-key variable names so downstream
        # references stay valid.
        new_assignments: list[tuple[str, str]] = []
        new_outputs: list[VariableReferenceExpression] = []
        for key, column_meta in zip(node.group_keys, result.output_columns):
            new_assignments.append((key.name, column_meta.name))
            new_outputs.append(key)
        partial_variables: list[VariableReferenceExpression] = []
        for aggregation, column_meta in zip(
            node.aggregations, result.output_columns[len(node.group_keys) :]
        ):
            partial = VariableReferenceExpression(
                f"{aggregation.output.name}_partial", column_meta.type
            )
            new_assignments.append((partial.name, column_meta.name))
            new_outputs.append(partial)
            partial_variables.append(partial)

        new_scan = TableScanNode(
            catalog=scan.catalog,
            handle=result.handle,
            assignments=tuple(new_assignments),
            output_variables=tuple(new_outputs),
        )
        final_aggregations = tuple(
            Aggregation(
                output=aggregation.output,
                function_handle=aggregation.function_handle,
                arguments=(partial,),
            )
            for aggregation, partial in zip(node.aggregations, partial_variables)
        )
        return AggregationNode(
            source=new_scan,
            group_keys=node.group_keys,
            aggregations=final_aggregations,
            step=AggregationStep.FINAL,
        )

    return rewrite_plan(plan, rewriter)
