"""Column pruning, including nested column pruning (section V.D).

A top-down pass computes which output variables each node must produce,
drops dead projections/aggregates/scan columns, and — the nested part —
tracks *access paths*: when a struct column is only ever read through
field dereferences (``base.city_id``), the scan's projection pushdown
carries dotted subfield paths so a Parquet-backed connector reads only the
required leaf columns from disk ("read only required columns in Parquet").
"""

from __future__ import annotations

from typing import Optional

from repro.core.expressions import (
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
)
from repro.planner.plan import (
    AggregationNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
    UnionNode,
    ValuesNode,
)

# Sentinel path meaning "the whole value is needed".
BARE = "*"


def collect_access_paths(plan: PlanNode) -> dict[str, set[str]]:
    """For every variable, the set of access paths used anywhere in the plan.

    A path is either :data:`BARE` (whole value used) or a dotted field path
    like ``base.city_id``.  A projection assignment that merely forwards a
    variable (``out := in``) is not itself a use: ``in`` inherits whatever
    access paths ``out`` has downstream.
    """
    paths: dict[str, set[str]] = {}
    # Forwarding edges (out name → in name) from identity assignments.
    forwards: list[tuple[str, str]] = []

    def record(name: str, path: str) -> None:
        paths.setdefault(name, set()).add(path)

    def visit(expression: RowExpression) -> None:
        chain = _dereference_chain(expression)
        if chain is not None:
            variable, fields = chain
            record(variable.name, ".".join(fields))
            return
        if isinstance(expression, VariableReferenceExpression):
            record(expression.name, BARE)
            return
        for child in expression.children():
            visit(child)

    for node in plan.walk():
        if isinstance(node, ProjectNode):
            for variable, expression in node.assignments:
                if isinstance(expression, VariableReferenceExpression):
                    forwards.append((variable.name, expression.name))
                else:
                    visit(expression)
        else:
            for expression in _node_expressions(node):
                visit(expression)
        # Variables used structurally (join criteria, group keys, sort
        # keys) need their whole value: bare uses.
        for variable in _node_forwarded_variables(node):
            record(variable.name, BARE)

    # Propagate downstream paths through forwarding chains to fixpoint.
    changed = True
    iterations = 0
    while changed and iterations <= len(forwards) + 1:
        changed = False
        iterations += 1
        for out_name, in_name in forwards:
            downstream = paths.get(out_name)
            if not downstream:
                continue
            current = paths.setdefault(in_name, set())
            if not downstream <= current:
                current |= downstream
                changed = True
    return paths


def _dereference_chain(
    expression: RowExpression,
) -> Optional[tuple[VariableReferenceExpression, list[str]]]:
    """Match DEREFERENCE(...(DEREFERENCE(var, f1)...), fn) → (var, [f1..fn])."""
    fields: list[str] = []
    current = expression
    while (
        isinstance(current, SpecialFormExpression)
        and current.form is SpecialForm.DEREFERENCE
        and isinstance(current.arguments[1], ConstantExpression)
    ):
        fields.insert(0, current.arguments[1].value)
        current = current.arguments[0]
    if fields and isinstance(current, VariableReferenceExpression):
        return current, fields
    return None


def _node_expressions(node: PlanNode):
    if isinstance(node, FilterNode):
        yield node.predicate
    elif isinstance(node, ProjectNode):
        for _, expression in node.assignments:
            yield expression
    elif isinstance(node, AggregationNode):
        for aggregation in node.aggregations:
            yield from aggregation.arguments
    elif isinstance(node, JoinNode):
        if node.filter is not None:
            yield node.filter
    elif isinstance(node, SpatialJoinNode):
        yield node.point_expression


def _node_forwarded_variables(node: PlanNode):
    if isinstance(node, OutputNode):
        # The user receives these values whole.
        yield from node.source.outputs[: len(node.column_names)]
    elif isinstance(node, AggregationNode):
        yield from node.group_keys
    elif isinstance(node, JoinNode):
        for left, right in node.criteria:
            yield left
            yield right
    elif isinstance(node, SpatialJoinNode):
        yield node.polygon_variable
    elif isinstance(node, (SortNode, TopNNode)):
        for variable, _ in node.order_by:
            yield variable


def collapse_paths(paths: set[str]) -> set[str]:
    """Remove paths subsumed by a shorter prefix (or by BARE)."""
    if BARE in paths:
        return {BARE}
    result: set[str] = set()
    for path in sorted(paths, key=lambda p: p.count(".")):
        segments = path.split(".")
        prefixes = {".".join(segments[:i]) for i in range(1, len(segments))}
        if not (prefixes & result):
            result.add(path)
    return result


def prune_columns(plan: PlanNode, ctx) -> PlanNode:
    """Drop unused columns and push (possibly nested) projections to scans."""
    access_paths = collect_access_paths(plan)

    def visit(node: PlanNode, required: set[str]) -> PlanNode:
        if isinstance(node, OutputNode):
            needed = {v.name for v in node.source.outputs[: len(node.column_names)]}
            # Hidden sort columns (beyond the visible ones) stay required.
            needed |= {v.name for v in node.source.outputs}
            return node.replace_sources([visit(node.source, needed)])

        if isinstance(node, ProjectNode):
            kept = [
                (variable, expression)
                for variable, expression in node.assignments
                if variable.name in required
            ]
            needed = set()
            for _, expression in kept:
                needed |= {v.name for v in expression.variables()}
            return ProjectNode(
                source=visit(node.source, needed), assignments=tuple(kept)
            )

        if isinstance(node, FilterNode):
            needed = set(required) | {v.name for v in node.predicate.variables()}
            return node.replace_sources([visit(node.source, needed)])

        if isinstance(node, AggregationNode):
            kept_aggs = tuple(
                a for a in node.aggregations if a.output.name in required
            )
            needed = {k.name for k in node.group_keys}
            for aggregation in kept_aggs:
                for argument in aggregation.arguments:
                    needed |= {v.name for v in argument.variables()}
            new_node = AggregationNode(
                source=visit(node.source, needed),
                group_keys=node.group_keys,
                aggregations=kept_aggs,
                step=node.step,
            )
            return new_node

        if isinstance(node, JoinNode):
            needed = set(required)
            for left, right in node.criteria:
                needed.add(left.name)
                needed.add(right.name)
            if node.filter is not None:
                needed |= {v.name for v in node.filter.variables()}
            left_required = {v.name for v in node.left.outputs if v.name in needed}
            right_required = {v.name for v in node.right.outputs if v.name in needed}
            return node.replace_sources(
                [visit(node.left, left_required), visit(node.right, right_required)]
            )

        if isinstance(node, SpatialJoinNode):
            needed = set(required)
            needed |= {v.name for v in node.point_expression.variables()}
            needed.add(node.polygon_variable.name)
            left_required = {v.name for v in node.left.outputs if v.name in needed}
            right_required = {v.name for v in node.right.outputs if v.name in needed}
            return node.replace_sources(
                [visit(node.left, left_required), visit(node.right, right_required)]
            )

        if isinstance(node, (SortNode, TopNNode)):
            needed = set(required) | {v.name for v, _ in node.order_by}
            return node.replace_sources([visit(node.source, needed)])

        if isinstance(node, LimitNode):
            return node.replace_sources([visit(node.source, set(required))])

        if isinstance(node, UnionNode):
            kept = [v for v in node.output_variables if v.name in required]
            if not kept:
                kept = [node.output_variables[0]]
            kept_names = {v.name for v in kept}
            return UnionNode(
                union_sources=tuple(
                    visit(source, set(kept_names)) for source in node.union_sources
                ),
                output_variables=tuple(kept),
            )

        if isinstance(node, TableScanNode):
            return _prune_scan(node, required, access_paths, ctx)

        if isinstance(node, ValuesNode):
            return node

        return node.replace_sources(
            [visit(source, set(required)) for source in node.sources()]
        )

    return visit(plan, {v.name for v in plan.outputs})


def _prune_scan(
    scan: TableScanNode, required: set[str], access_paths: dict[str, set[str]], ctx
) -> TableScanNode:
    kept = [
        (name, column) for name, column in scan.assignments if name in required
    ]
    if not kept:
        # Something (e.g. count(*)) still needs row counts: keep one column.
        kept = [scan.assignments[0]]
    kept_names = {name for name, _ in kept}
    new_outputs = tuple(v for v in scan.output_variables if v.name in kept_names)

    # Build the (possibly nested) projection column list.
    projected: list[str] = []
    for name, column in kept:
        paths = collapse_paths(access_paths.get(name, {BARE}))
        if BARE in paths:
            projected.append(column)
        else:
            projected.extend(f"{column}.{path}" for path in sorted(paths))

    metadata = ctx.catalog.connector(scan.catalog).metadata()
    handle = metadata.apply_projection(scan.handle, projected)
    if handle is None:
        handle = scan.handle
    return TableScanNode(
        catalog=scan.catalog,
        handle=handle,
        assignments=tuple(kept),
        output_variables=new_outputs,
    )
