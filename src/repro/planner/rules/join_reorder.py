"""Cost-based join ordering and broadcast-vs-partitioned selection.

The paper's production optimizer is rule-based ("ignoring statistics",
section XII.A) because metastore statistics could not be kept fresh at
Uber's write rates.  This rule reproduces the *adaptive* counterpoint:
when ``ANALYZE TABLE`` statistics exist for every relation in an inner
equi-join chain, reorder it greedily so the largest relation streams as
the probe side and each successive build side is the one producing the
smallest intermediate result.  Without statistics the rule deliberately
does nothing — the plan stays exactly what the rule-free pipeline built,
which keeps every existing query byte-identical unless someone ran
ANALYZE first.

The executor builds the hash table from the **right** child of a
JoinNode (the fragmenter schedules the right subtree before the probe
stage), so "smallest-build-first" means a left-deep tree whose right
children are the small relations.

Distribution selection: joins planned with ``join_distribution_type =
'automatic'`` are resolved here — broadcast when the estimated build side
is under ``broadcast_join_threshold_rows``, partitioned otherwise (and
always partitioned when statistics are missing, matching the paper's
conservative default).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.expressions import VariableReferenceExpression
from repro.planner.cost import CostEstimator
from repro.planner.plan import JoinNode, PlanNode, ProjectNode, rewrite_plan

# Build sides estimated under this many rows broadcast by default; the
# session property ``broadcast_join_threshold_rows`` overrides it.
DEFAULT_BROADCAST_THRESHOLD_ROWS = 100_000

# Joins where replicating the build side to every probe task is safe:
# unmatched build rows are never emitted, so duplication across tasks
# cannot surface.  right/full joins must stay partitioned.
_BROADCAST_SAFE_JOIN_TYPES = ("inner", "left")


def reorder_joins(plan: PlanNode, _ctx, estimator: CostEstimator) -> PlanNode:
    """Greedy smallest-build-first reordering of inner equi-join chains.

    Visits top-down so a whole chain is flattened and reordered at its
    root; a bottom-up rewrite would wrap nested joins in restoring
    projections that block the parent from flattening through them.
    """

    def visit(node: PlanNode) -> PlanNode:
        if isinstance(node, JoinNode) and _is_reorderable(node):
            leaves = [visit(leaf) for leaf in _flatten(node)]
            reordered = _reorder(node, leaves, estimator)
            if reordered is not None and [l.id for l in _flatten(reordered)] != [
                l.id for l in leaves
            ]:
                # JoinNode outputs are left.outputs + right.outputs, so
                # reordering permutes columns; restore the original order.
                return ProjectNode(
                    source=reordered,
                    assignments=tuple((v, v) for v in node.outputs),
                )
            return _rebuild(node, iter(leaves))
        new_sources = [visit(s) for s in node.sources()]
        if list(node.sources()) != new_sources:
            return node.replace_sources(new_sources)
        return node

    return visit(plan)


def _rebuild(node: PlanNode, leaf_iter) -> PlanNode:
    """Splice (possibly rewritten) leaves back into an unreordered chain."""
    if isinstance(node, JoinNode) and _is_reorderable(node):
        left = _rebuild(node.left, leaf_iter)
        right = _rebuild(node.right, leaf_iter)
        if left is node.left and right is node.right:
            return node
        return replace(node, left=left, right=right)
    return next(leaf_iter)


def choose_join_distribution(
    plan: PlanNode, ctx, estimator: CostEstimator
) -> PlanNode:
    """Resolve ``distribution='automatic'`` on every join.

    Runs unconditionally (not gated on the CBO switch): 'automatic' is a
    planning-time placeholder the fragmenter should never see.
    """
    threshold = int(
        ctx.session.properties.get(
            "broadcast_join_threshold_rows", DEFAULT_BROADCAST_THRESHOLD_ROWS
        )
    )

    def rewriter(node: PlanNode) -> Optional[PlanNode]:
        if not isinstance(node, JoinNode) or node.distribution != "automatic":
            return None
        chosen = "partitioned"
        if node.join_type in _BROADCAST_SAFE_JOIN_TYPES:
            build = estimator.estimate(node.right)
            if build is not None and build.row_count <= threshold:
                chosen = "broadcast"
        return replace(node, distribution=chosen)

    return rewrite_plan(plan, rewriter)


# -- reordering internals -----------------------------------------------------


def _is_reorderable(node: JoinNode) -> bool:
    return node.join_type == "inner" and node.filter is None and bool(node.criteria)


def _flatten(node: PlanNode) -> list[PlanNode]:
    """Leaf relations of a maximal inner equi-join chain, left to right."""
    if isinstance(node, JoinNode) and _is_reorderable(node):
        return _flatten(node.left) + _flatten(node.right)
    return [node]


def _collect_edges(
    node: PlanNode,
) -> list[tuple[VariableReferenceExpression, VariableReferenceExpression]]:
    edges = []
    if isinstance(node, JoinNode) and _is_reorderable(node):
        edges.extend(node.criteria)
        edges.extend(_collect_edges(node.left))
        edges.extend(_collect_edges(node.right))
    return edges


def _reorder(
    root: JoinNode, leaves: list[PlanNode], estimator: CostEstimator
) -> Optional[PlanNode]:
    estimates = [estimator.estimate(leaf) for leaf in leaves]
    if any(e is None for e in estimates):
        return None  # some relation was never analyzed: keep the written order

    # Map each join variable to the leaf producing it.  Variable names are
    # unique plan-wide, so a flat name index is unambiguous.
    producer: dict[str, int] = {}
    for index, leaf in enumerate(leaves):
        for variable in leaf.outputs:
            producer[variable.name] = index
    edges = []  # (leaf_a, var_a, leaf_b, var_b)
    for left_variable, right_variable in _collect_edges(root):
        a = producer.get(left_variable.name)
        b = producer.get(right_variable.name)
        if a is None or b is None or a == b:
            return None  # criteria over derived columns: too clever to touch
        edges.append((a, left_variable, b, right_variable))

    rows = [e.row_count for e in estimates]
    base = max(range(len(leaves)), key=lambda i: rows[i])
    placed = {base}
    order = [base]
    current_rows = rows[base]
    join_plan: list[tuple[int, list, float]] = []  # (leaf, criteria, out rows)
    while len(placed) < len(leaves):
        best = None
        for candidate in range(len(leaves)):
            if candidate in placed:
                continue
            criteria = _connecting_criteria(edges, placed, candidate)
            if not criteria:
                continue  # only join along edges; never introduce a cross join
            joined = current_rows * rows[candidate]
            for probe_variable, build_variable in criteria:
                left_entry = estimates[producer[probe_variable.name]].column(
                    probe_variable.name
                )
                right_entry = estimates[candidate].column(build_variable.name)
                ndv = max(
                    left_entry.ndv if left_entry is not None else 1,
                    right_entry.ndv if right_entry is not None else 1,
                    1,
                )
                joined /= ndv
            if best is None or joined < best[2] or (
                joined == best[2] and candidate < best[0]
            ):
                best = (candidate, criteria, joined)
        if best is None:
            return None  # disconnected join graph: keep the written order
        placed.add(best[0])
        order.append(best[0])
        current_rows = best[2]
        join_plan.append(best)

    result: PlanNode = leaves[base]
    for leaf_index, criteria, _ in join_plan:
        result = JoinNode(
            join_type="inner",
            left=result,
            right=leaves[leaf_index],
            criteria=tuple(criteria),
            filter=None,
            distribution=root.distribution,
        )
    return result


def _connecting_criteria(
    edges: list, placed: set[int], candidate: int
) -> list[tuple[VariableReferenceExpression, VariableReferenceExpression]]:
    """Equi-join pairs linking ``candidate`` to the placed set, oriented as
    (probe variable, build variable)."""
    criteria = []
    for leaf_a, variable_a, leaf_b, variable_b in edges:
        if leaf_a in placed and leaf_b == candidate:
            criteria.append((variable_a, variable_b))
        elif leaf_b in placed and leaf_a == candidate:
            criteria.append((variable_b, variable_a))
    return criteria
