"""Semantic analysis: AST → logical plan over RowExpressions.

"Analyzer generates logical plan from Abstract Syntax Tree" (section III).
The analyzer resolves ``catalog.schema.table`` names through the catalog
registry, binds identifiers to columns (including nested struct field
dereference like ``base.city_id``), type-checks every expression against
the strict type system, extracts aggregates, and emits the initial plan:

    TableScan → Filter → [Project → Aggregation] → Project
      → [Sort/TopN] → [Limit] → Output
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Sequence

from repro.common.errors import SemanticError
from repro.connectors.spi import Catalog, ConnectorTableHandle
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    and_,
    dereference,
    not_,
)
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.types import (
    BIGINT,
    BOOLEAN,
    DOUBLE,
    PrestoType,
    RowType,
    UNKNOWN,
    VARCHAR,
    parse_type,
)
from repro.planner.plan import (
    Aggregation,
    AggregationNode,
    AggregationStep,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    TableScanNode,
    ValuesNode,
)
from repro.sql import ast


@dataclass
class Session:
    """Per-query session: default namespace and session properties.

    ``properties`` reproduces Presto session properties; the one the paper
    highlights (section XII.A) is ``join_distribution_type`` which selects
    broadcast vs partitioned hash joins.
    """

    catalog: Optional[str] = None
    schema: Optional[str] = None
    user: str = "user"
    properties: dict = dataclass_field(default_factory=dict)


@dataclass(frozen=True)
class Field:
    """One resolvable column in a scope."""

    name: Optional[str]
    relation_alias: Optional[str]
    variable: VariableReferenceExpression


class Scope:
    """Name-resolution scope over the current relation's fields."""

    def __init__(self, fields: Sequence[Field]) -> None:
        self.fields = list(fields)

    def resolve(self, parts: tuple[str, ...]) -> RowExpression:
        """Resolve a dotted identifier to a variable + dereference chain."""
        # Qualified: alias.column[.subfield...]
        if len(parts) >= 2:
            matches = [
                f
                for f in self.fields
                if f.relation_alias == parts[0] and f.name == parts[1]
            ]
            if len(matches) == 1:
                return _apply_dereferences(matches[0].variable, parts[2:])
            if len(matches) > 1:
                raise SemanticError(f"ambiguous column {'.'.join(parts[:2])!r}")
        # Unqualified: column[.subfield...]
        matches = [f for f in self.fields if f.name == parts[0]]
        if len(matches) == 1:
            return _apply_dereferences(matches[0].variable, parts[1:])
        if len(matches) > 1:
            raise SemanticError(f"ambiguous column {parts[0]!r}")
        raise SemanticError(f"column {'.'.join(parts)!r} cannot be resolved")

    def star_fields(self, qualifier: Optional[str] = None) -> list[Field]:
        if qualifier is None:
            return list(self.fields)
        selected = [f for f in self.fields if f.relation_alias == qualifier]
        if not selected:
            raise SemanticError(f"relation {qualifier!r} not found for *")
        return selected


def _apply_dereferences(
    base: RowExpression, field_names: Sequence[str]
) -> RowExpression:
    expression = base
    for field_name in field_names:
        base_type = expression.type
        if not isinstance(base_type, RowType):
            raise SemanticError(
                f"cannot dereference field {field_name!r} from type {base_type.display()}"
            )
        if not base_type.has_field(field_name):
            raise SemanticError(
                f"struct {base_type.display()} has no field {field_name!r}"
            )
        expression = dereference(expression, field_name, base_type.field_type(field_name))
    return expression


class Analyzer:
    """Lowers one parsed :class:`~repro.sql.ast.Query` to a logical plan."""

    def __init__(
        self,
        catalog: Catalog,
        session: Optional[Session] = None,
        registry: Optional[FunctionRegistry] = None,
    ) -> None:
        self._catalog = catalog
        self._session = session or Session()
        self._registry = registry or default_registry()
        self._counter = itertools.count()

    # -- entry point -----------------------------------------------------------

    def analyze(self, query: ast.Query) -> OutputNode:
        node, fields, names = self._plan_query(query)
        return OutputNode(source=node, column_names=tuple(names))

    # -- relation planning ---------------------------------------------------------

    def _plan_query(
        self, query: ast.Query
    ) -> tuple[PlanNode, list[Field], list[str]]:
        """Plan a query; returns (plan, output fields, output column names)."""
        if query.from_relation is not None:
            node, scope = self._plan_relation(query.from_relation)
        else:
            values = ValuesNode(output_variables=(), rows=((),))
            node, scope = values, Scope([])

        if query.where is not None:
            predicate = self._lower(query.where, scope, allow_aggregates=False)
            self._require_boolean(predicate, "WHERE")
            node = FilterNode(source=node, predicate=predicate)

        aggregates = _AggregateCollector(self, scope)
        group_key_asts = self._expand_group_by(query)
        is_aggregated = bool(group_key_asts) or _contains_aggregate(
            self._registry,
            [i.expression for i in query.select_items]
            + ([query.having] if query.having else []),
        )

        if is_aggregated:
            node, post_scope, key_map = self._plan_aggregation(
                node, scope, group_key_asts, query, aggregates
            )
            lower_output = lambda e: aggregates.lower_post_aggregation(e, key_map)
        else:
            if query.having is not None:
                raise SemanticError("HAVING requires GROUP BY or aggregates")
            lower_output = lambda e: self._lower(e, scope, allow_aggregates=False)

        # -- SELECT projection -----------------------------------------------
        assignments: list[tuple[VariableReferenceExpression, RowExpression]] = []
        output_names: list[str] = []
        output_fields: list[Field] = []
        select_exprs_lowered: list[RowExpression] = []
        for item in query.select_items:
            if isinstance(item.expression, ast.Star):
                if is_aggregated:
                    raise SemanticError("SELECT * cannot be combined with GROUP BY")
                for f in scope.star_fields(item.expression.qualifier):
                    variable = self._new_variable(f.name or "col", f.variable.type)
                    assignments.append((variable, f.variable))
                    output_names.append(f.name or variable.name)
                    output_fields.append(Field(f.name, None, variable))
                    select_exprs_lowered.append(f.variable)
                continue
            lowered = lower_output(item.expression)
            name = item.alias or _derive_name(item.expression)
            variable = self._new_variable(name or "expr", lowered.type)
            assignments.append((variable, lowered))
            output_names.append(name or variable.name)
            output_fields.append(Field(name, None, variable))
            select_exprs_lowered.append(lowered)

        # -- ORDER BY (may add hidden sort columns) ----------------------------
        order_specs: list[tuple[VariableReferenceExpression, bool]] = []
        hidden_count = 0
        for order_item in query.order_by:
            target = self._resolve_order_expression(
                order_item.expression, query, output_fields, lower_output
            )
            if isinstance(target, int):
                order_variable = assignments[target][0]
            else:
                matching = [
                    v for (v, e) in assignments if e == target
                ]
                if matching:
                    order_variable = matching[0]
                else:
                    order_variable = self._new_variable("sortkey", target.type)
                    assignments.append((order_variable, target))
                    hidden_count += 1
            order_specs.append((order_variable, order_item.ascending))

        node = ProjectNode(source=node, assignments=tuple(assignments))

        if query.distinct:
            if hidden_count:
                raise SemanticError(
                    "ORDER BY expressions must appear in SELECT list when DISTINCT is used"
                )
            node = AggregationNode(
                source=node,
                group_keys=node.outputs,
                aggregations=(),
                step=AggregationStep.SINGLE,
            )

        if order_specs:
            node = SortNode(source=node, order_by=tuple(order_specs))

        if query.limit is not None:
            node = LimitNode(source=node, count=query.limit)

        if hidden_count:
            visible = node.outputs[: len(output_names)]
            node = ProjectNode(
                source=node, assignments=tuple((v, v) for v in visible)
            )

        if query.unions:
            node, output_fields = self._plan_union(
                node, output_names, query.unions
            )

        return node, output_fields, output_names

    def _plan_union(
        self,
        first: PlanNode,
        output_names: list[str],
        unions: tuple,
    ) -> tuple[PlanNode, list[Field]]:
        """Combine UNION branches onto shared output variables."""
        from repro.core.types import common_super_type
        from repro.planner.plan import UnionNode

        branches: list[PlanNode] = [first]
        any_distinct = False
        for branch_query, branch_distinct in unions:
            branch_node, _, branch_names = self._plan_query(branch_query)
            if len(branch_names) != len(output_names):
                raise SemanticError(
                    f"UNION branches have {len(branch_names)} and "
                    f"{len(output_names)} columns"
                )
            branches.append(branch_node)
            any_distinct = any_distinct or branch_distinct

        column_types: list[PrestoType] = []
        for position in range(len(output_names)):
            common = branches[0].outputs[position].type
            for branch in branches[1:]:
                merged = common_super_type(common, branch.outputs[position].type)
                if merged is None:
                    raise SemanticError(
                        f"UNION column {position + 1} has incompatible types "
                        f"{common.display()} and "
                        f"{branch.outputs[position].type.display()}"
                    )
                common = merged
            column_types.append(common)

        shared = tuple(
            self._new_variable(output_names[i] or "col", column_types[i])
            for i in range(len(output_names))
        )
        projected = tuple(
            ProjectNode(
                source=branch,
                assignments=tuple(
                    (variable, branch.outputs[i])
                    for i, variable in enumerate(shared)
                ),
            )
            for branch in branches
        )
        node: PlanNode = UnionNode(union_sources=projected, output_variables=shared)
        if any_distinct:
            node = AggregationNode(
                source=node,
                group_keys=shared,
                aggregations=(),
                step=AggregationStep.SINGLE,
            )
        fields = [
            Field(output_names[i], None, variable) for i, variable in enumerate(shared)
        ]
        return node, fields

    def _plan_relation(self, relation: ast.Relation) -> tuple[PlanNode, Scope]:
        if isinstance(relation, ast.TableReference):
            return self._plan_table(relation)
        if isinstance(relation, ast.SubqueryRelation):
            node, fields, names = self._plan_query(relation.query)
            scope_fields = [
                Field(name, relation.alias, variable.variable)
                for name, variable in zip(names, fields)
            ]
            return node, Scope(scope_fields)
        if isinstance(relation, ast.Join):
            return self._plan_join(relation)
        raise SemanticError(f"unsupported relation {type(relation).__name__}")

    def _plan_table(self, table: ast.TableReference) -> tuple[PlanNode, Scope]:
        catalog_name, schema_name, table_name = self.qualify(table.parts)
        connector = self._catalog.connector(catalog_name)
        metadata = connector.metadata()
        handle = metadata.get_table_handle(schema_name, table_name)
        if handle is None:
            raise SemanticError(
                f"table {catalog_name}.{schema_name}.{table_name} does not exist"
            )
        table_metadata = metadata.get_table_metadata(handle)
        alias = table.alias or table_name
        assignments: list[tuple[str, str]] = []
        variables: list[VariableReferenceExpression] = []
        fields: list[Field] = []
        for column in table_metadata.columns:
            variable = self._new_variable(column.name, column.type)
            assignments.append((variable.name, column.name))
            variables.append(variable)
            fields.append(Field(column.name, alias, variable))
        scan = TableScanNode(
            catalog=catalog_name,
            handle=handle,
            assignments=tuple(assignments),
            output_variables=tuple(variables),
        )
        return scan, Scope(fields)

    def _plan_join(self, join: ast.Join) -> tuple[PlanNode, Scope]:
        left_node, left_scope = self._plan_relation(join.left)
        right_node, right_scope = self._plan_relation(join.right)
        combined = Scope(left_scope.fields + right_scope.fields)

        criteria: list[
            tuple[VariableReferenceExpression, VariableReferenceExpression]
        ] = []
        residual: list[RowExpression] = []
        # Equi-join keys that are computed expressions (e.g. the nested
        # dereference ``t.base.city_id``) get materialized by a projection
        # under the join so the hash join can use them.
        extra_left: list[tuple[VariableReferenceExpression, RowExpression]] = []
        extra_right: list[tuple[VariableReferenceExpression, RowExpression]] = []
        if join.condition is not None:
            condition = self._lower(join.condition, combined, allow_aggregates=False)
            self._require_boolean(condition, "JOIN ON")
            left_names = {v.name for v in left_node.outputs}
            right_names = {v.name for v in right_node.outputs}
            from repro.core.expressions import conjuncts

            for conjunct in conjuncts(condition):
                pair = self._extract_equi_pair(
                    conjunct, left_names, right_names, extra_left, extra_right
                )
                if pair is not None:
                    criteria.append(pair)
                else:
                    residual.append(conjunct)
        elif join.join_type != "cross":
            raise SemanticError("non-cross join requires ON condition")

        if extra_left:
            left_node = ProjectNode(
                source=left_node,
                assignments=tuple((v, v) for v in left_node.outputs)
                + tuple(extra_left),
            )
        if extra_right:
            right_node = ProjectNode(
                source=right_node,
                assignments=tuple((v, v) for v in right_node.outputs)
                + tuple(extra_right),
            )

        node = JoinNode(
            join_type=join.join_type,
            left=left_node,
            right=right_node,
            criteria=tuple(criteria),
            filter=and_(*residual) if residual else None,
            distribution=self._session.properties.get(
                "join_distribution_type", "partitioned"
            ),
        )
        return node, combined

    def _extract_equi_pair(
        self,
        conjunct: RowExpression,
        left_names: set[str],
        right_names: set[str],
        extra_left: list,
        extra_right: list,
    ):
        """Match ``expr_over_one_side = expr_over_other_side`` conjuncts.

        Non-variable key expressions are assigned fresh variables recorded
        in ``extra_left``/``extra_right`` for the under-join projections.
        """
        if not (
            isinstance(conjunct, CallExpression)
            and conjunct.function_handle.name == "equal"
            and len(conjunct.arguments) == 2
        ):
            return None
        a, b = conjunct.arguments
        a_names = {v.name for v in a.variables()}
        b_names = {v.name for v in b.variables()}
        if not a_names or not b_names:
            return None
        if a_names <= left_names and b_names <= right_names:
            left_expr, right_expr = a, b
        elif b_names <= left_names and a_names <= right_names:
            left_expr, right_expr = b, a
        else:
            return None

        def as_variable(expression: RowExpression, extras: list):
            if isinstance(expression, VariableReferenceExpression):
                return expression
            variable = self._new_variable("joinkey", expression.type)
            extras.append((variable, expression))
            return variable

        return (
            as_variable(left_expr, extra_left),
            as_variable(right_expr, extra_right),
        )

    def qualify(self, parts: tuple[str, ...]) -> tuple[str, str, str]:
        """Resolve a 1-3 part table name against the session defaults.

        Public because metadata statements (DESCRIBE) resolve table names
        with the same catalog/schema defaulting rules as SELECT.
        """
        if len(parts) == 3:
            return parts[0], parts[1], parts[2]
        if len(parts) == 2:
            if self._session.catalog is None:
                raise SemanticError(f"no default catalog set for table {'.'.join(parts)}")
            return self._session.catalog, parts[0], parts[1]
        if len(parts) == 1:
            if self._session.catalog is None or self._session.schema is None:
                raise SemanticError(f"no default schema set for table {parts[0]}")
            return self._session.catalog, self._session.schema, parts[0]
        raise SemanticError(f"invalid table name {'.'.join(parts)!r}")

    # Backwards-compatible alias for the pre-public spelling.
    _qualify = qualify

    # -- aggregation ----------------------------------------------------------------

    def _expand_group_by(self, query: ast.Query) -> list[ast.Expression]:
        """Resolve GROUP BY items, mapping ordinals to select expressions."""
        keys: list[ast.Expression] = []
        for item in query.group_by:
            if isinstance(item, ast.Literal) and isinstance(item.value, int):
                index = item.value
                if not 1 <= index <= len(query.select_items):
                    raise SemanticError(f"GROUP BY position {index} out of range")
                target = query.select_items[index - 1].expression
                if isinstance(target, ast.Star):
                    raise SemanticError("cannot GROUP BY *")
                keys.append(target)
            else:
                keys.append(item)
        return keys

    def _plan_aggregation(
        self,
        node: PlanNode,
        scope: Scope,
        group_key_asts: list[ast.Expression],
        query: ast.Query,
        aggregates: "_AggregateCollector",
    ) -> tuple[PlanNode, Scope, dict]:
        # Pre-projection computes group keys and aggregate arguments.
        pre_assignments: list[tuple[VariableReferenceExpression, RowExpression]] = []
        key_map: dict[ast.Expression, VariableReferenceExpression] = {}
        group_keys: list[VariableReferenceExpression] = []
        for key_ast in group_key_asts:
            lowered = self._lower(key_ast, scope, allow_aggregates=False)
            variable = self._new_variable("groupkey", lowered.type)
            pre_assignments.append((variable, lowered))
            key_map[key_ast] = variable
            group_keys.append(variable)

        # Collect aggregates from SELECT, HAVING and ORDER BY.
        for item in query.select_items:
            if not isinstance(item.expression, ast.Star):
                aggregates.collect(item.expression)
        if query.having is not None:
            aggregates.collect(query.having)
        for order_item in query.order_by:
            if not isinstance(order_item.expression, ast.Literal):
                try:
                    aggregates.collect(order_item.expression)
                except SemanticError:
                    pass  # may be an alias reference, resolved later

        aggregations: list[Aggregation] = []
        for spec in aggregates.specs():
            argument_variables: list[VariableReferenceExpression] = []
            for argument in spec.lowered_arguments:
                variable = self._new_variable("aggarg", argument.type)
                pre_assignments.append((variable, argument))
                argument_variables.append(variable)
            aggregations.append(
                Aggregation(
                    output=spec.output,
                    function_handle=spec.handle,
                    arguments=tuple(argument_variables),
                    distinct=spec.distinct,
                )
            )

        pre_project = ProjectNode(source=node, assignments=tuple(pre_assignments))
        aggregation = AggregationNode(
            source=pre_project,
            group_keys=tuple(group_keys),
            aggregations=tuple(aggregations),
            step=AggregationStep.SINGLE,
        )

        result: PlanNode = aggregation
        if query.having is not None:
            having = aggregates.lower_post_aggregation(query.having, key_map)
            self._require_boolean(having, "HAVING")
            result = FilterNode(source=result, predicate=having)

        post_fields = [Field(None, None, v) for v in aggregation.outputs]
        return result, Scope(post_fields), key_map

    def _resolve_order_expression(
        self,
        expression: ast.Expression,
        query: ast.Query,
        output_fields: list[Field],
        lower_output,
    ):
        """Resolve an ORDER BY item to a select index or lowered expression."""
        if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
            index = expression.value
            if not 1 <= index <= len(query.select_items):
                raise SemanticError(f"ORDER BY position {index} out of range")
            return index - 1
        if isinstance(expression, ast.Identifier) and len(expression.parts) == 1:
            for index, item in enumerate(query.select_items):
                if item.alias == expression.parts[0]:
                    return index
        for index, item in enumerate(query.select_items):
            if item.expression == expression:
                return index
        return lower_output(expression)

    # -- expression lowering -------------------------------------------------------------

    def _lower(
        self, expression: ast.Expression, scope: Scope, allow_aggregates: bool
    ) -> RowExpression:
        lowerer = _ExpressionLowerer(self, scope, allow_aggregates)
        return lowerer.lower(expression)

    def _new_variable(self, hint: str, presto_type: PrestoType) -> VariableReferenceExpression:
        safe = hint.replace(".", "_")
        return VariableReferenceExpression(f"{safe}${next(self._counter)}", presto_type)

    def _require_boolean(self, expression: RowExpression, context: str) -> None:
        if expression.type not in (BOOLEAN, UNKNOWN):
            raise SemanticError(
                f"{context} predicate must be boolean, got {expression.type.display()}"
            )


class _ExpressionLowerer:
    """Lowers one AST expression tree against a scope."""

    def __init__(self, analyzer: Analyzer, scope: Scope, allow_aggregates: bool) -> None:
        self._analyzer = analyzer
        self._scope = scope
        self._allow_aggregates = allow_aggregates
        self._registry = analyzer._registry

    def lower(self, expression: ast.Expression) -> RowExpression:
        if isinstance(expression, ast.Literal):
            return ConstantExpression(expression.value, _literal_type(expression.value))
        if isinstance(expression, ast.Identifier):
            return self._scope.resolve(expression.parts)
        if isinstance(expression, ast.BinaryOp):
            return self._lower_binary(expression)
        if isinstance(expression, ast.UnaryOp):
            return self._lower_unary(expression)
        if isinstance(expression, ast.FunctionCall):
            return self._lower_call(expression)
        if isinstance(expression, ast.InPredicate):
            return self._lower_in(expression)
        if isinstance(expression, ast.BetweenPredicate):
            return self._lower_between(expression)
        if isinstance(expression, ast.LikePredicate):
            return self._lower_like(expression)
        if isinstance(expression, ast.IsNullPredicate):
            value = self.lower(expression.value)
            result = SpecialFormExpression(SpecialForm.IS_NULL, BOOLEAN, (value,))
            return not_(result) if expression.negated else result
        if isinstance(expression, ast.Cast):
            return self._lower_cast(expression)
        if isinstance(expression, ast.CaseExpression):
            return self._lower_case(expression)
        if isinstance(expression, ast.SubscriptExpression):
            return self._call("element_at", [self.lower(expression.base), self.lower(expression.index)])
        if isinstance(expression, ast.LambdaExpression):
            raise SemanticError(
                "lambda expressions are only valid as arguments of "
                "transform(), filter(), or any_match()"
            )
        raise SemanticError(f"unsupported expression {type(expression).__name__}")

    def _call(self, name: str, arguments: list[RowExpression]) -> CallExpression:
        handle, _ = self._registry.resolve_scalar(name, [a.type for a in arguments])
        return CallExpression(
            name, handle, handle.resolved_return_type(), tuple(arguments)
        )

    def _lower_binary(self, expression: ast.BinaryOp) -> RowExpression:
        op = expression.operator
        if op == "and":
            return and_(self.lower(expression.left), self.lower(expression.right))
        if op == "or":
            from repro.core.expressions import or_

            return or_(self.lower(expression.left), self.lower(expression.right))
        left = self.lower(expression.left)
        right = self.lower(expression.right)
        if op == "||":
            return self._call("concat", [left, right])
        names = {
            "=": "equal",
            "<>": "not_equal",
            "<": "less_than",
            "<=": "less_than_or_equal",
            ">": "greater_than",
            ">=": "greater_than_or_equal",
            "+": "add",
            "-": "subtract",
            "*": "multiply",
            "/": "divide",
            "%": "modulus",
        }
        return self._call(names[op], [left, right])

    def _lower_unary(self, expression: ast.UnaryOp) -> RowExpression:
        operand = self.lower(expression.operand)
        if expression.operator == "not":
            return not_(operand)
        return self._call("negate", [operand])

    _HIGHER_ORDER = ("transform", "filter", "any_match")

    def _lower_call(self, expression: ast.FunctionCall) -> RowExpression:
        if self._registry.is_aggregate(expression.name):
            raise SemanticError(
                f"aggregate function {expression.name}() not allowed in this context"
            )
        if (
            expression.name.lower() in self._HIGHER_ORDER
            and len(expression.arguments) == 2
            and isinstance(expression.arguments[1], ast.LambdaExpression)
        ):
            return self._lower_higher_order(expression)
        arguments = [self.lower(a) for a in expression.arguments]
        return self._call(expression.name, arguments)

    def _lower_higher_order(self, expression: ast.FunctionCall) -> RowExpression:
        """Lower transform/filter/any_match with a lambda argument.

        The lambda's parameter is typed from the array's element type; its
        body may capture outer columns (evaluated per row).
        """
        from repro.core.expressions import LambdaDefinitionExpression
        from repro.core.types import ArrayType

        name = expression.name.lower()
        collection = self.lower(expression.arguments[0])
        if not isinstance(collection.type, ArrayType):
            raise SemanticError(
                f"{name}() requires an array, got {collection.type.display()}"
            )
        lambda_ast = expression.arguments[1]
        if len(lambda_ast.parameters) != 1:
            raise SemanticError(f"{name}() lambda takes exactly one parameter")
        parameter = lambda_ast.parameters[0]
        element_type = collection.type.element_type
        lambda_scope = _LambdaScope(
            self._scope, {parameter: VariableReferenceExpression(parameter, element_type)}
        )
        body = _ExpressionLowerer(
            self._analyzer, lambda_scope, self._allow_aggregates
        ).lower(lambda_ast.body)

        if name == "transform":
            return_type: PrestoType = ArrayType(body.type)
        elif name == "filter":
            if body.type is not BOOLEAN:
                raise SemanticError("filter() lambda must return boolean")
            return_type = collection.type
        else:  # any_match
            if body.type is not BOOLEAN:
                raise SemanticError("any_match() lambda must return boolean")
            return_type = BOOLEAN

        from repro.core.functions import FunctionHandle

        lambda_expression = LambdaDefinitionExpression(
            (parameter,), (element_type,), body, body.type
        )
        handle = FunctionHandle(
            name,
            (collection.type.display(), "function"),
            return_type.display(),
        )
        return CallExpression(name, handle, return_type, (collection, lambda_expression))

    def _lower_in(self, expression: ast.InPredicate) -> RowExpression:
        value = self.lower(expression.value)
        candidates = [self.lower(c) for c in expression.candidates]
        result = SpecialFormExpression(
            SpecialForm.IN, BOOLEAN, tuple([value] + candidates)
        )
        return not_(result) if expression.negated else result

    def _lower_between(self, expression: ast.BetweenPredicate) -> RowExpression:
        value = self.lower(expression.value)
        low = self.lower(expression.low)
        high = self.lower(expression.high)
        result = and_(
            self._call("greater_than_or_equal", [value, low]),
            self._call("less_than_or_equal", [value, high]),
        )
        return not_(result) if expression.negated else result

    def _lower_like(self, expression: ast.LikePredicate) -> RowExpression:
        result = self._call(
            "like", [self.lower(expression.value), self.lower(expression.pattern)]
        )
        return not_(result) if expression.negated else result

    def _lower_cast(self, expression: ast.Cast) -> RowExpression:
        target = parse_type(expression.target_type)
        inner = self.lower(expression.expression)
        if target.is_nested():
            raise SemanticError(f"CAST to {target.display()} is not supported")
        return self._call(f"cast_{target.name}", [inner])

    def _lower_case(self, expression: ast.CaseExpression) -> RowExpression:
        default: RowExpression
        if expression.default is not None:
            default = self.lower(expression.default)
        else:
            default = ConstantExpression(None, UNKNOWN)
        result = default
        result_type = default.type
        for condition_ast, value_ast in reversed(expression.when_clauses):
            condition = self.lower(condition_ast)
            value = self.lower(value_ast)
            if result_type is UNKNOWN:
                result_type = value.type
            result = SpecialFormExpression(
                SpecialForm.IF, result_type, (condition, value, result)
            )
        return result


class _LambdaScope(Scope):
    """Scope extending a parent with lambda parameter bindings."""

    def __init__(
        self, parent: Scope, parameters: dict[str, VariableReferenceExpression]
    ) -> None:
        super().__init__(parent.fields)
        self._parent = parent
        self._parameters = parameters

    def resolve(self, parts: tuple[str, ...]) -> RowExpression:
        if parts[0] in self._parameters:
            return _apply_dereferences(self._parameters[parts[0]], parts[1:])
        return self._parent.resolve(parts)


@dataclass
class _AggregateSpec:
    call_ast: ast.FunctionCall
    handle: object
    lowered_arguments: list[RowExpression]
    distinct: bool
    output: VariableReferenceExpression


class _AggregateCollector:
    """Finds aggregate calls, dedupes them, and rewrites post-agg expressions."""

    def __init__(self, analyzer: Analyzer, base_scope: Scope) -> None:
        self._analyzer = analyzer
        self._scope = base_scope
        self._registry = analyzer._registry
        self._specs: dict[ast.FunctionCall, _AggregateSpec] = {}

    def specs(self) -> list[_AggregateSpec]:
        return list(self._specs.values())

    def collect(self, expression: ast.Expression) -> None:
        for call in _find_aggregate_calls(self._registry, expression):
            if call in self._specs:
                continue
            lowered_args = [
                self._analyzer._lower(a, self._scope, allow_aggregates=False)
                for a in call.arguments
            ]
            handle, _ = self._registry.resolve_aggregate(
                call.name, [a.type for a in lowered_args]
            )
            output = self._analyzer._new_variable(
                call.name, handle.resolved_return_type()
            )
            self._specs[call] = _AggregateSpec(
                call, handle, lowered_args, call.distinct, output
            )

    def lower_post_aggregation(
        self,
        expression: ast.Expression,
        key_map: dict[ast.Expression, VariableReferenceExpression],
    ) -> RowExpression:
        """Lower an expression in the post-aggregation scope.

        Group-by expressions resolve to key variables; aggregate calls to
        their result variables; anything else must decompose into those.
        """
        if expression in key_map:
            return key_map[expression]
        if isinstance(expression, ast.FunctionCall) and self._registry.is_aggregate(
            expression.name
        ):
            self.collect(expression)
            return self._specs[expression].output

        if isinstance(expression, ast.Literal):
            return ConstantExpression(expression.value, _literal_type(expression.value))
        if isinstance(expression, ast.Identifier):
            raise SemanticError(
                f"column {expression.name!r} must appear in GROUP BY or inside an aggregate"
            )

        # Recurse structurally, rebuilding with lowered children.
        rebuilt_scope = _PostAggregationScope(self, key_map)
        lowerer = _ExpressionLowerer(self._analyzer, rebuilt_scope, False)
        lowerer.lower = _wrap_post_agg_lower(lowerer, self, key_map)  # type: ignore
        return lowerer.lower(expression)


class _PostAggregationScope(Scope):
    def __init__(self, collector: _AggregateCollector, key_map: dict) -> None:
        super().__init__([])
        self._collector = collector
        self._key_map = key_map

    def resolve(self, parts: tuple[str, ...]) -> RowExpression:
        identifier = ast.Identifier(parts)
        if identifier in self._key_map:
            return self._key_map[identifier]
        raise SemanticError(
            f"column {'.'.join(parts)!r} must appear in GROUP BY or inside an aggregate"
        )


def _wrap_post_agg_lower(lowerer, collector: _AggregateCollector, key_map: dict):
    original = _ExpressionLowerer.lower

    def lower(expression: ast.Expression) -> RowExpression:
        if expression in key_map:
            return key_map[expression]
        if isinstance(expression, ast.FunctionCall) and collector._registry.is_aggregate(
            expression.name
        ):
            collector.collect(expression)
            return collector._specs[expression].output
        return original(lowerer, expression)

    return lower


def _find_aggregate_calls(
    registry: FunctionRegistry, expression: ast.Expression
) -> list[ast.FunctionCall]:
    found: list[ast.FunctionCall] = []

    def visit(node: ast.Expression) -> None:
        if isinstance(node, ast.FunctionCall):
            if registry.is_aggregate(node.name):
                found.append(node)
                return  # nested aggregates are invalid; don't descend
            for argument in node.arguments:
                visit(argument)
            return
        for attr in (
            "left", "right", "operand", "value", "low", "high", "pattern",
            "expression", "base", "index", "default",
        ):
            child = getattr(node, attr, None)
            if isinstance(child, ast.Expression):
                visit(child)
        for attr in ("candidates",):
            children = getattr(node, attr, None)
            if children:
                for child in children:
                    visit(child)
        when_clauses = getattr(node, "when_clauses", None)
        if when_clauses:
            for condition, value in when_clauses:
                visit(condition)
                visit(value)

    visit(expression)
    return found


def _contains_aggregate(
    registry: FunctionRegistry, expressions: Sequence[ast.Expression]
) -> bool:
    return any(_find_aggregate_calls(registry, e) for e in expressions if e is not None)


def _derive_name(expression: ast.Expression) -> Optional[str]:
    if isinstance(expression, ast.Identifier):
        return expression.parts[-1]
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    return None


def _literal_type(value: object) -> PrestoType:
    if value is None:
        return UNKNOWN
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return BIGINT
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, str):
        return VARCHAR
    raise SemanticError(f"unsupported literal {value!r}")
