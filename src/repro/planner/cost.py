"""Cardinality and cost estimation over plan trees.

The estimator is deliberately simple — textbook System-R style formulas
over the ANALYZE statistics — because its only consumers make *relative*
choices (which relation builds, which side broadcasts, which join runs
first) where being directionally right matters and being precisely right
does not.  Every estimate is ``Optional``: a missing table statistic
poisons the subtree estimate to ``None`` and the consuming rule must fall
back to the stats-free behaviour.

Formulas:

- scan: ``row_count × selectivity(pushed constraint)``;
- filter: ``child × selectivity(predicate)``;
- inner equi-join: ``|L|·|R| / Π max(ndv(lk), ndv(rk))``;
- group-by: ``min(child, Π ndv(group keys))``;
- limit/topn: ``min(child, count)``.

Selectivity of a conjunct: equality ``(1-nulls)/ndv``, IN ``k/ndv``,
range comparisons interpolate the [min, max] interval for numerics, and
anything unrecognized costs the Presto-style 0.9 unknown-filter
coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
    conjuncts,
    expression_from_dict,
)
from repro.metastore.statistics import ColumnStatisticsEntry
from repro.planner.plan import (
    AggregationNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    TableScanNode,
    TopNNode,
    UnionNode,
    ValuesNode,
)
from repro.planner.stats import StatsProvider

# A conjunct the estimator cannot interpret filters *something*; Presto
# charges this coefficient rather than assuming a no-op.
UNKNOWN_FILTER_COEFFICIENT = 0.9
# A recognized comparison over a column with no statistics.
DEFAULT_COMPARISON_SELECTIVITY = 0.25


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated output of one plan node.

    ``column_stats`` carries per-output-variable statistics upward so
    join/group-by formulas can see NDVs through projections and filters;
    NDVs are not rescaled by selectivity (they stay upper bounds).
    """

    row_count: float
    column_stats: Mapping[str, ColumnStatisticsEntry]

    def column(self, name: str) -> Optional[ColumnStatisticsEntry]:
        return self.column_stats.get(name)


class CostEstimator:
    """Bottom-up row-count estimation with per-node memoization."""

    def __init__(self, stats: StatsProvider) -> None:
        self._stats = stats
        self._memo: dict[str, Optional[PlanEstimate]] = {}

    # -- public API ----------------------------------------------------------

    def estimate(self, node: PlanNode) -> Optional[PlanEstimate]:
        """Output-row estimate for ``node`` or None without statistics."""
        cached = self._memo.get(node.id)
        if cached is None and node.id not in self._memo:
            cached = self._estimate(node)
            self._memo[node.id] = cached
        return cached

    def cumulative_rows(self, node: PlanNode) -> Optional[float]:
        """Total rows flowing through the subtree — the plan's "cost"."""
        total = 0.0
        for current in node.walk():
            estimate = self.estimate(current)
            if estimate is None:
                return None
            total += estimate.row_count
        return total

    # -- per-node estimation -------------------------------------------------

    def _estimate(self, node: PlanNode) -> Optional[PlanEstimate]:
        if isinstance(node, TableScanNode):
            return self._estimate_scan(node)
        if isinstance(node, ValuesNode):
            return PlanEstimate(float(len(node.rows)), {})
        if isinstance(node, FilterNode):
            child = self.estimate(node.source)
            if child is None:
                return None
            selectivity = predicate_selectivity(node.predicate, child.column_stats)
            return PlanEstimate(child.row_count * selectivity, child.column_stats)
        if isinstance(node, ProjectNode):
            child = self.estimate(node.source)
            if child is None:
                return None
            forwarded = {}
            for variable, expression in node.assignments:
                if isinstance(expression, VariableReferenceExpression):
                    entry = child.column(expression.name)
                    if entry is not None:
                        forwarded[variable.name] = entry
            return PlanEstimate(child.row_count, forwarded)
        if isinstance(node, JoinNode):
            return self._estimate_join(node)
        if isinstance(node, AggregationNode):
            child = self.estimate(node.source)
            if child is None:
                return None
            if not node.group_keys:
                return PlanEstimate(1.0, {})
            groups = 1.0
            for key in node.group_keys:
                entry = child.column(key.name)
                if entry is None:
                    # Unknown key NDV: the sqrt heuristic keeps the guess
                    # between 1 and the child cardinality.
                    groups *= max(child.row_count ** 0.5, 1.0)
                else:
                    groups *= max(entry.ndv, 1)
            return PlanEstimate(min(child.row_count, groups), dict(child.column_stats))
        if isinstance(node, (LimitNode, TopNNode)):
            child = self.estimate(node.source)
            if child is None:
                return None
            return PlanEstimate(
                min(child.row_count, float(node.count)), child.column_stats
            )
        if isinstance(node, (SortNode, OutputNode)):
            return self.estimate(node.sources()[0])
        if isinstance(node, UnionNode):
            total = 0.0
            for source in node.union_sources:
                child = self.estimate(source)
                if child is None:
                    return None
                total += child.row_count
            return PlanEstimate(total, {})
        return None  # spatial joins, remote sources, unknown nodes

    def _estimate_scan(self, node: TableScanNode) -> Optional[PlanEstimate]:
        resolved = self._stats.stats_for_scan(node)
        if resolved is None:
            return None
        row_count, column_stats = resolved
        selectivity = 1.0
        constraint = getattr(node.handle, "constraint", None) or {}
        for serialized in constraint.values():
            predicate = _deserialize_constraint(serialized)
            if predicate is None:
                continue
            # Pushed predicates name connector columns; map them back to
            # variable space for the stats lookup.
            by_column = {
                column: column_stats[variable]
                for variable, column in node.assignments
                if variable in column_stats
            }
            selectivity *= predicate_selectivity(predicate, by_column)
        return PlanEstimate(row_count * selectivity, column_stats)

    def _estimate_join(self, node: JoinNode) -> Optional[PlanEstimate]:
        left = self.estimate(node.left)
        right = self.estimate(node.right)
        if left is None or right is None:
            return None
        merged = dict(left.column_stats)
        merged.update(right.column_stats)
        rows = left.row_count * right.row_count
        if node.join_type == "cross" or not node.criteria:
            pass
        else:
            for left_variable, right_variable in node.criteria:
                left_entry = left.column(left_variable.name)
                right_entry = right.column(right_variable.name)
                ndv = max(
                    left_entry.ndv if left_entry is not None else 1,
                    right_entry.ndv if right_entry is not None else 1,
                    1,
                )
                if left_entry is None and right_entry is None:
                    ndv = max((left.row_count * right.row_count) ** 0.25, 1.0)
                rows /= ndv
        if node.filter is not None:
            rows *= predicate_selectivity(node.filter, merged)
        if node.join_type == "left":
            rows = max(rows, left.row_count)
        elif node.join_type == "right":
            rows = max(rows, right.row_count)
        return PlanEstimate(rows, merged)


# -- selectivity --------------------------------------------------------------


def predicate_selectivity(
    predicate: RowExpression,
    column_stats: Mapping[str, ColumnStatisticsEntry],
) -> float:
    """Combined selectivity of a predicate's conjuncts (independence)."""
    selectivity = 1.0
    for conjunct in conjuncts(predicate):
        selectivity *= _conjunct_selectivity(conjunct, column_stats)
    return max(min(selectivity, 1.0), 0.0)


def _conjunct_selectivity(
    conjunct: RowExpression,
    column_stats: Mapping[str, ColumnStatisticsEntry],
) -> float:
    matched = _match_comparison(conjunct)
    if matched is None:
        return UNKNOWN_FILTER_COEFFICIENT
    name, op, constants = matched
    entry = column_stats.get(name)
    if entry is None:
        return DEFAULT_COMPARISON_SELECTIVITY
    defined = 1.0 - entry.null_fraction
    if op == "equal":
        return defined / max(entry.ndv, 1)
    if op == "in":
        return defined * min(len(constants) / max(entry.ndv, 1), 1.0)
    return defined * _range_fraction(entry, op, constants[0])


def _range_fraction(entry: ColumnStatisticsEntry, op: str, bound: Any) -> float:
    low, high = entry.min_value, entry.max_value
    if (
        low is None
        or high is None
        or not isinstance(low, (int, float))
        or not isinstance(high, (int, float))
        or not isinstance(bound, (int, float))
    ):
        return DEFAULT_COMPARISON_SELECTIVITY
    if high <= low:
        return 1.0 if low <= bound <= high else 0.0
    width = float(high - low)
    if op in ("less_than", "less_than_or_equal"):
        fraction = (bound - low) / width
    else:
        fraction = (high - bound) / width
    return max(min(fraction, 1.0), 0.0)


def _match_comparison(
    conjunct: RowExpression,
) -> Optional[tuple[str, str, list[Any]]]:
    """Match ``var <op> constant`` and ``var IN (constants)`` conjuncts."""
    if (
        isinstance(conjunct, SpecialFormExpression)
        and conjunct.form is SpecialForm.IN
        and isinstance(conjunct.arguments[0], VariableReferenceExpression)
        and all(isinstance(a, ConstantExpression) for a in conjunct.arguments[1:])
    ):
        constants = [a.value for a in conjunct.arguments[1:] if a.value is not None]
        return (conjunct.arguments[0].name, "in", constants) if constants else None
    if isinstance(conjunct, CallExpression) and len(conjunct.arguments) == 2:
        name = conjunct.function_handle.name
        if name not in (
            "equal",
            "greater_than",
            "greater_than_or_equal",
            "less_than",
            "less_than_or_equal",
        ):
            return None
        left, right = conjunct.arguments
        if isinstance(left, VariableReferenceExpression) and isinstance(
            right, ConstantExpression
        ):
            return None if right.value is None else (left.name, name, [right.value])
        if isinstance(left, ConstantExpression) and isinstance(
            right, VariableReferenceExpression
        ):
            flipped = {
                "equal": "equal",
                "greater_than": "less_than",
                "greater_than_or_equal": "less_than_or_equal",
                "less_than": "greater_than",
                "less_than_or_equal": "greater_than_or_equal",
            }
            return (
                None
                if left.value is None
                else (right.name, flipped[name], [left.value])
            )
    return None


def _deserialize_constraint(serialized: Any) -> Optional[RowExpression]:
    if not isinstance(serialized, dict):
        return None
    try:
        return expression_from_dict(serialized)
    except Exception:
        return None  # connector-specific constraint payload, not an expression
