"""Plan fragmentation: dividing a plan into distributed stages.

Section III: "The fragmenter divides the plan into fragments.  Each
running plan fragment is called a stage, which could be executed in
parallel.  Stage consists of tasks, which are processing one or many
splits of input data."

The fragmenter inserts exchange boundaries where data must move between
machines and groups the operators between boundaries into
:class:`PlanFragment` objects:

- below each aggregation over distributed input: a *partial* fragment per
  split side and a REPARTITION exchange on the grouping keys;
- at each join: the build side ends in a REPARTITION (partitioned
  distribution) or REPLICATE (broadcast) exchange;
- below each LIMIT over distributed input: a partial per-task limit, with
  the final limit applied after the gather;
- each UNION ALL branch becomes its own fragment, gathered in order;
- at the top: a GATHER exchange into the single-node output fragment.

Fragments are *executable*: :class:`RemoteSourceNode` leaves are wired to
:class:`Exchange` edges that :class:`repro.execution.scheduler.StageScheduler`
resolves against in-memory exchange buffers, so the fragmented plan is the
engine's actual execution path (``PrestoEngine.execute``).  The fragments
also drive the distributed EXPLAIN, ``EXPLAIN ANALYZE``, the cluster
simulation's task accounting, and the federation benchmarks.

Aggregation splitting follows the partial/final protocol: the fragment
below the exchange runs with ``step=PARTIAL`` and emits raw accumulator
*states* (not finalized values); the fragment above merges them with
``step=FINAL``.  DISTINCT aggregates and aggregations that are already in
merge mode (``step=FINAL`` after connector aggregation pushdown) are not
split again — their raw input is repartitioned on the grouping keys (or
gathered, for global aggregates) and the node runs once beyond the
exchange, which is equivalent because every row of a group lands in the
same partition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.planner.plan import (
    Aggregation,
    AggregationNode,
    AggregationStep,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
    UnionNode,
    ValuesNode,
)


class ExchangeKind:
    GATHER = "GATHER"  # all data to one node
    REPARTITION = "REPARTITION"  # hash-partition on keys
    REPLICATE = "REPLICATE"  # broadcast to every node


@dataclass(frozen=True)
class Exchange:
    """A data movement edge between two fragments.

    ``partitioned`` marks exchanges whose consumer runs one task per hash
    partition (the final side of a split aggregation): the producer
    partitions its output on ``partition_keys`` and consumer task *i*
    reads only partition *i*.  A REPARTITION exchange without the flag
    (a join build side) records where the data would be placed in a real
    cluster, but every consumer task reads it in full — the in-process
    hash join needs the whole build table per probe task.
    """

    kind: str
    source_fragment: int
    partition_keys: tuple[str, ...] = ()
    partitioned: bool = False


@dataclass
class PlanFragment:
    """One stage: a connected operator subtree executed by parallel tasks."""

    fragment_id: int
    root: PlanNode
    # Exchanges feeding this fragment, in source order.
    inputs: list[Exchange] = field(default_factory=list)
    # Distribution: 'source' (driven by connector splits), 'hash'
    # (repartitioned intermediate), or 'single' (coordinator-side).
    distribution: str = "source"

    def describe(self) -> str:
        lines = [f"Fragment {self.fragment_id} [{self.distribution}]"]
        for exchange in self.inputs:
            keys = f" keys={list(exchange.partition_keys)}" if exchange.partition_keys else ""
            lines.append(
                f"  input: {exchange.kind} from fragment {exchange.source_fragment}{keys}"
            )
        lines.extend("  " + line for line in self.root.pretty().splitlines())
        return "\n".join(lines)


@dataclass
class FragmentedPlan:
    fragments: list[PlanFragment]

    @property
    def root_fragment(self) -> PlanFragment:
        return self.fragments[-1]

    def stage_count(self) -> int:
        return len(self.fragments)

    def fragment_by_id(self, fragment_id: int) -> PlanFragment:
        for fragment in self.fragments:
            if fragment.fragment_id == fragment_id:
                return fragment
        raise KeyError(f"no fragment {fragment_id}")

    def describe(self) -> str:
        return "\n\n".join(f.describe() for f in reversed(self.fragments))


@dataclass(frozen=True)
class RemoteSourceNode(PlanNode):
    """Placeholder leaf standing for an exchange input inside a fragment."""

    exchange: Exchange
    output_variables: tuple = ()
    id: str = field(default_factory=lambda: f"remote_{next(_remote_ids)}")

    @property
    def outputs(self):
        return self.output_variables

    def sources(self):
        return ()

    def replace_sources(self, new_sources):
        assert not new_sources
        return self

    def describe(self) -> str:
        keys = (
            f" keys={list(self.exchange.partition_keys)}"
            if self.exchange.partition_keys
            else ""
        )
        return (
            f"RemoteSource[{self.exchange.kind} <- fragment "
            f"{self.exchange.source_fragment}]{keys}"
        )


_remote_ids = itertools.count()


class Fragmenter:
    """Splits an optimized plan into distributed fragments."""

    def fragment(self, plan: OutputNode) -> FragmentedPlan:
        self._fragments: list[PlanFragment] = []
        body = plan.source
        root_body, inputs, distribution = self._visit(body)
        final_inputs = list(inputs)
        if distribution != "single":
            # Results gather onto the coordinator for output.
            source_fragment = self._add_fragment(root_body, final_inputs, distribution)
            gather = Exchange(ExchangeKind.GATHER, source_fragment.fragment_id)
            root_body = RemoteSourceNode(gather, root_body.outputs)
            final_inputs = [gather]
        output = OutputNode(source=root_body, column_names=plan.column_names)
        self._add_fragment(output, final_inputs, "single")
        return FragmentedPlan(self._fragments)

    def _add_fragment(
        self, root: PlanNode, inputs: list[Exchange], distribution: str
    ) -> PlanFragment:
        fragment = PlanFragment(len(self._fragments), root, inputs, distribution)
        self._fragments.append(fragment)
        return fragment

    def _visit(self, node: PlanNode) -> tuple[PlanNode, list[Exchange], str]:
        """Returns (node within current fragment, exchange inputs, distribution)."""
        if isinstance(node, (TableScanNode, ValuesNode)):
            return node, [], "source"

        if isinstance(node, (FilterNode, ProjectNode)):
            child, inputs, distribution = self._visit(node.source)
            return node.replace_sources([child]), inputs, distribution

        if isinstance(node, LimitNode):
            child, inputs, distribution = self._visit(node.source)
            if distribution == "single":
                return node.replace_sources([child]), inputs, "single"
            # Partial limit caps each task's output; the true limit is
            # applied once after the gather (a per-task limit alone would
            # return up to count × tasks rows).
            partial = replace(node, source=child, partial=True)
            source_fragment = self._add_fragment(partial, inputs, distribution)
            exchange = Exchange(ExchangeKind.GATHER, source_fragment.fragment_id)
            remote = RemoteSourceNode(exchange, partial.outputs)
            return replace(node, source=remote, partial=False), [exchange], "single"

        if isinstance(node, AggregationNode):
            child, inputs, distribution = self._visit(node.source)
            if distribution == "single":
                return node.replace_sources([child]), inputs, "single"
            keys = tuple(k.name for k in node.group_keys)
            splittable = node.step == AggregationStep.SINGLE and not any(
                a.distinct for a in node.aggregations
            )
            if splittable:
                # Partial aggregation (emitting accumulator states) runs in
                # the child's fragment; the final aggregation merges states
                # after a repartition on the grouping keys.
                below = replace(
                    node.replace_sources([child]), step=AggregationStep.PARTIAL
                )
                remote_outputs = node.outputs
            else:
                # DISTINCT or already-FINAL (pushdown merge) aggregations
                # run once beyond the exchange over their raw input: the
                # repartition on grouping keys keeps them correct because
                # a group never straddles partitions.
                below = child
                remote_outputs = child.outputs
            source_fragment = self._add_fragment(below, inputs, distribution)
            kind = ExchangeKind.REPARTITION if keys else ExchangeKind.GATHER
            exchange = Exchange(
                kind, source_fragment.fragment_id, keys, partitioned=bool(keys)
            )
            remote = RemoteSourceNode(exchange, remote_outputs)
            if splittable:
                # The FINAL aggregation merges the partial state columns,
                # referencing them by the output variable names the PARTIAL
                # step emitted (same shape as the pushdown merge of
                # figure 2).
                final_aggregations = tuple(
                    Aggregation(
                        output=a.output,
                        function_handle=a.function_handle,
                        arguments=(a.output,),
                    )
                    for a in node.aggregations
                )
                beyond: PlanNode = AggregationNode(
                    source=remote,
                    group_keys=node.group_keys,
                    aggregations=final_aggregations,
                    step=AggregationStep.FINAL,
                )
            else:
                beyond = node.replace_sources([remote])
            return beyond, [exchange], "hash" if keys else "single"

        if isinstance(node, (JoinNode, SpatialJoinNode)):
            left, left_inputs, left_distribution = self._visit(node.sources()[0])
            right, right_inputs, _ = self._visit(node.sources()[1])
            # The build side always crosses an exchange to reach the probe
            # side's tasks: replicate for broadcast, repartition otherwise.
            build_fragment = self._add_fragment(right, right_inputs, "source")
            broadcast = (
                isinstance(node, SpatialJoinNode)
                or getattr(node, "distribution", "partitioned") == "broadcast"
            )
            if broadcast:
                exchange = Exchange(ExchangeKind.REPLICATE, build_fragment.fragment_id)
            else:
                keys = tuple(r.name for _, r in node.criteria) if isinstance(node, JoinNode) else ()
                exchange = Exchange(
                    ExchangeKind.REPARTITION, build_fragment.fragment_id, keys
                )
            remote = RemoteSourceNode(exchange, node.sources()[1].outputs)
            rebuilt = node.replace_sources([left, remote])
            return rebuilt, left_inputs + [exchange], left_distribution

        if isinstance(node, (SortNode, TopNNode)):
            child, inputs, distribution = self._visit(node.source)
            if distribution == "single":
                return node.replace_sources([child]), inputs, "single"
            # Global ordering requires gathering to one node.
            source_fragment = self._add_fragment(child, inputs, distribution)
            exchange = Exchange(ExchangeKind.GATHER, source_fragment.fragment_id)
            remote = RemoteSourceNode(exchange, child.outputs)
            return node.replace_sources([remote]), [exchange], "single"

        if isinstance(node, UnionNode):
            # Each UNION ALL branch runs as its own fragment; the union
            # itself concatenates the gathered branch outputs in order.
            exchanges: list[Exchange] = []
            remotes: list[PlanNode] = []
            for branch in node.union_sources:
                child, inputs, distribution = self._visit(branch)
                branch_fragment = self._add_fragment(child, inputs, distribution)
                exchange = Exchange(ExchangeKind.GATHER, branch_fragment.fragment_id)
                exchanges.append(exchange)
                remotes.append(RemoteSourceNode(exchange, child.outputs))
            return node.replace_sources(remotes), exchanges, "single"

        if isinstance(node, RemoteSourceNode):
            return node, [node.exchange], "hash"

        # Unknown node kinds stay in the current fragment.
        children = [self._visit(s) for s in node.sources()]
        inputs = [e for _, es, _ in children for e in es]
        rebuilt = node.replace_sources([c for c, _, _ in children])
        return rebuilt, inputs, "source"
