"""Plan fragmentation: dividing a plan into distributed stages.

Section III: "The fragmenter divides the plan into fragments.  Each
running plan fragment is called a stage, which could be executed in
parallel.  Stage consists of tasks, which are processing one or many
splits of input data."

The fragmenter inserts exchange boundaries where data must move between
machines and groups the operators between boundaries into
:class:`PlanFragment` objects:

- below each aggregation over distributed input: a *partial* fragment per
  split side and a REPARTITION exchange on the grouping keys;
- at each join: the build side ends in a REPARTITION (partitioned
  distribution) or REPLICATE (broadcast) exchange;
- at the top: a GATHER exchange into the single-node output fragment.

The in-process executor does not need fragments to run a query (its
pipeline is already correct); fragments drive the distributed EXPLAIN,
the cluster simulation's task counting, and the federation benchmarks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.planner.plan import (
    AggregationNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
    ValuesNode,
)


class ExchangeKind:
    GATHER = "GATHER"  # all data to one node
    REPARTITION = "REPARTITION"  # hash-partition on keys
    REPLICATE = "REPLICATE"  # broadcast to every node


@dataclass(frozen=True)
class Exchange:
    """A data movement edge between two fragments."""

    kind: str
    source_fragment: int
    partition_keys: tuple[str, ...] = ()


@dataclass
class PlanFragment:
    """One stage: a connected operator subtree executed by parallel tasks."""

    fragment_id: int
    root: PlanNode
    # Exchanges feeding this fragment, in source order.
    inputs: list[Exchange] = field(default_factory=list)
    # Distribution: 'source' (driven by connector splits), 'hash'
    # (repartitioned intermediate), or 'single' (coordinator-side).
    distribution: str = "source"

    def describe(self) -> str:
        lines = [f"Fragment {self.fragment_id} [{self.distribution}]"]
        for exchange in self.inputs:
            keys = f" keys={list(exchange.partition_keys)}" if exchange.partition_keys else ""
            lines.append(
                f"  input: {exchange.kind} from fragment {exchange.source_fragment}{keys}"
            )
        lines.extend("  " + line for line in self.root.pretty().splitlines())
        return "\n".join(lines)


@dataclass
class FragmentedPlan:
    fragments: list[PlanFragment]

    @property
    def root_fragment(self) -> PlanFragment:
        return self.fragments[-1]

    def stage_count(self) -> int:
        return len(self.fragments)

    def describe(self) -> str:
        return "\n\n".join(f.describe() for f in reversed(self.fragments))


@dataclass(frozen=True)
class RemoteSourceNode(PlanNode):
    """Placeholder leaf standing for an exchange input inside a fragment."""

    exchange: Exchange
    output_variables: tuple = ()
    id: str = field(default_factory=lambda: f"remote_{next(_remote_ids)}")

    @property
    def outputs(self):
        return self.output_variables

    def sources(self):
        return ()

    def replace_sources(self, new_sources):
        assert not new_sources
        return self

    def describe(self) -> str:
        keys = (
            f" keys={list(self.exchange.partition_keys)}"
            if self.exchange.partition_keys
            else ""
        )
        return (
            f"RemoteSource[{self.exchange.kind} <- fragment "
            f"{self.exchange.source_fragment}]{keys}"
        )


_remote_ids = itertools.count()


class Fragmenter:
    """Splits an optimized plan into distributed fragments."""

    def fragment(self, plan: OutputNode) -> FragmentedPlan:
        self._fragments: list[PlanFragment] = []
        body = plan.source
        root_body, inputs, distribution = self._visit(body)
        final_inputs = list(inputs)
        if distribution != "single":
            # Results gather onto the coordinator for output.
            source_fragment = self._add_fragment(root_body, final_inputs, distribution)
            gather = Exchange(ExchangeKind.GATHER, source_fragment.fragment_id)
            root_body = RemoteSourceNode(gather, body.outputs)
            final_inputs = [gather]
        output = OutputNode(source=root_body, column_names=plan.column_names)
        self._add_fragment(output, final_inputs, "single")
        return FragmentedPlan(self._fragments)

    def _add_fragment(
        self, root: PlanNode, inputs: list[Exchange], distribution: str
    ) -> PlanFragment:
        fragment = PlanFragment(len(self._fragments), root, inputs, distribution)
        self._fragments.append(fragment)
        return fragment

    def _visit(self, node: PlanNode) -> tuple[PlanNode, list[Exchange], str]:
        """Returns (node within current fragment, exchange inputs, distribution)."""
        if isinstance(node, (TableScanNode, ValuesNode)):
            return node, [], "source"

        if isinstance(node, (FilterNode, ProjectNode, LimitNode)):
            child, inputs, distribution = self._visit(node.source)
            return node.replace_sources([child]), inputs, distribution

        if isinstance(node, AggregationNode):
            child, inputs, distribution = self._visit(node.source)
            if distribution == "single":
                return node.replace_sources([child]), inputs, "single"
            # Partial aggregation runs in the child's fragment; the final
            # aggregation runs after a repartition on the grouping keys.
            partial = node.replace_sources([child])
            source_fragment = self._add_fragment(partial, inputs, distribution)
            keys = tuple(k.name for k in node.group_keys)
            kind = ExchangeKind.REPARTITION if keys else ExchangeKind.GATHER
            exchange = Exchange(kind, source_fragment.fragment_id, keys)
            remote = RemoteSourceNode(exchange, node.outputs)
            final = AggregationNode(
                source=remote,
                group_keys=node.group_keys,
                aggregations=node.aggregations,
                step="FINAL",
            )
            return final, [exchange], "hash" if keys else "single"

        if isinstance(node, (JoinNode, SpatialJoinNode)):
            left, left_inputs, left_distribution = self._visit(node.sources()[0])
            right, right_inputs, _ = self._visit(node.sources()[1])
            # The build side always crosses an exchange to reach the probe
            # side's tasks: replicate for broadcast, repartition otherwise.
            build_fragment = self._add_fragment(right, right_inputs, "source")
            broadcast = (
                isinstance(node, SpatialJoinNode)
                or getattr(node, "distribution", "partitioned") == "broadcast"
            )
            if broadcast:
                exchange = Exchange(ExchangeKind.REPLICATE, build_fragment.fragment_id)
            else:
                keys = tuple(r.name for _, r in node.criteria) if isinstance(node, JoinNode) else ()
                exchange = Exchange(
                    ExchangeKind.REPARTITION, build_fragment.fragment_id, keys
                )
            remote = RemoteSourceNode(exchange, node.sources()[1].outputs)
            rebuilt = node.replace_sources([left, remote])
            return rebuilt, left_inputs + [exchange], left_distribution

        if isinstance(node, (SortNode, TopNNode)):
            child, inputs, distribution = self._visit(node.source)
            if distribution == "single":
                return node.replace_sources([child]), inputs, "single"
            # Global ordering requires gathering to one node.
            source_fragment = self._add_fragment(child, inputs, distribution)
            exchange = Exchange(ExchangeKind.GATHER, source_fragment.fragment_id)
            remote = RemoteSourceNode(exchange, node.source.outputs)
            return node.replace_sources([remote]), [exchange], "single"

        if isinstance(node, RemoteSourceNode):
            return node, [node.exchange], "hash"

        # Unknown node kinds stay in the current fragment.
        children = [self._visit(s) for s in node.sources()]
        inputs = [e for _, es, _ in children for e in es]
        rebuilt = node.replace_sources([c for c, _, _ in children])
        return rebuilt, inputs, "source"
