"""StatsProvider: the planner's read-side view of table statistics.

Bridges :class:`repro.metastore.statistics.TableStatistics` (collected by
``ANALYZE TABLE`` through the connector SPI) into plan-variable space: a
:class:`~repro.planner.plan.TableScanNode` renames connector columns to
plan variables via its ``assignments``, and every cost-estimation consumer
wants statistics keyed by those variable names.

Lookups are memoized per provider instance (one provider per ``optimize``
call), so a plan with many scans of the same table hits the connector
once.
"""

from __future__ import annotations

from typing import Optional

from repro.connectors.spi import Catalog
from repro.metastore.statistics import ColumnStatisticsEntry, TableStatistics
from repro.planner.plan import TableScanNode


class StatsProvider:
    """Resolves table statistics for plan nodes through the catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self._catalog = catalog
        self._cache: dict[tuple[str, str, str], Optional[TableStatistics]] = {}

    def table_statistics(
        self, catalog_name: str, handle
    ) -> Optional[TableStatistics]:
        key = (catalog_name, handle.schema_name, handle.table_name)
        if key not in self._cache:
            metadata = self._catalog.connector(catalog_name).metadata()
            self._cache[key] = metadata.get_table_statistics(handle)
        return self._cache[key]

    def stats_for_scan(
        self, scan: TableScanNode
    ) -> Optional[tuple[int, dict[str, ColumnStatisticsEntry]]]:
        """(row_count, column stats keyed by *output variable* name).

        ``None`` when the table was never analyzed.  Variables reading
        dotted subfield paths get no column entry (only top-level columns
        are analyzed), which degrades their selectivity estimates to the
        defaults — never to wrong answers.
        """
        table_stats = self.table_statistics(scan.catalog, scan.handle)
        if table_stats is None:
            return None
        by_variable: dict[str, ColumnStatisticsEntry] = {}
        for variable_name, column in scan.assignments:
            entry = table_stats.column(column)
            if entry is not None:
                by_variable[variable_name] = entry
        return table_stats.row_count, by_variable
