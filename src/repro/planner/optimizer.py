"""Rule-based optimizer.

The paper's production setup uses "a rule based optimizer, ignoring
statistics" (section XII.A) — cost-based optimization was abandoned because
statistics could not be kept fresh.  This optimizer follows that design:
deterministic rewrite rules applied to fixpoint, no cardinality estimates —
except for one opt-in adaptive pass: when ``ANALYZE TABLE`` has populated
metastore statistics, the join-reordering rule uses them for
smallest-build-first ordering and broadcast-vs-partitioned selection.
Plans whose tables were never analyzed are untouched by that pass, so the
rule-only behaviour is preserved by default.

Rule order: cleanup → predicate pushdown (to fixpoint) → geospatial
rewrite → TopN formation and limit pushdown → materialized-view
substitution → aggregation pushdown → cost-based join reordering +
distribution selection → column pruning (incl. nested paths) → final
cleanup.  MV substitution precedes aggregation pushdown so a matching
view wins; both rules self-gate, leaving unmatched plans untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.connectors.spi import Catalog
from repro.core.functions import FunctionRegistry, default_registry
from repro.planner.analyzer import Session
from repro.planner.plan import OutputNode, PlanNode
from repro.planner.rules.aggregation_pushdown import push_aggregations
from repro.planner.rules.cleanup import merge_filters, remove_identity_projections
from repro.planner.rules.column_pruning import prune_columns
from repro.planner.rules.geo_rewrite import rewrite_geospatial_joins
from repro.planner.rules.limit_pushdown import push_limits, sort_limit_to_topn
from repro.planner.rules.join_reorder import choose_join_distribution, reorder_joins
from repro.planner.rules.mv_substitution import substitute_materialized_views
from repro.planner.rules.predicate_pushdown import push_predicates
from repro.planner.cost import CostEstimator
from repro.planner.stats import StatsProvider


@dataclass
class OptimizerContext:
    catalog: Catalog
    registry: FunctionRegistry
    session: Session


@dataclass
class OptimizerOptions:
    """Feature switches so benchmarks can ablate individual rules."""

    predicate_pushdown: bool = True
    limit_pushdown: bool = True
    aggregation_pushdown: bool = True
    column_pruning: bool = True
    geo_rewrite: bool = True
    # Self-gating: only rewrites aggregations whose connector offers a
    # materialized view at the query's exact read watermark.
    mv_substitution: bool = True
    # Self-gating: only reorders joins whose relations all have ANALYZE
    # statistics, so un-analyzed workloads are byte-identical either way.
    cost_based_join_ordering: bool = True


class Optimizer:
    """Applies the rule pipeline to an analyzed plan."""

    def __init__(
        self,
        catalog: Catalog,
        registry: Optional[FunctionRegistry] = None,
        options: Optional[OptimizerOptions] = None,
    ) -> None:
        self._catalog = catalog
        self._registry = registry or default_registry()
        self.options = options or OptimizerOptions()

    def optimize(self, plan: OutputNode, session: Optional[Session] = None) -> OutputNode:
        ctx = OptimizerContext(self._catalog, self._registry, session or Session())
        options = self.options
        result: PlanNode = plan

        result = merge_filters(result, ctx)
        result = remove_identity_projections(result, ctx)

        if options.predicate_pushdown:
            result = _to_fixpoint(push_predicates, result, ctx)
            result = merge_filters(result, ctx)
        if options.geo_rewrite:
            result = rewrite_geospatial_joins(result, ctx)
            if options.predicate_pushdown:
                result = _to_fixpoint(push_predicates, result, ctx)
        result = sort_limit_to_topn(result, ctx)
        if options.limit_pushdown:
            result = push_limits(result, ctx)
        if options.mv_substitution:
            result = substitute_materialized_views(result, ctx)
        if options.aggregation_pushdown:
            result = push_aggregations(result, ctx)
        estimator = CostEstimator(StatsProvider(self._catalog))
        if options.cost_based_join_ordering:
            result = reorder_joins(result, ctx, estimator)
        # Always resolve distribution='automatic' placeholders — the
        # fragmenter should only ever see broadcast or partitioned.
        result = choose_join_distribution(result, ctx, estimator)
        if options.column_pruning:
            # To fixpoint: the first pass may drop identity-forwarding
            # assignments whose bare variable uses were masking narrower
            # (nested) access paths for the second pass.
            result = _to_fixpoint(
                lambda p, c: remove_identity_projections(prune_columns(p, c), c),
                result,
                ctx,
                max_iterations=3,
            )
        result = remove_identity_projections(result, ctx)

        assert isinstance(result, OutputNode)
        return result


def _to_fixpoint(
    rule: Callable[[PlanNode, OptimizerContext], PlanNode],
    plan: PlanNode,
    ctx: OptimizerContext,
    max_iterations: int = 10,
) -> PlanNode:
    previous = plan.pretty()
    for _ in range(max_iterations):
        plan = rule(plan, ctx)
        rendered = plan.pretty()
        if rendered == previous:
            return plan
        previous = rendered
    return plan
