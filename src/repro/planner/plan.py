"""Logical/physical plan nodes.

Nodes form an immutable tree; the optimizer rewrites by constructing new
nodes.  Every node exposes ``outputs`` — the ordered list of
:class:`VariableReferenceExpression` it produces — which is the engine's
equivalent of a relation schema.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.core.expressions import (
    RowExpression,
    VariableReferenceExpression,
)
from repro.core.functions import FunctionHandle

_plan_ids = itertools.count()


def next_plan_id() -> str:
    return f"plan_{next(_plan_ids)}"


class PlanNode:
    """Base class for plan nodes."""

    id: str

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        raise NotImplementedError

    def sources(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    def replace_sources(self, new_sources: Sequence["PlanNode"]) -> "PlanNode":
        raise NotImplementedError

    def output_names(self) -> list[str]:
        return [v.name for v in self.outputs]

    def walk(self):
        """Yield self and all descendants, pre-order."""
        yield self
        for source in self.sources():
            yield from source.walk()

    def pretty(self, indent: int = 0, annotate=None) -> str:
        """Human-readable plan tree, like EXPLAIN output.

        ``annotate`` optionally maps a node to a suffix string (EXPLAIN
        uses it for estimated row counts); None/empty suffixes are omitted
        so default rendering is unchanged.
        """
        line = "  " * indent + self.describe()
        if annotate is not None:
            suffix = annotate(self)
            if suffix:
                line += " " + suffix
        children = [s.pretty(indent + 1, annotate) for s in self.sources()]
        return "\n".join([line] + children)

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class TableScanNode(PlanNode):
    """Scan of a connector table.

    ``assignments`` maps each output variable name to the connector column
    it reads — possibly a dotted subfield path like ``base.city_id`` after
    nested column pruning.
    """

    catalog: str
    handle: object  # ConnectorTableHandle; typed loosely to avoid cycle
    assignments: tuple[tuple[str, str], ...]  # (variable name, column name)
    output_variables: tuple[VariableReferenceExpression, ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.output_variables

    def sources(self) -> tuple[PlanNode, ...]:
        return ()

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "TableScanNode":
        assert not new_sources
        return self

    def assignments_dict(self) -> dict[str, str]:
        return dict(self.assignments)

    def describe(self) -> str:
        handle = self.handle
        columns = ", ".join(c for _, c in self.assignments)
        extras = []
        if getattr(handle, "constraint", None) is not None:
            extras.append("pushed-filter")
        if getattr(handle, "limit", None) is not None:
            extras.append(f"pushed-limit={handle.limit}")
        if getattr(handle, "aggregation", None) is not None:
            extras.append("pushed-aggregation")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return (
            f"TableScan[{self.catalog}.{handle.schema_name}.{handle.table_name}]"
            f"({columns}){suffix}"
        )


@dataclass(frozen=True)
class ValuesNode(PlanNode):
    """Inline literal rows (used for queries without FROM)."""

    output_variables: tuple[VariableReferenceExpression, ...]
    rows: tuple[tuple, ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.output_variables

    def sources(self) -> tuple[PlanNode, ...]:
        return ()

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "ValuesNode":
        assert not new_sources
        return self


@dataclass(frozen=True)
class FilterNode(PlanNode):
    source: PlanNode
    predicate: RowExpression
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.source.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "FilterNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        return f"Filter[{self.predicate.display()}]"


@dataclass(frozen=True)
class ProjectNode(PlanNode):
    """Computes each output variable from an expression over the source."""

    source: PlanNode
    assignments: tuple[tuple[VariableReferenceExpression, RowExpression], ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return tuple(v for v, _ in self.assignments)

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "ProjectNode":
        return replace(self, source=new_sources[0])

    def assignments_dict(self) -> dict[str, RowExpression]:
        return {v.name: e for v, e in self.assignments}

    def is_identity(self) -> bool:
        """True when this projection merely forwards source outputs 1:1."""
        source_names = [v.name for v in self.source.outputs]
        ours = [
            (v.name, e.name if isinstance(e, VariableReferenceExpression) else None)
            for v, e in self.assignments
        ]
        return all(out == src for out, src in ours) and [o for o, _ in ours] == source_names

    def describe(self) -> str:
        parts = ", ".join(f"{v.name} := {e.display()}" for v, e in self.assignments)
        return f"Project[{parts}]"


@dataclass(frozen=True)
class Aggregation:
    """One aggregate computation inside an AggregationNode."""

    output: VariableReferenceExpression
    function_handle: FunctionHandle
    arguments: tuple[RowExpression, ...]
    distinct: bool = False


class AggregationStep:
    SINGLE = "SINGLE"
    PARTIAL = "PARTIAL"
    FINAL = "FINAL"


@dataclass(frozen=True)
class AggregationNode(PlanNode):
    source: PlanNode
    group_keys: tuple[VariableReferenceExpression, ...]
    aggregations: tuple[Aggregation, ...]
    step: str = AggregationStep.SINGLE
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.group_keys + tuple(a.output for a in self.aggregations)

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "AggregationNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        keys = ", ".join(k.name for k in self.group_keys)
        aggs = ", ".join(
            f"{a.output.name} := {a.function_handle.name}(...)" for a in self.aggregations
        )
        return f"Aggregation[{self.step}](keys=[{keys}], {aggs})"


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """Hash join; ``criteria`` are equi-join variable pairs, ``filter`` any
    extra non-equi condition evaluated on joined rows."""

    join_type: str  # 'inner', 'left', 'right', 'cross'
    left: PlanNode
    right: PlanNode
    criteria: tuple[tuple[VariableReferenceExpression, VariableReferenceExpression], ...]
    filter: Optional[RowExpression] = None
    # 'broadcast' replicates the build side to every node; 'partitioned'
    # hashes both sides (section XII.A: distributed hash join is the
    # production default, broadcast enabled per-session for small builds).
    distribution: str = "partitioned"
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.left.outputs + self.right.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "JoinNode":
        return replace(self, left=new_sources[0], right=new_sources[1])

    def describe(self) -> str:
        criteria = " AND ".join(f"{l.name} = {r.name}" for l, r in self.criteria)
        extra = f" filter=[{self.filter.display()}]" if self.filter is not None else ""
        return f"Join[{self.join_type}, {self.distribution}]({criteria}){extra}"


@dataclass(frozen=True)
class SpatialJoinNode(PlanNode):
    """Geospatial join: probe points against indexed polygons.

    Produced by the geo rewrite rule (figure 13): the brute-force
    ``st_contains`` cross join becomes build_geo_index (a QuadTree built on
    the fly over the polygon side) plus geo_contains probes.
    ``use_index=False`` keeps the brute-force path for comparison.
    """

    left: PlanNode  # probe side (points)
    right: PlanNode  # build side (polygons)
    point_expression: RowExpression  # over left outputs, yields geometry
    polygon_variable: VariableReferenceExpression  # over right outputs
    use_index: bool = True
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.left.outputs + self.right.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "SpatialJoinNode":
        return replace(self, left=new_sources[0], right=new_sources[1])

    def describe(self) -> str:
        mode = "quadtree" if self.use_index else "brute-force"
        return f"SpatialJoin[{mode}](point={self.point_expression.display()}, polygon={self.polygon_variable.name})"


@dataclass(frozen=True)
class LimitNode(PlanNode):
    source: PlanNode
    count: int
    partial: bool = False
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.source.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "LimitNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        return f"Limit[{self.count}{', partial' if self.partial else ''}]"


@dataclass(frozen=True)
class SortNode(PlanNode):
    source: PlanNode
    order_by: tuple[tuple[VariableReferenceExpression, bool], ...]  # (var, ascending)
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.source.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "SortNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        keys = ", ".join(f"{v.name} {'ASC' if asc else 'DESC'}" for v, asc in self.order_by)
        return f"Sort[{keys}]"


@dataclass(frozen=True)
class TopNNode(PlanNode):
    source: PlanNode
    count: int
    order_by: tuple[tuple[VariableReferenceExpression, bool], ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.source.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "TopNNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        keys = ", ".join(f"{v.name} {'ASC' if asc else 'DESC'}" for v, asc in self.order_by)
        return f"TopN[{self.count}, {keys}]"


@dataclass(frozen=True)
class UnionNode(PlanNode):
    """UNION ALL: concatenates sources.

    Every source is projected (by the analyzer) onto the same output
    variables, so pages flow through positionally.
    """

    union_sources: tuple[PlanNode, ...]
    output_variables: tuple[VariableReferenceExpression, ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.output_variables

    def sources(self) -> tuple[PlanNode, ...]:
        return self.union_sources

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "UnionNode":
        return replace(self, union_sources=tuple(new_sources))

    def describe(self) -> str:
        return f"Union[{len(self.union_sources)} branches]"


@dataclass(frozen=True)
class OutputNode(PlanNode):
    """Final node naming the user-visible result columns."""

    source: PlanNode
    column_names: tuple[str, ...]
    id: str = field(default_factory=next_plan_id)

    @property
    def outputs(self) -> tuple[VariableReferenceExpression, ...]:
        return self.source.outputs

    def sources(self) -> tuple[PlanNode, ...]:
        return (self.source,)

    def replace_sources(self, new_sources: Sequence[PlanNode]) -> "OutputNode":
        return replace(self, source=new_sources[0])

    def describe(self) -> str:
        return f"Output[{', '.join(self.column_names)}]"


def rewrite_plan(node: PlanNode, rewriter: Callable[[PlanNode], Optional[PlanNode]]) -> PlanNode:
    """Bottom-up rewrite: children first, then offer the node to ``rewriter``.

    ``rewriter`` returns a replacement node or ``None`` to keep the input.
    """
    new_sources = [rewrite_plan(s, rewriter) for s in node.sources()]
    if list(node.sources()) != new_sources:
        node = node.replace_sources(new_sources)
    replacement = rewriter(node)
    return node if replacement is None else replacement
