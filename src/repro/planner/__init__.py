"""Query planning: analyzer, logical plan, optimizer, fragmenter.

The coordinator pipeline of figure 1: SQL text → AST (``repro.sql``) →
logical plan (:mod:`repro.planner.analyzer`) → optimized physical plan
(:mod:`repro.planner.optimizer`) → fragments (:mod:`repro.planner.fragmenter`).
"""

from repro.planner.plan import (
    AggregationNode,
    Aggregation,
    FilterNode,
    JoinNode,
    LimitNode,
    OutputNode,
    PlanNode,
    ProjectNode,
    SortNode,
    SpatialJoinNode,
    TableScanNode,
    TopNNode,
    ValuesNode,
)
from repro.planner.analyzer import Analyzer, Session
from repro.planner.optimizer import Optimizer

__all__ = [
    "AggregationNode",
    "Aggregation",
    "Analyzer",
    "FilterNode",
    "JoinNode",
    "LimitNode",
    "OutputNode",
    "Optimizer",
    "PlanNode",
    "ProjectNode",
    "Session",
    "SortNode",
    "SpatialJoinNode",
    "TableScanNode",
    "TopNNode",
    "ValuesNode",
]
