"""Vectorized columnar blocks.

Presto "processes a bunch of in memory encoded column values vectorized,
instead of row by row" (section III).  A :class:`Block` holds one column's
values for a batch of rows.  The variants mirror Presto's:

- :class:`PrimitiveBlock` — flat scalar values over numpy storage.
- :class:`VarcharBlock` — strings as one contiguous UTF-8 byte buffer plus
  int64 offsets, so factorize/compare/substr run as numpy array ops over
  bytes instead of per-element Python dispatch.  Objects materialize only
  at the final-result boundary (and as the differential oracle).
- :class:`DictionaryBlock` — ids into a shared dictionary; produced by the
  new Parquet reader when a column chunk is dictionary-encoded, and consumed
  by dictionary-aware operators without decoding.
- :class:`RowBlock` — a struct column stored as per-field child blocks,
  which is what makes nested column pruning (section V.D) possible: unread
  fields simply have no child block materialized.
- :class:`ArrayBlock` / :class:`MapBlock` — offset-encoded collections.
- :class:`LazyBlock` — a column whose loading is deferred until first
  access; the "lazy reads" optimization of section V.H builds on it.

Blocks are immutable once constructed; ``take`` produces new blocks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    MapType,
    PrestoType,
    RowType,
    VARCHAR,
)


# When True (the default), VARCHAR columns built through block_from_values /
# constant_block / the Parquet reader use the offsets-based VarcharBlock.
# The legacy object-array lane stays available as the differential oracle:
# benchmarks and tests flip this off to measure/verify against it.
_VARCHAR_BLOCKS_ENABLED = True

# Padded fixed-width views cost O(rows * max_len) transient memory; beyond
# this width the object fallback (same as the legacy lane) is cheaper.
_FIXED_WIDTH_CAP = 256


def varchar_blocks_enabled() -> bool:
    """True when VARCHAR columns natively use :class:`VarcharBlock`."""
    return _VARCHAR_BLOCKS_ENABLED


def set_varchar_blocks_enabled(enabled: bool) -> bool:
    """Toggle the native varchar lane; returns the previous setting."""
    global _VARCHAR_BLOCKS_ENABLED
    previous = _VARCHAR_BLOCKS_ENABLED
    _VARCHAR_BLOCKS_ENABLED = bool(enabled)
    return previous


@contextmanager
def object_varchar_lane() -> Iterator[None]:
    """Force the legacy object-array representation for VARCHAR columns.

    Differential tests and the scan baseline benchmark run queries under
    this context to compare the offsets-native lane against the oracle.
    """
    previous = set_varchar_blocks_enabled(False)
    try:
        yield
    finally:
        set_varchar_blocks_enabled(previous)


def _gather_slices(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``data[starts[i] : starts[i] + lengths[i]]`` slices.

    Returns (new byte buffer, new offsets).  This is the core varchar
    primitive: ``take``, dictionary decode, and substr are all one gather.
    """
    count = len(lengths)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return np.empty(0, dtype=np.uint8), offsets
    # Absolute index = repeat(starts) + within-row position, where the
    # within-row position is a global arange minus each row's output start.
    index = np.repeat(
        np.asarray(starts, dtype=np.int64) - offsets[:-1], lengths
    ) + np.arange(total, dtype=np.int64)
    return data[index], offsets


def _numpy_dtype_for(presto_type: PrestoType) -> Any:
    """Storage dtype for a scalar type; strings/dates use object arrays."""
    if presto_type in (BIGINT,):
        return np.int64
    if presto_type.name == "integer":
        return np.int64
    if presto_type is DOUBLE:
        return np.float64
    if presto_type is BOOLEAN:
        return np.bool_
    return object


class Block:
    """One column of values for a batch of rows."""

    type: PrestoType
    position_count: int

    def get(self, position: int) -> Any:
        """Value at ``position`` as a Python object (``None`` when null)."""
        raise NotImplementedError

    def is_null(self, position: int) -> bool:
        raise NotImplementedError

    def take(self, positions: np.ndarray) -> "Block":
        """New block containing the given positions, in order."""
        raise NotImplementedError

    def to_list(self) -> list[Any]:
        return [self.get(i) for i in range(self.position_count)]

    def null_mask(self) -> np.ndarray:
        """Boolean array, True where the value is null.

        Subclasses override with O(1)/array-op versions; this per-row
        fallback only serves block kinds without mask storage.  Callers
        must not mutate the returned array.
        """
        return np.array([self.is_null(i) for i in range(self.position_count)], dtype=bool)

    def size_in_bytes(self) -> int:
        """Approximate retained size, used by memory accounting."""
        raise NotImplementedError

    def loaded(self) -> "Block":
        """Force any lazy loading and return a fully materialized block."""
        return self

    def __len__(self) -> int:
        return self.position_count

    def __repr__(self) -> str:
        preview = ", ".join(repr(self.get(i)) for i in range(min(4, self.position_count)))
        suffix = ", ..." if self.position_count > 4 else ""
        return f"{type(self).__name__}({self.type.display()}, n={self.position_count}, [{preview}{suffix}])"


class PrimitiveBlock(Block):
    """Flat scalar column backed by a numpy array plus an optional null mask."""

    def __init__(
        self,
        presto_type: PrestoType,
        values: np.ndarray,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = presto_type
        self.values = values
        self.nulls = nulls
        self._zero_mask: Optional[np.ndarray] = None
        self.position_count = len(values)
        if nulls is not None and len(nulls) != len(values):
            raise ValueError("nulls mask length mismatch")

    @classmethod
    def from_values(
        cls, presto_type: PrestoType, values: Sequence[Any]
    ) -> "PrimitiveBlock":
        """Build from Python values, inferring the null mask from ``None``s."""
        count = len(values)
        if isinstance(values, np.ndarray) and values.dtype == object:
            # Object-ndarray fast path (Page.from_rows column slices):
            # elementwise identity against None without a Python loop.
            nulls = np.asarray(np.equal(values, None), dtype=bool)
        else:
            nulls = np.fromiter((v is None for v in values), dtype=bool, count=count)
        has_nulls = bool(nulls.any())
        dtype = _numpy_dtype_for(presto_type)
        if dtype is object:
            storage = np.empty(count, dtype=object)
            try:
                # Bulk object assignment; numpy rejects it when elements
                # are equal-length sequences, hence the per-item fallback.
                storage[:] = values if isinstance(values, (list, np.ndarray)) else list(values)
            except ValueError:
                for i, v in enumerate(values):
                    storage[i] = v
        elif has_nulls:
            if isinstance(values, np.ndarray):
                storage = np.where(nulls, 0, values).astype(dtype)
            else:
                storage = np.array([0 if v is None else v for v in values], dtype=dtype)
        else:
            storage = np.array(values, dtype=dtype)
        return cls(presto_type, storage, nulls if has_nulls else None)

    def get(self, position: int) -> Any:
        if self.is_null(position):
            return None
        value = self.values[position]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def take(self, positions: np.ndarray) -> "PrimitiveBlock":
        new_nulls = self.nulls[positions] if self.nulls is not None else None
        return PrimitiveBlock(self.type, self.values[positions], new_nulls)

    def size_in_bytes(self) -> int:
        if self.values.dtype == object:
            base = sum(len(v) if isinstance(v, str) else 8 for v in self.values if v is not None)
        else:
            base = int(self.values.nbytes)
        return base + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class VarcharBlock(Block):
    """String column as one contiguous UTF-8 buffer plus int64 offsets.

    Layout (Arrow/Presto VariableWidthBlock style)::

        data    uint8[total_bytes]   all strings back to back, UTF-8
        offsets int64[n + 1]         row i's bytes are data[offsets[i]:offsets[i+1]]
        nulls   bool[n] | None       True where the row is SQL NULL

    Null rows normally own zero bytes, but kernels never rely on that —
    they mask by ``nulls``.  Because UTF-8 byte order equals code-point
    order, byte-wise sorts and comparisons agree with Python ``str`` — the
    kernels exploit this with padded fixed-width (``S``-dtype) views.  The
    padding trick is unsafe when the payload itself contains NUL bytes
    (numpy strips trailing NULs), so every padded path is guarded by
    :meth:`has_nul` and falls back to the object oracle.
    """

    def __init__(
        self,
        presto_type: PrestoType,
        data: np.ndarray,
        offsets: np.ndarray,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = presto_type
        self.data = data
        self.offsets = offsets
        self.nulls = nulls
        self.position_count = len(offsets) - 1
        self._zero_mask: Optional[np.ndarray] = None
        self._objects: Optional[np.ndarray] = None
        self._factorized: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._ascii_only: Optional[bool] = None
        self._has_nul: Optional[bool] = None
        if nulls is not None and len(nulls) != self.position_count:
            raise ValueError("nulls mask length mismatch")

    @classmethod
    def from_values(
        cls, values: Sequence[Optional[str]], presto_type: PrestoType = VARCHAR
    ) -> "VarcharBlock":
        """Build from Python strings (``None`` for nulls)."""
        count = len(values)
        nulls = np.fromiter((v is None for v in values), dtype=bool, count=count)
        encoded = [b"" if v is None else v.encode("utf-8") for v in values]
        lengths = np.fromiter((len(e) for e in encoded), dtype=np.int64, count=count)
        offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.frombuffer(b"".join(encoded), dtype=np.uint8)
        return cls(presto_type, data, offsets, nulls if nulls.any() else None)

    @classmethod
    def all_null(cls, count: int, presto_type: PrestoType = VARCHAR) -> "VarcharBlock":
        return cls(
            presto_type,
            np.empty(0, dtype=np.uint8),
            np.zeros(count + 1, dtype=np.int64),
            np.ones(count, dtype=bool),
        )

    # -- row access (the object boundary) ----------------------------------

    def get(self, position: int) -> Optional[str]:
        if self.is_null(position):
            return None
        return self.to_object_array()[position]

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def to_list(self) -> list[Optional[str]]:
        return list(self.to_object_array())

    def to_object_array(self) -> np.ndarray:
        """Decode every row to a Python string (cached).

        This is the only place offsets-native data becomes objects; it runs
        at the final-result boundary and inside oracle fallbacks.
        """
        if self._objects is None:
            out = np.empty(self.position_count, dtype=object)
            buf = self.data.tobytes()
            offsets = self.offsets
            nulls = self.nulls
            for i in range(self.position_count):
                if nulls is not None and nulls[i]:
                    out[i] = None
                else:
                    out[i] = buf[offsets[i] : offsets[i + 1]].decode("utf-8")
            self._objects = out
        return self._objects

    def to_primitive(self) -> PrimitiveBlock:
        """Legacy object-array representation (the differential oracle)."""
        return PrimitiveBlock(self.type, self.to_object_array(), self.nulls)

    # -- vectorized structure ----------------------------------------------

    def byte_lengths(self) -> np.ndarray:
        return self.offsets[1:] - self.offsets[:-1]

    def char_lengths(self) -> np.ndarray:
        """Per-row character counts: byte length minus continuation bytes."""
        lengths = self.byte_lengths()
        if self.ascii_only():
            return lengths
        continuation = np.zeros(len(self.data) + 1, dtype=np.int64)
        np.cumsum((self.data & 0xC0) == 0x80, out=continuation[1:])
        return lengths - (continuation[self.offsets[1:]] - continuation[self.offsets[:-1]])

    def ascii_only(self) -> bool:
        """True when every byte is ASCII (chars == bytes, offsets slicing safe)."""
        if self._ascii_only is None:
            self._ascii_only = bool(self.data.size == 0 or int(self.data.max()) < 0x80)
        return self._ascii_only

    def has_nul(self) -> bool:
        """True when the payload contains 0x00 bytes (padded views unsafe)."""
        if self._has_nul is None:
            self._has_nul = bool((self.data == 0).any())
        return self._has_nul

    def fixed_view(self, width: Optional[int] = None) -> Optional[np.ndarray]:
        """Padded ``S{width}`` view of all rows (nulls read as ``b""``).

        Byte-order comparisons on the view agree with ``str`` comparisons.
        Returns None when the view would be unsafe (embedded NULs) or too
        wide; callers then fall back to the object path.
        """
        lengths = self.byte_lengths()
        if self.nulls is not None:
            lengths = np.where(self.nulls, 0, lengths)
        max_len = int(lengths.max()) if len(lengths) else 0
        if width is None:
            width = max_len
        if width < max_len or width > _FIXED_WIDTH_CAP or self.has_nul():
            return None
        return _padded_view(self.data, self.offsets[:-1], lengths, width)

    def factorize(self) -> tuple[np.ndarray, np.ndarray]:
        """(codes, uniques): int64 codes with -1 at nulls; sorted distinct strings.

        Matches ``np.unique`` over the object lane exactly: UTF-8 byte order
        is code-point order, so the distinct list sorts identically.
        """
        if self._factorized is None:
            codes = np.full(self.position_count, -1, dtype=np.int64)
            non_null = ~self.null_mask()
            if not non_null.any():
                uniques = np.empty(0, dtype=object)
            else:
                starts = self.offsets[:-1][non_null]
                lengths = self.byte_lengths()[non_null]
                width = int(lengths.max())
                if width <= 8 and not self.has_nul():
                    # Narrow strings pack into big-endian unsigned ints
                    # (zero padded, order preserving): integer np.unique
                    # beats the S-dtype comparison sort by a wide margin.
                    pack = 1 if width <= 1 else 2 if width <= 2 else 4 if width <= 4 else 8
                    ints = _padded_view(self.data, starts, lengths, pack).view(
                        f">u{pack}"
                    )
                    if pack <= 2:
                        # Dense-table factorization: no sort at all.  The
                        # flatnonzero scan emits values in ascending order,
                        # matching np.unique's sorted-uniques contract.
                        domain = 256 if pack == 1 else 65536
                        wide = ints.astype(np.int64, copy=False)
                        present = np.zeros(domain, dtype=bool)
                        present[wide] = True
                        uniq_ints = np.flatnonzero(present)
                        lookup = np.zeros(domain, dtype=np.int64)
                        lookup[uniq_ints] = np.arange(len(uniq_ints), dtype=np.int64)
                        inverse = lookup[wide]
                    else:
                        uniq_ints, inverse = np.unique(ints, return_inverse=True)
                    uniques = np.empty(len(uniq_ints), dtype=object)
                    for i, raw in enumerate(uniq_ints):
                        uniques[i] = (
                            int(raw)
                            .to_bytes(pack, "big")
                            .rstrip(b"\x00")
                            .decode("utf-8")
                        )
                elif width <= _FIXED_WIDTH_CAP and not self.has_nul():
                    view = _padded_view(self.data, starts, lengths, width)
                    uniq_bytes, inverse = np.unique(view, return_inverse=True)
                    uniques = np.empty(len(uniq_bytes), dtype=object)
                    for i, raw in enumerate(uniq_bytes):
                        uniques[i] = raw.decode("utf-8")
                else:
                    uniques, inverse = np.unique(
                        self.to_object_array()[non_null], return_inverse=True
                    )
                codes[non_null] = inverse
            self._factorized = (codes, uniques)
        return self._factorized

    def exact_match(self, value: bytes) -> np.ndarray:
        """Rows whose bytes equal ``value`` — gathers only same-length rows."""
        count = self.position_count
        k = len(value)
        lengths = self.byte_lengths()
        if self.nulls is not None:
            lengths = np.where(self.nulls, -1, lengths)
        candidates = lengths == k
        if k == 0 or not candidates.any():
            return candidates
        if b"\x00" in value or self.has_nul():
            return candidates & self.prefix_mask(value)
        starts = self.offsets[:-1][candidates]
        index = starts[:, None] + np.arange(k, dtype=np.int64)[None, :]
        out = np.zeros(count, dtype=bool)
        out[candidates] = self.data[index].reshape(-1).view(f"S{k}") == value
        return out

    def prefix_mask(self, prefix: bytes) -> np.ndarray:
        """Rows whose bytes start with ``prefix`` (byte-exact ``startswith``)."""
        count = self.position_count
        if not prefix:
            return ~self.null_mask()
        k = len(prefix)
        lengths = self.byte_lengths()
        if self.nulls is not None:
            lengths = np.where(self.nulls, 0, lengths)
        candidates = lengths >= k
        if not candidates.any() or len(self.data) == 0:
            return np.zeros(count, dtype=bool)
        if b"\x00" not in prefix and not self.has_nul():
            # Candidate rows own >= k bytes, so their first k bytes gather
            # without bounds checks; one S{k} memcmp pass decides.
            starts = self.offsets[:-1]
            if not candidates.all():
                starts = starts[candidates]
            index = starts[:, None] + np.arange(k, dtype=np.int64)[None, :]
            hits = self.data[index].reshape(-1).view(f"S{k}") == prefix
            if candidates.all():
                return hits
            out = np.zeros(count, dtype=bool)
            out[candidates] = hits
            return out
        lane = np.arange(k, dtype=np.int64)
        index = np.clip(self.offsets[:-1][:, None] + lane[None, :], 0, len(self.data) - 1)
        target = np.frombuffer(prefix, dtype=np.uint8)
        return candidates & (self.data[index] == target[None, :]).all(axis=1)

    # -- block protocol ----------------------------------------------------

    def take(self, positions: np.ndarray) -> "VarcharBlock":
        positions = np.asarray(positions)
        starts = self.offsets[:-1][positions]
        lengths = self.byte_lengths()[positions]
        data, offsets = _gather_slices(self.data, starts, lengths)
        new_nulls = self.nulls[positions] if self.nulls is not None else None
        return VarcharBlock(self.type, data, offsets, new_nulls)

    def size_in_bytes(self) -> int:
        total = int(self.data.nbytes) + int(self.offsets.nbytes)
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


def _padded_view(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray, width: int
) -> np.ndarray:
    """``S{width}`` array over variable-width slices, zero-padded on the right."""
    count = len(starts)
    if width == 0:
        return np.zeros(count, dtype="S1")
    lane = np.arange(width, dtype=np.int64)
    index = np.asarray(starts, dtype=np.int64)[:, None] + lane[None, :]
    if len(data) == 0:
        return np.zeros(count, dtype=f"S{width}")
    lengths = np.asarray(lengths)
    if int(lengths.min()) >= width:
        # Every row fills the width (fixed-width strings like dates):
        # plain gather, no padding or bounds work at all.
        return data[index].reshape(-1).view(f"S{width}")
    # Rows shorter than the pad width read stray neighbor bytes; those
    # lanes are zeroed below, the bound only keeps the gather in-range.
    np.minimum(index, len(data) - 1, out=index)
    matrix = data[index]
    matrix[lane[None, :] >= lengths[:, None]] = 0
    return matrix.reshape(-1).view(f"S{width}")


def concat_varchar_blocks(
    presto_type: PrestoType, blocks: Sequence[VarcharBlock]
) -> VarcharBlock:
    """Concatenate varchar blocks: append buffers, shift offsets, merge nulls."""
    total_rows = sum(b.position_count for b in blocks)
    offsets = np.zeros(total_rows + 1, dtype=np.int64)
    row = 0
    shift = 0
    for block in blocks:
        offsets[row + 1 : row + 1 + block.position_count] = block.offsets[1:] + shift
        row += block.position_count
        shift += int(block.offsets[-1])
    data = (
        np.concatenate([b.data for b in blocks])
        if blocks
        else np.empty(0, dtype=np.uint8)
    )
    nulls = None
    if any(b.nulls is not None for b in blocks):
        nulls = np.concatenate([b.null_mask() for b in blocks])
    return VarcharBlock(presto_type, data, offsets, nulls)


class DictionaryBlock(Block):
    """Ids into a shared dictionary block.

    The vectorized Parquet reader caches column dictionaries and emits
    DictionaryBlocks so "dictionary lookups are saved" (section V.I); the
    engine decodes only when an operator needs flat values.
    """

    def __init__(self, dictionary: Block, ids: np.ndarray) -> None:
        # The dictionary is flat: a PrimitiveBlock, or a VarcharBlock when
        # the column is varchar and the native string lane is on.
        self.type = dictionary.type
        self.dictionary = dictionary
        self.ids = ids
        self.position_count = len(ids)

    def get(self, position: int) -> Any:
        idx = int(self.ids[position])
        if idx < 0:
            return None
        return self.dictionary.get(idx)

    def is_null(self, position: int) -> bool:
        idx = int(self.ids[position])
        return idx < 0 or self.dictionary.is_null(idx)

    def null_mask(self) -> np.ndarray:
        mask = self.ids < 0
        dict_nulls = self.dictionary.null_mask()
        if dict_nulls.any():
            safe_ids = np.where(self.ids < 0, 0, self.ids)
            mask = mask | dict_nulls[safe_ids]
        return mask

    def take(self, positions: np.ndarray) -> "DictionaryBlock":
        return DictionaryBlock(self.dictionary, self.ids[positions])

    def decode(self) -> Block:
        """Expand into a flat block (Primitive or Varchar, matching the dictionary)."""
        mask = self.ids < 0
        safe_ids = np.where(mask, 0, self.ids)
        nulls = self.null_mask()
        if isinstance(self.dictionary, VarcharBlock):
            flat = self.dictionary.take(safe_ids)
            return VarcharBlock(
                self.type, flat.data, flat.offsets, nulls if nulls.any() else None
            )
        values = self.dictionary.values[safe_ids]
        return PrimitiveBlock(self.type, values, nulls if nulls.any() else None)

    def size_in_bytes(self) -> int:
        return int(self.ids.nbytes) + self.dictionary.size_in_bytes()


class RowBlock(Block):
    """A struct column stored field-by-field.

    ``field_blocks`` may cover only a subset of the row type's fields (the
    pruned projection); ``get`` then returns a dict with just those keys.
    """

    def __init__(
        self,
        row_type: RowType,
        field_blocks: dict[str, Block],
        nulls: Optional[np.ndarray] = None,
        position_count: Optional[int] = None,
    ) -> None:
        self.type = row_type
        self.field_blocks = field_blocks
        self.nulls = nulls
        self._zero_mask: Optional[np.ndarray] = None
        if position_count is not None:
            self.position_count = position_count
        elif field_blocks:
            self.position_count = next(iter(field_blocks.values())).position_count
        elif nulls is not None:
            self.position_count = len(nulls)
        else:
            raise ValueError("RowBlock needs field blocks, nulls, or a position count")
        for name, blk in field_blocks.items():
            if blk.position_count != self.position_count:
                raise ValueError(f"field {name} has {blk.position_count} positions, expected {self.position_count}")

    @classmethod
    def from_values(cls, row_type: RowType, values: Sequence[Optional[dict]]) -> "RowBlock":
        """Build from a sequence of dicts (``None`` for a null struct)."""
        nulls = np.array([v is None for v in values], dtype=bool)
        field_blocks: dict[str, Block] = {}
        for f in row_type.fields:
            field_values = [None if v is None else v.get(f.name) for v in values]
            field_blocks[f.name] = block_from_values(f.type, field_values)
        return cls(row_type, field_blocks, nulls if nulls.any() else None, len(values))

    def get(self, position: int) -> Optional[dict]:
        if self.is_null(position):
            return None
        return {name: blk.get(position) for name, blk in self.field_blocks.items()}

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def field(self, name: str) -> Block:
        """Child block for field ``name``; the DEREFERENCE fast path."""
        return self.field_blocks[name]

    def has_field(self, name: str) -> bool:
        return name in self.field_blocks

    def take(self, positions: np.ndarray) -> "RowBlock":
        taken = {name: blk.take(positions) for name, blk in self.field_blocks.items()}
        new_nulls = self.nulls[positions] if self.nulls is not None else None
        return RowBlock(self.type, taken, new_nulls, len(positions))

    def size_in_bytes(self) -> int:
        total = sum(blk.size_in_bytes() for blk in self.field_blocks.values())
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class ArrayBlock(Block):
    """Variable-length arrays encoded as offsets into an elements block."""

    def __init__(
        self,
        array_type: ArrayType,
        offsets: np.ndarray,
        elements: Block,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = array_type
        self.offsets = offsets
        self.elements = elements
        self.nulls = nulls
        self._zero_mask: Optional[np.ndarray] = None
        self.position_count = len(offsets) - 1

    @classmethod
    def from_values(cls, array_type: ArrayType, values: Sequence[Optional[list]]) -> "ArrayBlock":
        nulls = np.array([v is None for v in values], dtype=bool)
        offsets = np.zeros(len(values) + 1, dtype=np.int64)
        flat: list[Any] = []
        for i, v in enumerate(values):
            if v is not None:
                flat.extend(v)
            offsets[i + 1] = len(flat)
        elements = block_from_values(array_type.element_type, flat)
        return cls(array_type, offsets, elements, nulls if nulls.any() else None)

    def get(self, position: int) -> Optional[list]:
        if self.is_null(position):
            return None
        start, end = int(self.offsets[position]), int(self.offsets[position + 1])
        return [self.elements.get(i) for i in range(start, end)]

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def take(self, positions: np.ndarray) -> "ArrayBlock":
        # Rebuild via Python values: arrays are small relative to scalars and
        # take() on collection columns is rare in the paper's workloads.
        return ArrayBlock.from_values(self.type, [self.get(int(p)) for p in positions])

    def size_in_bytes(self) -> int:
        total = int(self.offsets.nbytes) + self.elements.size_in_bytes()
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class MapBlock(Block):
    """Maps encoded as offsets into parallel key/value blocks."""

    def __init__(
        self,
        map_type: MapType,
        offsets: np.ndarray,
        keys: Block,
        values: Block,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = map_type
        self.offsets = offsets
        self.keys = keys
        self.values = values
        self.nulls = nulls
        self._zero_mask: Optional[np.ndarray] = None
        self.position_count = len(offsets) - 1

    @classmethod
    def from_values(cls, map_type: MapType, values: Sequence[Optional[dict]]) -> "MapBlock":
        nulls = np.array([v is None for v in values], dtype=bool)
        offsets = np.zeros(len(values) + 1, dtype=np.int64)
        flat_keys: list[Any] = []
        flat_values: list[Any] = []
        for i, v in enumerate(values):
            if v is not None:
                for k, val in v.items():
                    flat_keys.append(k)
                    flat_values.append(val)
            offsets[i + 1] = len(flat_keys)
        keys_block = block_from_values(map_type.key_type, flat_keys)
        values_block = block_from_values(map_type.value_type, flat_values)
        return cls(map_type, offsets, keys_block, values_block, nulls if nulls.any() else None)

    def get(self, position: int) -> Optional[dict]:
        if self.is_null(position):
            return None
        start, end = int(self.offsets[position]), int(self.offsets[position + 1])
        return {self.keys.get(i): self.values.get(i) for i in range(start, end)}

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def take(self, positions: np.ndarray) -> "MapBlock":
        return MapBlock.from_values(self.type, [self.get(int(p)) for p in positions])

    def size_in_bytes(self) -> int:
        total = int(self.offsets.nbytes) + self.keys.size_in_bytes() + self.values.size_in_bytes()
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class LazyBlock(Block):
    """A column whose materialization is deferred until first access.

    The loader runs at most once.  The lazy-reads optimization (section V.H)
    wraps projected columns in LazyBlocks; if every row of a batch fails the
    predicate the loader never runs and the column's bytes are never decoded.
    """

    def __init__(
        self,
        presto_type: PrestoType,
        position_count: int,
        loader: Callable[[], Block],
    ) -> None:
        self.type = presto_type
        self.position_count = position_count
        self._loader = loader
        self._delegate: Optional[Block] = None

    @property
    def is_loaded(self) -> bool:
        return self._delegate is not None

    def loaded(self) -> Block:
        if self._delegate is None:
            block = self._loader()
            if block.position_count != self.position_count:
                raise ValueError(
                    f"lazy loader produced {block.position_count} positions, expected {self.position_count}"
                )
            self._delegate = block
        return self._delegate

    def get(self, position: int) -> Any:
        return self.loaded().get(position)

    def is_null(self, position: int) -> bool:
        return self.loaded().is_null(position)

    def null_mask(self) -> np.ndarray:
        return self.loaded().null_mask()

    def take(self, positions: np.ndarray) -> Block:
        # Stay lazy: defer the load AND the take until someone reads values.
        positions = np.asarray(positions)
        return LazyBlock(self.type, len(positions), lambda: self.loaded().take(positions))

    def size_in_bytes(self) -> int:
        return self._delegate.size_in_bytes() if self._delegate is not None else 0


def block_from_values(presto_type: PrestoType, values: Sequence[Any]) -> Block:
    """Build the natural block kind for ``presto_type`` from Python values."""
    if isinstance(presto_type, RowType):
        return RowBlock.from_values(presto_type, values)
    if isinstance(presto_type, ArrayType):
        return ArrayBlock.from_values(presto_type, values)
    if isinstance(presto_type, MapType):
        return MapBlock.from_values(presto_type, values)
    if presto_type is VARCHAR and _VARCHAR_BLOCKS_ENABLED:
        try:
            return VarcharBlock.from_values(values, presto_type)
        except (AttributeError, TypeError, UnicodeEncodeError):
            # Non-string payloads (tests feed arbitrary objects through
            # varchar columns): keep the permissive object representation.
            pass
    return PrimitiveBlock.from_values(presto_type, values)


def constant_block(value: Any, presto_type: PrestoType, count: int) -> Block:
    """A block repeating ``value`` ``count`` times (run-length style)."""
    if value is None:
        dtype = _numpy_dtype_for(presto_type)
        storage = np.zeros(count, dtype=dtype) if dtype is not object else np.empty(count, dtype=object)
        return PrimitiveBlock(presto_type, storage, np.ones(count, dtype=bool))
    if presto_type.is_nested():
        return block_from_values(presto_type, [value] * count)
    if presto_type is VARCHAR and _VARCHAR_BLOCKS_ENABLED and isinstance(value, str):
        encoded = np.frombuffer(value.encode("utf-8"), dtype=np.uint8)
        offsets = np.arange(count + 1, dtype=np.int64) * len(encoded)
        return VarcharBlock(presto_type, np.tile(encoded, count), offsets)
    dtype = _numpy_dtype_for(presto_type)
    if dtype is object:
        storage = np.empty(count, dtype=object)
        storage[:] = value
    else:
        storage = np.full(count, value, dtype=dtype)
    return PrimitiveBlock(presto_type, storage)


def with_extra_nulls(block: Block, extra_nulls: np.ndarray) -> Block:
    """Return ``block`` with additional positions marked null."""
    if not extra_nulls.any():
        return block
    block = block.loaded()
    merged = block.null_mask() | extra_nulls
    if isinstance(block, PrimitiveBlock):
        return PrimitiveBlock(block.type, block.values, merged)
    if isinstance(block, VarcharBlock):
        return VarcharBlock(block.type, block.data, block.offsets, merged)
    values = [None if merged[i] else block.get(i) for i in range(block.position_count)]
    return block_from_values(block.type, values)
