"""Vectorized columnar blocks.

Presto "processes a bunch of in memory encoded column values vectorized,
instead of row by row" (section III).  A :class:`Block` holds one column's
values for a batch of rows.  The variants mirror Presto's:

- :class:`PrimitiveBlock` — flat scalar values over numpy storage.
- :class:`DictionaryBlock` — ids into a shared dictionary; produced by the
  new Parquet reader when a column chunk is dictionary-encoded, and consumed
  by dictionary-aware operators without decoding.
- :class:`RowBlock` — a struct column stored as per-field child blocks,
  which is what makes nested column pruning (section V.D) possible: unread
  fields simply have no child block materialized.
- :class:`ArrayBlock` / :class:`MapBlock` — offset-encoded collections.
- :class:`LazyBlock` — a column whose loading is deferred until first
  access; the "lazy reads" optimization of section V.H builds on it.

Blocks are immutable once constructed; ``take`` produces new blocks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    MapType,
    PrestoType,
    RowType,
    VARCHAR,
)


def _numpy_dtype_for(presto_type: PrestoType) -> Any:
    """Storage dtype for a scalar type; strings/dates use object arrays."""
    if presto_type in (BIGINT,):
        return np.int64
    if presto_type.name == "integer":
        return np.int64
    if presto_type is DOUBLE:
        return np.float64
    if presto_type is BOOLEAN:
        return np.bool_
    return object


class Block:
    """One column of values for a batch of rows."""

    type: PrestoType
    position_count: int

    def get(self, position: int) -> Any:
        """Value at ``position`` as a Python object (``None`` when null)."""
        raise NotImplementedError

    def is_null(self, position: int) -> bool:
        raise NotImplementedError

    def take(self, positions: np.ndarray) -> "Block":
        """New block containing the given positions, in order."""
        raise NotImplementedError

    def to_list(self) -> list[Any]:
        return [self.get(i) for i in range(self.position_count)]

    def null_mask(self) -> np.ndarray:
        """Boolean array, True where the value is null.

        Subclasses override with O(1)/array-op versions; this per-row
        fallback only serves block kinds without mask storage.  Callers
        must not mutate the returned array.
        """
        return np.array([self.is_null(i) for i in range(self.position_count)], dtype=bool)

    def size_in_bytes(self) -> int:
        """Approximate retained size, used by memory accounting."""
        raise NotImplementedError

    def loaded(self) -> "Block":
        """Force any lazy loading and return a fully materialized block."""
        return self

    def __len__(self) -> int:
        return self.position_count

    def __repr__(self) -> str:
        preview = ", ".join(repr(self.get(i)) for i in range(min(4, self.position_count)))
        suffix = ", ..." if self.position_count > 4 else ""
        return f"{type(self).__name__}({self.type.display()}, n={self.position_count}, [{preview}{suffix}])"


class PrimitiveBlock(Block):
    """Flat scalar column backed by a numpy array plus an optional null mask."""

    def __init__(
        self,
        presto_type: PrestoType,
        values: np.ndarray,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = presto_type
        self.values = values
        self.nulls = nulls
        self._zero_mask: Optional[np.ndarray] = None
        self.position_count = len(values)
        if nulls is not None and len(nulls) != len(values):
            raise ValueError("nulls mask length mismatch")

    @classmethod
    def from_values(
        cls, presto_type: PrestoType, values: Sequence[Any]
    ) -> "PrimitiveBlock":
        """Build from Python values, inferring the null mask from ``None``s."""
        count = len(values)
        nulls = np.fromiter((v is None for v in values), dtype=bool, count=count)
        has_nulls = bool(nulls.any())
        dtype = _numpy_dtype_for(presto_type)
        if dtype is object:
            storage = np.empty(count, dtype=object)
            try:
                # Bulk object assignment; numpy rejects it when elements
                # are equal-length sequences, hence the per-item fallback.
                storage[:] = values if isinstance(values, (list, np.ndarray)) else list(values)
            except ValueError:
                for i, v in enumerate(values):
                    storage[i] = v
        elif has_nulls:
            storage = np.array([0 if v is None else v for v in values], dtype=dtype)
        else:
            storage = np.array(values, dtype=dtype)
        return cls(presto_type, storage, nulls if has_nulls else None)

    def get(self, position: int) -> Any:
        if self.is_null(position):
            return None
        value = self.values[position]
        if isinstance(value, np.generic):
            return value.item()
        return value

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            if self._zero_mask is None:
                self._zero_mask = np.zeros(self.position_count, dtype=bool)
            return self._zero_mask
        return self.nulls

    def take(self, positions: np.ndarray) -> "PrimitiveBlock":
        new_nulls = self.nulls[positions] if self.nulls is not None else None
        return PrimitiveBlock(self.type, self.values[positions], new_nulls)

    def size_in_bytes(self) -> int:
        if self.values.dtype == object:
            base = sum(len(v) if isinstance(v, str) else 8 for v in self.values if v is not None)
        else:
            base = int(self.values.nbytes)
        return base + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class DictionaryBlock(Block):
    """Ids into a shared dictionary block.

    The vectorized Parquet reader caches column dictionaries and emits
    DictionaryBlocks so "dictionary lookups are saved" (section V.I); the
    engine decodes only when an operator needs flat values.
    """

    def __init__(self, dictionary: PrimitiveBlock, ids: np.ndarray) -> None:
        self.type = dictionary.type
        self.dictionary = dictionary
        self.ids = ids
        self.position_count = len(ids)

    def get(self, position: int) -> Any:
        idx = int(self.ids[position])
        if idx < 0:
            return None
        return self.dictionary.get(idx)

    def is_null(self, position: int) -> bool:
        idx = int(self.ids[position])
        return idx < 0 or self.dictionary.is_null(idx)

    def null_mask(self) -> np.ndarray:
        mask = self.ids < 0
        dict_nulls = self.dictionary.null_mask()
        if dict_nulls.any():
            safe_ids = np.where(self.ids < 0, 0, self.ids)
            mask = mask | dict_nulls[safe_ids]
        return mask

    def take(self, positions: np.ndarray) -> "DictionaryBlock":
        return DictionaryBlock(self.dictionary, self.ids[positions])

    def decode(self) -> PrimitiveBlock:
        """Expand into a flat :class:`PrimitiveBlock`."""
        mask = self.ids < 0
        safe_ids = np.where(mask, 0, self.ids)
        values = self.dictionary.values[safe_ids]
        nulls = self.null_mask()
        return PrimitiveBlock(self.type, values, nulls if nulls.any() else None)

    def size_in_bytes(self) -> int:
        return int(self.ids.nbytes) + self.dictionary.size_in_bytes()


class RowBlock(Block):
    """A struct column stored field-by-field.

    ``field_blocks`` may cover only a subset of the row type's fields (the
    pruned projection); ``get`` then returns a dict with just those keys.
    """

    def __init__(
        self,
        row_type: RowType,
        field_blocks: dict[str, Block],
        nulls: Optional[np.ndarray] = None,
        position_count: Optional[int] = None,
    ) -> None:
        self.type = row_type
        self.field_blocks = field_blocks
        self.nulls = nulls
        if position_count is not None:
            self.position_count = position_count
        elif field_blocks:
            self.position_count = next(iter(field_blocks.values())).position_count
        elif nulls is not None:
            self.position_count = len(nulls)
        else:
            raise ValueError("RowBlock needs field blocks, nulls, or a position count")
        for name, blk in field_blocks.items():
            if blk.position_count != self.position_count:
                raise ValueError(f"field {name} has {blk.position_count} positions, expected {self.position_count}")

    @classmethod
    def from_values(cls, row_type: RowType, values: Sequence[Optional[dict]]) -> "RowBlock":
        """Build from a sequence of dicts (``None`` for a null struct)."""
        nulls = np.array([v is None for v in values], dtype=bool)
        field_blocks: dict[str, Block] = {}
        for f in row_type.fields:
            field_values = [None if v is None else v.get(f.name) for v in values]
            field_blocks[f.name] = block_from_values(f.type, field_values)
        return cls(row_type, field_blocks, nulls if nulls.any() else None, len(values))

    def get(self, position: int) -> Optional[dict]:
        if self.is_null(position):
            return None
        return {name: blk.get(position) for name, blk in self.field_blocks.items()}

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            return np.zeros(self.position_count, dtype=bool)
        return self.nulls

    def field(self, name: str) -> Block:
        """Child block for field ``name``; the DEREFERENCE fast path."""
        return self.field_blocks[name]

    def has_field(self, name: str) -> bool:
        return name in self.field_blocks

    def take(self, positions: np.ndarray) -> "RowBlock":
        taken = {name: blk.take(positions) for name, blk in self.field_blocks.items()}
        new_nulls = self.nulls[positions] if self.nulls is not None else None
        return RowBlock(self.type, taken, new_nulls, len(positions))

    def size_in_bytes(self) -> int:
        total = sum(blk.size_in_bytes() for blk in self.field_blocks.values())
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class ArrayBlock(Block):
    """Variable-length arrays encoded as offsets into an elements block."""

    def __init__(
        self,
        array_type: ArrayType,
        offsets: np.ndarray,
        elements: Block,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = array_type
        self.offsets = offsets
        self.elements = elements
        self.nulls = nulls
        self.position_count = len(offsets) - 1

    @classmethod
    def from_values(cls, array_type: ArrayType, values: Sequence[Optional[list]]) -> "ArrayBlock":
        nulls = np.array([v is None for v in values], dtype=bool)
        offsets = np.zeros(len(values) + 1, dtype=np.int64)
        flat: list[Any] = []
        for i, v in enumerate(values):
            if v is not None:
                flat.extend(v)
            offsets[i + 1] = len(flat)
        elements = block_from_values(array_type.element_type, flat)
        return cls(array_type, offsets, elements, nulls if nulls.any() else None)

    def get(self, position: int) -> Optional[list]:
        if self.is_null(position):
            return None
        start, end = int(self.offsets[position]), int(self.offsets[position + 1])
        return [self.elements.get(i) for i in range(start, end)]

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            return np.zeros(self.position_count, dtype=bool)
        return self.nulls

    def take(self, positions: np.ndarray) -> "ArrayBlock":
        # Rebuild via Python values: arrays are small relative to scalars and
        # take() on collection columns is rare in the paper's workloads.
        return ArrayBlock.from_values(self.type, [self.get(int(p)) for p in positions])

    def size_in_bytes(self) -> int:
        total = int(self.offsets.nbytes) + self.elements.size_in_bytes()
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class MapBlock(Block):
    """Maps encoded as offsets into parallel key/value blocks."""

    def __init__(
        self,
        map_type: MapType,
        offsets: np.ndarray,
        keys: Block,
        values: Block,
        nulls: Optional[np.ndarray] = None,
    ) -> None:
        self.type = map_type
        self.offsets = offsets
        self.keys = keys
        self.values = values
        self.nulls = nulls
        self.position_count = len(offsets) - 1

    @classmethod
    def from_values(cls, map_type: MapType, values: Sequence[Optional[dict]]) -> "MapBlock":
        nulls = np.array([v is None for v in values], dtype=bool)
        offsets = np.zeros(len(values) + 1, dtype=np.int64)
        flat_keys: list[Any] = []
        flat_values: list[Any] = []
        for i, v in enumerate(values):
            if v is not None:
                for k, val in v.items():
                    flat_keys.append(k)
                    flat_values.append(val)
            offsets[i + 1] = len(flat_keys)
        keys_block = block_from_values(map_type.key_type, flat_keys)
        values_block = block_from_values(map_type.value_type, flat_values)
        return cls(map_type, offsets, keys_block, values_block, nulls if nulls.any() else None)

    def get(self, position: int) -> Optional[dict]:
        if self.is_null(position):
            return None
        start, end = int(self.offsets[position]), int(self.offsets[position + 1])
        return {self.keys.get(i): self.values.get(i) for i in range(start, end)}

    def is_null(self, position: int) -> bool:
        return bool(self.nulls is not None and self.nulls[position])

    def null_mask(self) -> np.ndarray:
        if self.nulls is None:
            return np.zeros(self.position_count, dtype=bool)
        return self.nulls

    def take(self, positions: np.ndarray) -> "MapBlock":
        return MapBlock.from_values(self.type, [self.get(int(p)) for p in positions])

    def size_in_bytes(self) -> int:
        total = int(self.offsets.nbytes) + self.keys.size_in_bytes() + self.values.size_in_bytes()
        return total + (int(self.nulls.nbytes) if self.nulls is not None else 0)


class LazyBlock(Block):
    """A column whose materialization is deferred until first access.

    The loader runs at most once.  The lazy-reads optimization (section V.H)
    wraps projected columns in LazyBlocks; if every row of a batch fails the
    predicate the loader never runs and the column's bytes are never decoded.
    """

    def __init__(
        self,
        presto_type: PrestoType,
        position_count: int,
        loader: Callable[[], Block],
    ) -> None:
        self.type = presto_type
        self.position_count = position_count
        self._loader = loader
        self._delegate: Optional[Block] = None

    @property
    def is_loaded(self) -> bool:
        return self._delegate is not None

    def loaded(self) -> Block:
        if self._delegate is None:
            block = self._loader()
            if block.position_count != self.position_count:
                raise ValueError(
                    f"lazy loader produced {block.position_count} positions, expected {self.position_count}"
                )
            self._delegate = block
        return self._delegate

    def get(self, position: int) -> Any:
        return self.loaded().get(position)

    def is_null(self, position: int) -> bool:
        return self.loaded().is_null(position)

    def null_mask(self) -> np.ndarray:
        return self.loaded().null_mask()

    def take(self, positions: np.ndarray) -> Block:
        # Stay lazy: defer the load AND the take until someone reads values.
        positions = np.asarray(positions)
        return LazyBlock(self.type, len(positions), lambda: self.loaded().take(positions))

    def size_in_bytes(self) -> int:
        return self._delegate.size_in_bytes() if self._delegate is not None else 0


def block_from_values(presto_type: PrestoType, values: Sequence[Any]) -> Block:
    """Build the natural block kind for ``presto_type`` from Python values."""
    if isinstance(presto_type, RowType):
        return RowBlock.from_values(presto_type, values)
    if isinstance(presto_type, ArrayType):
        return ArrayBlock.from_values(presto_type, values)
    if isinstance(presto_type, MapType):
        return MapBlock.from_values(presto_type, values)
    return PrimitiveBlock.from_values(presto_type, values)


def constant_block(value: Any, presto_type: PrestoType, count: int) -> Block:
    """A block repeating ``value`` ``count`` times (run-length style)."""
    if value is None:
        dtype = _numpy_dtype_for(presto_type)
        storage = np.zeros(count, dtype=dtype) if dtype is not object else np.empty(count, dtype=object)
        return PrimitiveBlock(presto_type, storage, np.ones(count, dtype=bool))
    if presto_type.is_nested():
        return block_from_values(presto_type, [value] * count)
    dtype = _numpy_dtype_for(presto_type)
    if dtype is object:
        storage = np.empty(count, dtype=object)
        storage[:] = value
    else:
        storage = np.full(count, value, dtype=dtype)
    return PrimitiveBlock(presto_type, storage)


def with_extra_nulls(block: Block, extra_nulls: np.ndarray) -> Block:
    """Return ``block`` with additional positions marked null."""
    if not extra_nulls.any():
        return block
    block = block.loaded()
    merged = block.null_mask() | extra_nulls
    if isinstance(block, PrimitiveBlock):
        return PrimitiveBlock(block.type, block.values, merged)
    values = [None if merged[i] else block.get(i) for i in range(block.position_count)]
    return block_from_values(block.type, values)
