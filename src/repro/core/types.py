"""Presto's strict SQL type system.

The paper stresses that "Presto is type strict, we do not allow automatic
type coercion when querying Parquet via Presto" (section V.A).  This module
implements the subset of types the paper's workloads use, including the
nested ``ROW`` (struct) type central to section V, and a ``GEOMETRY`` type
for the geospatial plugin of section VI.

Types are immutable and hashable so they can key dictionaries (function
resolution, plan signatures) and be serialized inside ``RowExpression``
trees that cross the connector boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


class PrestoType:
    """Base class for all SQL types.

    Concrete scalar types are singletons (``BIGINT``, ``VARCHAR``, ...);
    parametric types (``RowType``, ``ArrayType``, ``MapType``) are value
    objects compared structurally.
    """

    name: str = "unknown"

    def is_nested(self) -> bool:
        """Whether values of this type contain other typed values."""
        return False

    def is_numeric(self) -> bool:
        return False

    def is_orderable(self) -> bool:
        return True

    def display(self) -> str:
        """Render the type the way Presto's ``typeof()`` would."""
        return self.name

    def __repr__(self) -> str:
        return self.display()

    # Scalar singletons compare by identity; parametric types override.
    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash(self.name)


class _ScalarType(PrestoType):
    """A non-parametric builtin type, used as a singleton."""

    def __init__(self, name: str, numeric: bool = False, orderable: bool = True) -> None:
        self.name = name
        self._numeric = numeric
        self._orderable = orderable

    def is_numeric(self) -> bool:
        return self._numeric

    def is_orderable(self) -> bool:
        return self._orderable


BIGINT = _ScalarType("bigint", numeric=True)
INTEGER = _ScalarType("integer", numeric=True)
DOUBLE = _ScalarType("double", numeric=True)
BOOLEAN = _ScalarType("boolean")
VARCHAR = _ScalarType("varchar")
DATE = _ScalarType("date")
TIMESTAMP = _ScalarType("timestamp")
GEOMETRY = _ScalarType("geometry", orderable=False)
UNKNOWN = _ScalarType("unknown")

_SCALARS = {
    t.name: t
    for t in (BIGINT, INTEGER, DOUBLE, BOOLEAN, VARCHAR, DATE, TIMESTAMP, GEOMETRY, UNKNOWN)
}
# Common aliases accepted by the parser.
_SCALARS["int"] = INTEGER
_SCALARS["long"] = BIGINT
_SCALARS["string"] = VARCHAR
_SCALARS["float"] = DOUBLE


@dataclass(frozen=True)
class RowField:
    """One named field of a ``ROW`` type."""

    name: str
    type: PrestoType


class RowType(PrestoType):
    """A struct with named, ordered fields — ``row(a bigint, b varchar)``.

    The paper's production data commonly has "one high level column with
    struct type ... 20 or sometimes up to 50 fields ... more than 5 levels
    of nesting" (section V.A).
    """

    name = "row"

    def __init__(self, fields: list[RowField]) -> None:
        self.fields: tuple[RowField, ...] = tuple(fields)
        self._index = {f.name: i for i, f in enumerate(self.fields)}
        if len(self._index) != len(self.fields):
            raise ValueError(f"duplicate field names in row type: {fields}")

    @classmethod
    def of(cls, *pairs: tuple[str, PrestoType]) -> "RowType":
        return cls([RowField(n, t) for n, t in pairs])

    def is_nested(self) -> bool:
        return True

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field_index(self, name: str) -> int:
        """Index of field ``name``; raises ``KeyError`` if absent."""
        return self._index[name.lower()] if name.lower() in self._index else self._index[name]

    def has_field(self, name: str) -> bool:
        return name in self._index or name.lower() in self._index

    def field_type(self, name: str) -> PrestoType:
        return self.fields[self.field_index(name)].type

    def display(self) -> str:
        inner = ", ".join(f"{f.name} {f.type.display()}" for f in self.fields)
        return f"row({inner})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(("row", self.fields))

    def walk(self, prefix: str = "") -> Iterator[tuple[str, PrestoType]]:
        """Yield every (dotted-path, type) pair, depth first.

        Used by nested column pruning to enumerate leaf columns.
        """
        for f in self.fields:
            path = f"{prefix}.{f.name}" if prefix else f.name
            yield path, f.type
            if isinstance(f.type, RowType):
                yield from f.type.walk(path)


class ArrayType(PrestoType):
    """``array(T)``."""

    name = "array"

    def __init__(self, element_type: PrestoType) -> None:
        self.element_type = element_type

    def is_nested(self) -> bool:
        return True

    def display(self) -> str:
        return f"array({self.element_type.display()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArrayType) and self.element_type == other.element_type

    def __hash__(self) -> int:
        return hash(("array", self.element_type))


class MapType(PrestoType):
    """``map(K, V)``."""

    name = "map"

    def __init__(self, key_type: PrestoType, value_type: PrestoType) -> None:
        self.key_type = key_type
        self.value_type = value_type

    def is_nested(self) -> bool:
        return True

    def display(self) -> str:
        return f"map({self.key_type.display()}, {self.value_type.display()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MapType)
            and self.key_type == other.key_type
            and self.value_type == other.value_type
        )

    def __hash__(self) -> int:
        return hash(("map", self.key_type, self.value_type))


def parse_type(text: str) -> PrestoType:
    """Parse a type string like ``row(a bigint, b array(varchar))``.

    This is the inverse of :meth:`PrestoType.display` and is used by the
    metastore, the schema-evolution service, and tests.
    """
    parser = _TypeParser(text)
    result = parser.parse()
    parser.expect_end()
    return result


class _TypeParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0

    def parse(self) -> PrestoType:
        name = self._identifier()
        lowered = name.lower()
        if lowered == "row":
            return self._parse_row()
        if lowered == "array":
            self._expect("(")
            element = self.parse()
            self._expect(")")
            return ArrayType(element)
        if lowered == "map":
            self._expect("(")
            key = self.parse()
            self._expect(",")
            value = self.parse()
            self._expect(")")
            return MapType(key, value)
        if lowered in _SCALARS:
            # Tolerate parametric varchar like varchar(255): length is ignored
            # because the engine does not enforce bounded varchars.
            self._skip_parenthesized_length()
            return _SCALARS[lowered]
        raise ValueError(f"unknown type {name!r} in {self._text!r}")

    def _parse_row(self) -> RowType:
        self._expect("(")
        fields: list[RowField] = []
        while True:
            fname = self._identifier()
            ftype = self.parse()
            fields.append(RowField(fname, ftype))
            self._skip_ws()
            if self._peek() == ",":
                self._pos += 1
                continue
            break
        self._expect(")")
        return RowType(fields)

    def _skip_parenthesized_length(self) -> None:
        self._skip_ws()
        if self._peek() == "(":
            depth = 0
            while self._pos < len(self._text):
                ch = self._text[self._pos]
                self._pos += 1
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        return
            raise ValueError(f"unbalanced parentheses in {self._text!r}")

    def _identifier(self) -> str:
        self._skip_ws()
        start = self._pos
        while self._pos < len(self._text) and (
            self._text[self._pos].isalnum() or self._text[self._pos] in "_$"
        ):
            self._pos += 1
        if start == self._pos:
            raise ValueError(f"expected identifier at {self._pos} in {self._text!r}")
        return self._text[start : self._pos]

    def _peek(self) -> Optional[str]:
        self._skip_ws()
        return self._text[self._pos] if self._pos < len(self._text) else None

    def _expect(self, ch: str) -> None:
        if self._peek() != ch:
            raise ValueError(f"expected {ch!r} at {self._pos} in {self._text!r}")
        self._pos += 1

    def _skip_ws(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos].isspace():
            self._pos += 1

    def expect_end(self) -> None:
        self._skip_ws()
        if self._pos != len(self._text):
            raise ValueError(f"trailing input at {self._pos} in {self._text!r}")


def common_super_type(a: PrestoType, b: PrestoType) -> Optional[PrestoType]:
    """The only implicit widenings the strict engine allows.

    integer → bigint → double.  Everything else must match exactly
    (section V.A: no automatic type coercion).
    """
    if a == b:
        return a
    numeric_rank = {INTEGER: 0, BIGINT: 1, DOUBLE: 2}
    if a in numeric_rank and b in numeric_rank:
        return a if numeric_rank[a] >= numeric_rank[b] else b
    if a is UNKNOWN:
        return b
    if b is UNKNOWN:
        return a
    return None
