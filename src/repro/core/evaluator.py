"""Expression evaluation: compiled kernel DAGs + row-at-a-time oracle.

Presto generates JVM bytecode (via ASM) for expression evaluation; this
module is the Python equivalent.  The default lane compiles each
:class:`RowExpression` once (per canonical form, cached process-wide in
:mod:`repro.core.compiler`) into a DAG of null-aware, dictionary-aware
array kernels and reuses it for every page.

The original row-at-a-time interpreter is retained in full as the
differential oracle — the same pattern as ``execute_aggregation_rows`` for
the operator kernels — selected with
``EvaluatorOptions(mode="interpreted")``.  Null semantics follow SQL
three-valued logic in both lanes: function calls propagate null when any
argument is null; AND/OR use Kleene logic; ``IS_NULL`` and ``COALESCE``
observe nulls without propagating them.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.common.errors import ExecutionError
from repro.core.blocks import (
    Block,
    DictionaryBlock,
    PrimitiveBlock,
    RowBlock,
    VarcharBlock,
    _numpy_dtype_for,
    block_from_values,
    constant_block,  # noqa: F401  (re-exported; historical home of this helper)
    with_extra_nulls,
)
from repro.core.compiler import (
    COMPILED,
    INTERPRETED,
    CompiledExpression,
    EvaluatorOptions,
    bool_arrays,
    compile_cached,
)
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    LambdaDefinitionExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
)
from repro.core.functions import FunctionRegistry, default_registry
from repro.core.types import BOOLEAN, PrestoType

_with_extra_nulls = with_extra_nulls  # historical private alias
_bool_arrays = bool_arrays  # historical private alias


class Evaluator:
    """Evaluates RowExpressions over column bindings.

    ``options.mode`` selects the lane: ``"compiled"`` (default) runs the
    kernel DAGs from :mod:`repro.core.compiler`; ``"interpreted"`` runs the
    row-at-a-time reference implementation.  ``stats`` (a
    :class:`repro.execution.context.QueryStats`, optional) receives the
    ``expr_positions_*`` counters surfaced by EXPLAIN ANALYZE.
    """

    def __init__(
        self,
        registry: Optional[FunctionRegistry] = None,
        options: Optional[EvaluatorOptions] = None,
        stats=None,
    ) -> None:
        self._registry = registry or default_registry()
        self._options = options or EvaluatorOptions()
        self._stats = stats
        # Per-evaluator memo keyed on expression identity; holds a strong
        # reference to the expression so the id stays valid.
        self._compiled_memo: dict[int, tuple[RowExpression, CompiledExpression]] = {}

    @property
    def options(self) -> EvaluatorOptions:
        return self._options

    # -- public API ---------------------------------------------------------

    def compiled(self, expression: RowExpression) -> CompiledExpression:
        """The compiled form of ``expression`` (memoized, shared cache)."""
        memo = self._compiled_memo.get(id(expression))
        if memo is not None and memo[0] is expression:
            return memo[1]
        compiled = compile_cached(self._registry, self._options, expression)
        self._compiled_memo[id(expression)] = (expression, compiled)
        return compiled

    def evaluate(
        self,
        expression: RowExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        """Evaluate ``expression`` for every position, returning a block."""
        if isinstance(expression, VariableReferenceExpression):
            if expression.name not in bindings:
                raise ExecutionError(f"unbound variable {expression.name}")
            return bindings[expression.name]
        if isinstance(expression, ConstantExpression):
            return constant_block(expression.value, expression.type, position_count)
        if self._options.mode == INTERPRETED:
            if self._stats is not None:
                self._stats.expr_positions_fallback += position_count
            return self.evaluate_interpreted(expression, bindings, position_count)
        return self.compiled(expression).evaluate(bindings, position_count, self._stats)

    def evaluate_scalar(self, expression: RowExpression) -> Any:
        """Evaluate a variable-free expression to a single Python value."""
        if self._options.mode == INTERPRETED:
            block = self.evaluate_interpreted(expression, {}, 1)
        else:
            block = self.evaluate(expression, {}, 1)
        return block.get(0)

    def predicate_is_always_true(self, predicate: RowExpression) -> bool:
        """True when ``predicate`` constant-folds to TRUE (safe to skip)."""
        if self._options.mode == INTERPRETED or not self._options.constant_folding:
            return (
                isinstance(predicate, ConstantExpression) and predicate.value is True
            )
        return self.compiled(predicate).is_always_true()

    def filter_mask(
        self,
        predicate: RowExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> np.ndarray:
        """Boolean selection mask: True where the predicate is true (not null)."""
        if self._options.mode != INTERPRETED and self.compiled(predicate).is_always_true():
            return np.ones(position_count, dtype=bool)
        block = self.evaluate(predicate, bindings, position_count)
        values, nulls = bool_arrays(block)
        return values & ~nulls

    # -- interpreter lane (differential oracle) ------------------------------

    def evaluate_interpreted(
        self,
        expression: RowExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        """Row-at-a-time reference evaluation (the pre-compiler semantics)."""
        if isinstance(expression, ConstantExpression):
            return constant_block(expression.value, expression.type, position_count)
        if isinstance(expression, VariableReferenceExpression):
            if expression.name not in bindings:
                raise ExecutionError(f"unbound variable {expression.name}")
            return bindings[expression.name]
        if isinstance(expression, CallExpression):
            return self._evaluate_call(expression, bindings, position_count)
        if isinstance(expression, SpecialFormExpression):
            return self._evaluate_special(expression, bindings, position_count)
        if isinstance(expression, LambdaDefinitionExpression):
            raise ExecutionError("lambda must appear as a function argument")
        raise ExecutionError(f"cannot evaluate {type(expression).__name__}")

    # -- calls ---------------------------------------------------------------

    def _evaluate_call(
        self,
        call: CallExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        if call.function_handle.name in ("transform", "filter", "any_match") and any(
            isinstance(a, LambdaDefinitionExpression) for a in call.arguments
        ):
            return self._evaluate_higher_order(call, bindings, position_count)
        implementation = self._registry.implementation_for(call.function_handle)

        # Dictionary fast path: evaluate on the dictionary, keep the ids.
        if (
            implementation.deterministic
            and len(call.arguments) == 1
            and isinstance(call.arguments[0], VariableReferenceExpression)
        ):
            arg_block = bindings.get(call.arguments[0].name)
            if isinstance(arg_block, DictionaryBlock):
                inner = self._apply(
                    implementation,
                    call.type,
                    [arg_block.dictionary],
                    arg_block.dictionary.position_count,
                )
                if isinstance(inner, (PrimitiveBlock, VarcharBlock)):
                    return DictionaryBlock(inner, arg_block.ids)

        arg_blocks = [
            self.evaluate_interpreted(arg, bindings, position_count).loaded()
            for arg in call.arguments
        ]
        arg_blocks = [
            b.decode() if isinstance(b, DictionaryBlock) else b for b in arg_blocks
        ]
        return self._apply(implementation, call.type, arg_blocks, position_count)

    def _apply(
        self,
        implementation,
        return_type: PrestoType,
        arg_blocks: list[Block],
        position_count: int,
    ) -> Block:
        null_mask = np.zeros(position_count, dtype=bool)
        for block in arg_blocks:
            null_mask |= block.null_mask()

        all_primitive = all(isinstance(b, PrimitiveBlock) for b in arg_blocks)
        vectorizable = (
            implementation.vectorized is not None
            and all_primitive
            and not null_mask.any()
            and all(b.values.dtype != object for b in arg_blocks)  # type: ignore[union-attr]
        )
        if vectorizable:
            arrays = [b.values for b in arg_blocks]  # type: ignore[union-attr]
            result = implementation.vectorized(*arrays)
            result = np.asarray(result)
            target_dtype = _numpy_dtype_for(return_type)
            if target_dtype is not object and result.dtype != target_dtype:
                result = result.astype(target_dtype)
            return PrimitiveBlock(return_type, result)

        values: list[Any] = []
        for i in range(position_count):
            if null_mask[i]:
                values.append(None)
                continue
            args = [b.get(i) for b in arg_blocks]
            values.append(implementation.row_fn(*args))
        return block_from_values(return_type, values)

    def _evaluate_higher_order(
        self,
        call: CallExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        """transform/filter/any_match: apply a lambda per array element.

        The lambda body runs *vectorized over each row's elements*; outer
        columns captured by the body are bound as per-row constants.
        """
        name = call.function_handle.name
        array_block = self.evaluate_interpreted(
            call.arguments[0], bindings, position_count
        ).loaded()
        lam = call.arguments[1]
        if not isinstance(lam, LambdaDefinitionExpression):
            raise ExecutionError(f"{name}() requires a lambda argument")
        parameter = lam.argument_names[0]
        element_type = lam.argument_types[0]
        captured = [
            v for v in lam.body.variables() if v.name != parameter
        ]

        results: list[Any] = []
        for position in range(position_count):
            elements = array_block.get(position)
            if elements is None:
                results.append(None)
                continue
            if not elements:
                results.append(False if name == "any_match" else [])
                continue
            lambda_bindings: dict[str, Block] = {
                parameter: block_from_values(element_type, elements)
            }
            for variable in captured:
                outer = bindings.get(variable.name)
                if outer is None:
                    raise ExecutionError(f"unbound variable {variable.name}")
                lambda_bindings[variable.name] = constant_block(
                    outer.get(position), variable.type, len(elements)
                )
            body_block = self.evaluate_interpreted(
                lam.body, lambda_bindings, len(elements)
            ).loaded()
            if name == "transform":
                results.append(body_block.to_list())
            elif name == "filter":
                kept = [
                    element
                    for element, keep in zip(elements, body_block.to_list())
                    if keep
                ]
                results.append(kept)
            else:  # any_match
                results.append(any(bool(v) for v in body_block.to_list() if v is not None))
        return block_from_values(call.type, results)

    # -- special forms ---------------------------------------------------------

    def _evaluate_special(
        self,
        expression: SpecialFormExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        form = expression.form
        if form is SpecialForm.AND:
            return self._kleene(expression.arguments, bindings, position_count, is_and=True)
        if form is SpecialForm.OR:
            return self._kleene(expression.arguments, bindings, position_count, is_and=False)
        if form is SpecialForm.NOT:
            block = self.evaluate_interpreted(
                expression.arguments[0], bindings, position_count
            ).loaded()
            values, nulls = _bool_arrays(block)
            return PrimitiveBlock(BOOLEAN, ~values, nulls if nulls.any() else None)
        if form is SpecialForm.IS_NULL:
            block = self.evaluate_interpreted(
                expression.arguments[0], bindings, position_count
            ).loaded()
            return PrimitiveBlock(BOOLEAN, block.null_mask().copy())
        if form is SpecialForm.IN:
            return self._evaluate_in(expression, bindings, position_count)
        if form is SpecialForm.IF:
            return self._evaluate_if(expression, bindings, position_count)
        if form is SpecialForm.COALESCE:
            return self._evaluate_coalesce(expression, bindings, position_count)
        if form is SpecialForm.DEREFERENCE:
            return self._evaluate_dereference(expression, bindings, position_count)
        raise ExecutionError(f"unsupported special form {form}")

    def _kleene(
        self,
        arguments: tuple[RowExpression, ...],
        bindings: dict[str, Block],
        position_count: int,
        is_and: bool,
    ) -> Block:
        result = np.full(position_count, is_and, dtype=bool)
        result_nulls = np.zeros(position_count, dtype=bool)
        for argument in arguments:
            block = self.evaluate_interpreted(argument, bindings, position_count).loaded()
            values, nulls = _bool_arrays(block)
            if is_and:
                # false wins over null; null wins over true
                result_nulls = (result_nulls & (values | nulls)) | (nulls & result)
                result = result & (values | nulls)
            else:
                result_nulls = (result_nulls & ~(values & ~nulls)) | (nulls & ~result)
                result = result | (values & ~nulls)
        result = result & ~result_nulls
        return PrimitiveBlock(BOOLEAN, result, result_nulls if result_nulls.any() else None)

    def _evaluate_in(
        self,
        expression: SpecialFormExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        value_block = self.evaluate_interpreted(
            expression.arguments[0], bindings, position_count
        ).loaded()
        if isinstance(value_block, DictionaryBlock):
            value_block = value_block.decode()
        candidates = expression.arguments[1:]
        nulls = value_block.null_mask().copy()
        if all(isinstance(c, ConstantExpression) for c in candidates):
            in_list = [c.value for c in candidates if c.value is not None]
            has_null_candidate = any(c.value is None for c in candidates)
            if isinstance(value_block, PrimitiveBlock) and value_block.values.dtype != object:
                matches = np.isin(value_block.values, np.array(in_list))
            else:
                in_set = set(in_list)
                matches = np.array(
                    [
                        (value_block.get(i) in in_set) if not nulls[i] else False
                        for i in range(position_count)
                    ]
                )
            if has_null_candidate:
                # value NOT IN (..., NULL) is null when no match
                nulls = nulls | (~matches)
            matches = matches & ~nulls
            return PrimitiveBlock(BOOLEAN, matches, nulls if nulls.any() else None)

        # General form: compare against each candidate expression.
        matches = np.zeros(position_count, dtype=bool)
        for candidate in candidates:
            candidate_block = self.evaluate_interpreted(
                candidate, bindings, position_count
            ).loaded()
            for i in range(position_count):
                if not nulls[i] and not candidate_block.is_null(i):
                    if value_block.get(i) == candidate_block.get(i):
                        matches[i] = True
        matches = matches & ~nulls
        return PrimitiveBlock(BOOLEAN, matches, nulls if nulls.any() else None)

    def _evaluate_if(
        self,
        expression: SpecialFormExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        condition = self.evaluate_interpreted(
            expression.arguments[0], bindings, position_count
        ).loaded()
        cond_values, cond_nulls = _bool_arrays(condition)
        take_then = cond_values & ~cond_nulls
        then_block = self.evaluate_interpreted(
            expression.arguments[1], bindings, position_count
        ).loaded()
        if len(expression.arguments) > 2:
            else_block = self.evaluate_interpreted(
                expression.arguments[2], bindings, position_count
            ).loaded()
        else:
            else_block = constant_block(None, expression.type, position_count)
        values = [
            then_block.get(i) if take_then[i] else else_block.get(i)
            for i in range(position_count)
        ]
        return block_from_values(expression.type, values)

    def _evaluate_coalesce(
        self,
        expression: SpecialFormExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        values: list[Any] = [None] * position_count
        remaining = np.ones(position_count, dtype=bool)
        for argument in expression.arguments:
            if not remaining.any():
                break
            block = self.evaluate_interpreted(argument, bindings, position_count).loaded()
            nulls = block.null_mask()
            for i in np.nonzero(remaining)[0]:
                if not nulls[i]:
                    values[int(i)] = block.get(int(i))
                    remaining[i] = False
        return block_from_values(expression.type, values)

    def _evaluate_dereference(
        self,
        expression: SpecialFormExpression,
        bindings: dict[str, Block],
        position_count: int,
    ) -> Block:
        base = self.evaluate_interpreted(
            expression.arguments[0], bindings, position_count
        ).loaded()
        field_name_expr = expression.arguments[1]
        if not isinstance(field_name_expr, ConstantExpression):
            raise ExecutionError("DEREFERENCE field name must be constant")
        field_name = field_name_expr.value
        if isinstance(base, RowBlock):
            if base.has_field(field_name):
                field_block = base.field(field_name)
                return _with_extra_nulls(field_block, base.null_mask())
            # Schema evolution: newly added field absent from old data → null.
            return constant_block(None, expression.type, position_count)
        # Fallback: base produced dict values row by row.
        values = []
        for i in range(position_count):
            row_value = base.get(i)
            values.append(None if row_value is None else row_value.get(field_name))
        return block_from_values(expression.type, values)
