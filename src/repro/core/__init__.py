"""Engine core: type system, columnar blocks/pages, RowExpressions.

This package is the foundation every other subsystem builds on:

- :mod:`repro.core.types` — Presto's strict SQL type system, including
  nested ``ROW`` (struct), ``ARRAY`` and ``MAP`` types used by the paper's
  complex-data sections.
- :mod:`repro.core.blocks` / :mod:`repro.core.page` — the vectorized
  in-memory columnar representation (section III: "Presto is a vectorized
  engine, which processes a bunch of in memory encoded column values").
- :mod:`repro.core.expressions` — the self-contained ``RowExpression``
  representation of Table I, which replaced the AST-based representation so
  sub-expressions can be pushed down to connectors.
- :mod:`repro.core.evaluator` — vectorized interpreter for RowExpressions
  (the Python stand-in for Presto's ASM bytecode generation).
- :mod:`repro.core.functions` — the scalar/aggregate function registry with
  resolvable ``FunctionHandle`` identities.
"""

from repro.core.types import (
    PrestoType,
    BIGINT,
    INTEGER,
    DOUBLE,
    BOOLEAN,
    VARCHAR,
    DATE,
    TIMESTAMP,
    GEOMETRY,
    UNKNOWN,
    RowType,
    ArrayType,
    MapType,
    parse_type,
)
from repro.core.blocks import (
    Block,
    PrimitiveBlock,
    VarcharBlock,
    DictionaryBlock,
    RowBlock,
    ArrayBlock,
    MapBlock,
    LazyBlock,
    object_varchar_lane,
    varchar_blocks_enabled,
)
from repro.core.page import Page

__all__ = [
    "PrestoType",
    "BIGINT",
    "INTEGER",
    "DOUBLE",
    "BOOLEAN",
    "VARCHAR",
    "DATE",
    "TIMESTAMP",
    "GEOMETRY",
    "UNKNOWN",
    "RowType",
    "ArrayType",
    "MapType",
    "parse_type",
    "Block",
    "PrimitiveBlock",
    "VarcharBlock",
    "DictionaryBlock",
    "RowBlock",
    "ArrayBlock",
    "MapBlock",
    "LazyBlock",
    "object_varchar_lane",
    "varchar_blocks_enabled",
    "Page",
]
