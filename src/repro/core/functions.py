"""Function registry and resolvable FunctionHandles.

Section IV.B: the AST-based pushdown representation "does not contain type
information as well as enough information to perform function resolution.
We resolve this by storing function resolution information in the expression
representation itself as a serializable functionHandle."

A :class:`FunctionHandle` is the serializable identity of one resolved
function: name plus exact argument types plus return type.  Connectors on
the far side of a pushdown can re-resolve the handle against their own copy
of the registry, which is what makes ``RowExpression`` self-contained.

Scalar functions carry an optional *vectorized* implementation operating on
numpy arrays (the Python stand-in for Presto's ASM code generation) and
always carry a row-at-a-time fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.common.errors import SemanticError
from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DATE,
    DOUBLE,
    GEOMETRY,
    INTEGER,
    MapType,
    PrestoType,
    TIMESTAMP,
    UNKNOWN,
    VARCHAR,
    common_super_type,
    parse_type,
)


@dataclass(frozen=True)
class FunctionHandle:
    """Serializable identity of one resolved function."""

    name: str
    argument_types: tuple[str, ...]
    return_type: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "argumentTypes": list(self.argument_types),
            "returnType": self.return_type,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionHandle":
        return cls(data["name"], tuple(data["argumentTypes"]), data["returnType"])

    def resolved_return_type(self) -> PrestoType:
        return parse_type(self.return_type)


@dataclass
class ScalarFunction:
    """One resolvable scalar function overload family.

    ``resolve`` maps concrete argument types to a return type (or ``None``
    if this family does not apply).  ``vectorized`` operates on numpy value
    arrays (nulls already masked out by the evaluator); ``row_fn`` is the
    per-row fallback and the reference semantics.
    """

    name: str
    resolve: Callable[[Sequence[PrestoType]], Optional[PrestoType]]
    row_fn: Callable[..., Any]
    vectorized: Optional[Callable[..., np.ndarray]] = None
    deterministic: bool = True
    # Whether ``vectorized`` is safe over object-dtype (string/date) arrays.
    # Numeric-only kernels keep the default and fall back per row instead.
    vectorized_on_objects: bool = False


@dataclass
class AggregateFunction:
    """One aggregate function: create/add/merge/finalize state machine."""

    name: str
    resolve: Callable[[Sequence[PrestoType]], Optional[PrestoType]]
    create_state: Callable[[], Any]
    add_input: Callable[[Any, tuple], Any]
    merge: Callable[[Any, Any], Any]
    finalize: Callable[[Any], Any]


class FunctionRegistry:
    """Registry resolving (name, argument types) to implementations."""

    def __init__(self) -> None:
        self._scalars: dict[str, list[ScalarFunction]] = {}
        self._aggregates: dict[str, list[AggregateFunction]] = {}
        _register_builtin_scalars(self)
        _register_builtin_aggregates(self)

    # -- registration -----------------------------------------------------

    def register_scalar(self, function: ScalarFunction) -> None:
        self._scalars.setdefault(function.name.lower(), []).append(function)

    def register_aggregate(self, function: AggregateFunction) -> None:
        self._aggregates.setdefault(function.name.lower(), []).append(function)

    # -- resolution --------------------------------------------------------

    def is_aggregate(self, name: str) -> bool:
        return name.lower() in self._aggregates

    def resolve_scalar(
        self, name: str, argument_types: Sequence[PrestoType]
    ) -> tuple[FunctionHandle, ScalarFunction]:
        """Resolve a scalar call, returning its handle and implementation."""
        overloads = self._scalars.get(name.lower())
        if not overloads:
            raise SemanticError(f"unknown function: {name}")
        for fn in overloads:
            return_type = fn.resolve(argument_types)
            if return_type is not None:
                handle = FunctionHandle(
                    name.lower(),
                    tuple(t.display() for t in argument_types),
                    return_type.display(),
                )
                return handle, fn
        rendered = ", ".join(t.display() for t in argument_types)
        raise SemanticError(f"no overload of {name}({rendered})")

    def resolve_aggregate(
        self, name: str, argument_types: Sequence[PrestoType]
    ) -> tuple[FunctionHandle, AggregateFunction]:
        overloads = self._aggregates.get(name.lower())
        if not overloads:
            raise SemanticError(f"unknown aggregate function: {name}")
        for fn in overloads:
            return_type = fn.resolve(argument_types)
            if return_type is not None:
                handle = FunctionHandle(
                    name.lower(),
                    tuple(t.display() for t in argument_types),
                    return_type.display(),
                )
                return handle, fn
        rendered = ", ".join(t.display() for t in argument_types)
        raise SemanticError(f"no overload of aggregate {name}({rendered})")

    def implementation_for(self, handle: FunctionHandle) -> ScalarFunction:
        """Re-resolve a handle (e.g. one deserialized inside a connector)."""
        types = [parse_type(t) for t in handle.argument_types]
        _, fn = self.resolve_scalar(handle.name, types)
        return fn

    def aggregate_for(self, handle: FunctionHandle) -> AggregateFunction:
        types = [parse_type(t) for t in handle.argument_types]
        _, fn = self.resolve_aggregate(handle.name, types)
        return fn


# ---------------------------------------------------------------------------
# Built-in scalar functions
# ---------------------------------------------------------------------------


def _numeric_pair(arg_types: Sequence[PrestoType]) -> Optional[PrestoType]:
    if len(arg_types) != 2:
        return None
    out = common_super_type(arg_types[0], arg_types[1])
    if out is not None and out.is_numeric():
        return out
    return None


def _comparable_pair(arg_types: Sequence[PrestoType]) -> Optional[PrestoType]:
    if len(arg_types) != 2:
        return None
    a, b = arg_types
    if common_super_type(a, b) is None:
        return None
    return BOOLEAN


def _fixed(signature: Sequence[PrestoType], return_type: PrestoType):
    expected = tuple(signature)

    def resolve(arg_types: Sequence[PrestoType]) -> Optional[PrestoType]:
        if len(arg_types) != len(expected):
            return None
        for got, want in zip(arg_types, expected):
            if got is UNKNOWN:
                continue
            if common_super_type(got, want) != want:
                return None
        return return_type

    return resolve


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        raise ZeroDivisionError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # Presto integer division truncates toward zero.
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def _vec_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero")
    if a.dtype.kind in "iu" and b.dtype.kind in "iu":
        q = np.abs(a) // np.abs(b)
        return np.where((a >= 0) == (b >= 0), q, -q)
    return a / b


def _mod(a: Any, b: Any) -> Any:
    if b == 0:
        raise ZeroDivisionError("modulo by zero")
    return int(np.fmod(a, b)) if isinstance(a, int) and isinstance(b, int) else float(np.fmod(a, b))


def _register_builtin_scalars(registry: FunctionRegistry) -> None:
    def scalar(name, resolve, row_fn, vectorized=None, objects=False):
        registry.register_scalar(
            ScalarFunction(name, resolve, row_fn, vectorized, vectorized_on_objects=objects)
        )

    # Arithmetic
    scalar("add", _numeric_pair, lambda a, b: a + b, lambda a, b: a + b)
    scalar("subtract", _numeric_pair, lambda a, b: a - b, lambda a, b: a - b)
    scalar("multiply", _numeric_pair, lambda a, b: a * b, lambda a, b: a * b)
    scalar("divide", _numeric_pair, _div, _vec_div)
    scalar("modulus", _numeric_pair, _mod, lambda a, b: np.fmod(a, b))
    scalar(
        "negate",
        lambda ts: ts[0] if len(ts) == 1 and ts[0].is_numeric() else None,
        lambda a: -a,
        lambda a: -a,
    )

    # Comparison (equals works on any comparable pair, including varchar;
    # numpy applies the rich comparison elementwise on object arrays).
    scalar("equal", _comparable_pair, lambda a, b: a == b, lambda a, b: a == b, objects=True)
    scalar("not_equal", _comparable_pair, lambda a, b: a != b, lambda a, b: a != b, objects=True)
    scalar("less_than", _comparable_pair, lambda a, b: a < b, lambda a, b: a < b, objects=True)
    scalar(
        "less_than_or_equal", _comparable_pair, lambda a, b: a <= b, lambda a, b: a <= b, objects=True
    )
    scalar("greater_than", _comparable_pair, lambda a, b: a > b, lambda a, b: a > b, objects=True)
    scalar(
        "greater_than_or_equal", _comparable_pair, lambda a, b: a >= b, lambda a, b: a >= b, objects=True
    )

    # Boolean
    scalar("not", _fixed([BOOLEAN], BOOLEAN), lambda a: not a, lambda a: ~a)

    # String functions: vectorized kernels run over whole object arrays
    # (null lanes pre-filled with a sentinel by the expression compiler).
    scalar("lower", _fixed([VARCHAR], VARCHAR), lambda s: s.lower(), _VEC_LOWER, objects=True)
    scalar("upper", _fixed([VARCHAR], VARCHAR), lambda s: s.upper(), _VEC_UPPER, objects=True)
    scalar("length", _fixed([VARCHAR], BIGINT), lambda s: len(s), _VEC_LEN, objects=True)
    scalar(
        "concat", _fixed([VARCHAR, VARCHAR], VARCHAR), lambda a, b: a + b,
        lambda a, b: a + b, objects=True,
    )
    scalar(
        "substr",
        _fixed([VARCHAR, BIGINT, BIGINT], VARCHAR),
        lambda s, start, length: s[int(start) - 1 : int(start) - 1 + int(length)],
        _vec_substr3,
        objects=True,
    )
    scalar(
        "substr",
        _fixed([VARCHAR, BIGINT], VARCHAR),
        lambda s, start: s[int(start) - 1 :],
        _vec_substr2,
        objects=True,
    )
    scalar(
        "strpos", _fixed([VARCHAR, VARCHAR], BIGINT),
        lambda s, sub: s.find(sub) + 1, _VEC_STRPOS, objects=True,
    )
    scalar("trim", _fixed([VARCHAR], VARCHAR), lambda s: s.strip(), _VEC_TRIM, objects=True)
    scalar("ltrim", _fixed([VARCHAR], VARCHAR), lambda s: s.lstrip(), _VEC_LTRIM, objects=True)
    scalar("rtrim", _fixed([VARCHAR], VARCHAR), lambda s: s.rstrip(), _VEC_RTRIM, objects=True)
    scalar(
        "like",
        _fixed([VARCHAR, VARCHAR], BOOLEAN),
        _like_match,
        _vec_like,
        objects=True,
    )

    # Math
    scalar("abs", lambda ts: ts[0] if len(ts) == 1 and ts[0].is_numeric() else None, abs, np.abs)
    scalar("sqrt", _fixed([DOUBLE], DOUBLE), lambda a: float(np.sqrt(a)), np.sqrt)
    scalar("floor", _fixed([DOUBLE], DOUBLE), lambda a: float(np.floor(a)), np.floor)
    scalar("ceil", _fixed([DOUBLE], DOUBLE), lambda a: float(np.ceil(a)), np.ceil)
    scalar("round", _fixed([DOUBLE], DOUBLE), lambda a: float(np.round(a)), np.round)
    scalar("power", _fixed([DOUBLE, DOUBLE], DOUBLE), lambda a, b: float(a) ** float(b))
    scalar("ln", _fixed([DOUBLE], DOUBLE), lambda a: float(np.log(a)), np.log)

    # Casts — strict engine, but explicit CAST is allowed.
    def resolve_cast_to(target: PrestoType):
        def resolve(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
            return target if len(ts) == 1 else None

        return resolve

    scalar("cast_bigint", resolve_cast_to(BIGINT), lambda v: int(v), _VEC_INT, objects=True)
    scalar("cast_integer", resolve_cast_to(INTEGER), lambda v: int(v), _VEC_INT, objects=True)
    scalar("cast_double", resolve_cast_to(DOUBLE), lambda v: float(v), _VEC_FLOAT, objects=True)
    scalar("cast_varchar", resolve_cast_to(VARCHAR), _cast_varchar, _VEC_CAST_VARCHAR, objects=True)
    scalar("cast_boolean", resolve_cast_to(BOOLEAN), _cast_boolean, _VEC_CAST_BOOLEAN, objects=True)
    scalar("cast_date", resolve_cast_to(DATE), lambda v: str(v), _VEC_STR, objects=True)
    scalar("cast_timestamp", resolve_cast_to(TIMESTAMP), lambda v: str(v), _VEC_STR, objects=True)

    # Collection functions
    scalar(
        "cardinality",
        lambda ts: BIGINT if len(ts) == 1 and isinstance(ts[0], (ArrayType, MapType)) else None,
        lambda c: len(c),
    )
    scalar(
        "element_at",
        _resolve_element_at,
        _element_at,
    )
    scalar(
        "contains",
        lambda ts: BOOLEAN if len(ts) == 2 and isinstance(ts[0], ArrayType) else None,
        lambda arr, v: v in arr,
    )
    scalar(
        "array_max",
        lambda ts: ts[0].element_type if len(ts) == 1 and isinstance(ts[0], ArrayType) else None,
        lambda arr: max(arr) if arr else None,
    )
    scalar(
        "map_keys",
        lambda ts: ArrayType(ts[0].key_type) if len(ts) == 1 and isinstance(ts[0], MapType) else None,
        lambda m: list(m.keys()),
    )


@lru_cache(maxsize=512)
def like_regex(pattern: str):
    """Compiled anchored regex for a SQL LIKE pattern (% = run, _ = one)."""
    import re

    return re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        flags=re.DOTALL,
    )


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: % matches any run, _ matches one character."""
    return like_regex(pattern).match(value) is not None


def _vec_like(values: np.ndarray, patterns: np.ndarray) -> np.ndarray:
    return np.fromiter(
        (like_regex(p).match(v) is not None for v, p in zip(values, patterns)),
        dtype=bool,
        count=len(values),
    )


# Object-array kernels for string functions and casts: each maps a Python
# callable over an object array without per-position Block.get()/null checks
# (the compiler masks nulls before and after).
_VEC_LOWER = np.frompyfunc(str.lower, 1, 1)
_VEC_UPPER = np.frompyfunc(str.upper, 1, 1)
_VEC_LEN = np.frompyfunc(len, 1, 1)
_VEC_TRIM = np.frompyfunc(str.strip, 1, 1)
_VEC_LTRIM = np.frompyfunc(str.lstrip, 1, 1)
_VEC_RTRIM = np.frompyfunc(str.rstrip, 1, 1)
_VEC_STRPOS = np.frompyfunc(lambda s, sub: s.find(sub) + 1, 2, 1)
_VEC_INT = np.frompyfunc(int, 1, 1)
_VEC_FLOAT = np.frompyfunc(float, 1, 1)
_VEC_STR = np.frompyfunc(str, 1, 1)


def _vec_substr3(s: np.ndarray, start: np.ndarray, length: np.ndarray) -> np.ndarray:
    out = np.empty(len(s), dtype=object)
    for i, (v, b, n) in enumerate(zip(s, start, length)):
        begin = int(b) - 1
        out[i] = v[begin : begin + int(n)]
    return out


def _vec_substr2(s: np.ndarray, start: np.ndarray) -> np.ndarray:
    out = np.empty(len(s), dtype=object)
    for i, (v, b) in enumerate(zip(s, start)):
        out[i] = v[int(b) - 1 :]
    return out


def _cast_varchar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value == int(value):
        return f"{value:.1f}"
    return str(value)


def _cast_boolean(value: Any) -> bool:
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("true", "t", "1"):
            return True
        if lowered in ("false", "f", "0"):
            return False
        raise ValueError(f"cannot cast {value!r} to boolean")
    return bool(value)


_VEC_CAST_VARCHAR = np.frompyfunc(_cast_varchar, 1, 1)
_VEC_CAST_BOOLEAN = np.frompyfunc(_cast_boolean, 1, 1)


def _resolve_element_at(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
    if len(ts) != 2:
        return None
    if isinstance(ts[0], ArrayType):
        return ts[0].element_type
    if isinstance(ts[0], MapType):
        return ts[0].value_type
    return None


def _element_at(collection: Any, key: Any) -> Any:
    if isinstance(collection, list):
        index = int(key)
        if index < 1 or index > len(collection):
            return None
        return collection[index - 1]
    return collection.get(key)


# ---------------------------------------------------------------------------
# Built-in aggregate functions
# ---------------------------------------------------------------------------


def _register_builtin_aggregates(registry: FunctionRegistry) -> None:
    def aggregate(name, resolve, create, add, merge, finalize):
        registry.register_aggregate(
            AggregateFunction(name, resolve, create, add, merge, finalize)
        )

    def resolve_count(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        return BIGINT if len(ts) <= 1 else None

    aggregate(
        "count",
        resolve_count,
        lambda: 0,
        lambda state, args: state + (1 if not args or args[0] is not None else 0),
        lambda a, b: a + b,
        lambda state: state,
    )

    def resolve_numeric_agg(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        if len(ts) == 1 and ts[0].is_numeric():
            return ts[0]
        return None

    aggregate(
        "sum",
        resolve_numeric_agg,
        lambda: None,
        lambda state, args: state if args[0] is None else (args[0] if state is None else state + args[0]),
        lambda a, b: b if a is None else (a if b is None else a + b),
        lambda state: state,
    )

    def resolve_minmax(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        if len(ts) == 1 and ts[0].is_orderable():
            return ts[0]
        return None

    aggregate(
        "min",
        resolve_minmax,
        lambda: None,
        lambda state, args: state
        if args[0] is None
        else (args[0] if state is None or args[0] < state else state),
        lambda a, b: b if a is None else (a if b is None else min(a, b)),
        lambda state: state,
    )
    aggregate(
        "max",
        resolve_minmax,
        lambda: None,
        lambda state, args: state
        if args[0] is None
        else (args[0] if state is None or args[0] > state else state),
        lambda a, b: b if a is None else (a if b is None else max(a, b)),
        lambda state: state,
    )

    def resolve_avg(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        if len(ts) == 1 and ts[0].is_numeric():
            return DOUBLE
        return None

    aggregate(
        "avg",
        resolve_avg,
        lambda: (0.0, 0),
        lambda state, args: state if args[0] is None else (state[0] + args[0], state[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1]),
        lambda state: state[0] / state[1] if state[1] else None,
    )

    def resolve_any_to_bigint(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        return BIGINT if len(ts) == 1 else None

    # approx_distinct modeled with an exact set: correctness over memory.
    aggregate(
        "approx_distinct",
        resolve_any_to_bigint,
        lambda: set(),
        lambda state, args: state if args[0] is None else (state.add(args[0]) or state),
        lambda a, b: a | b,
        lambda state: len(state),
    )

    def resolve_array_agg(ts: Sequence[PrestoType]) -> Optional[PrestoType]:
        return ArrayType(ts[0]) if len(ts) == 1 else None

    aggregate(
        "array_agg",
        resolve_array_agg,
        lambda: [],
        lambda state, args: state + [args[0]] if args[0] is not None else state,
        lambda a, b: a + b,
        lambda state: state,
    )


_DEFAULT_REGISTRY: Optional[FunctionRegistry] = None


def default_registry() -> FunctionRegistry:
    """Process-wide registry; geo plugin functions register here on import."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = FunctionRegistry()
    return _DEFAULT_REGISTRY
