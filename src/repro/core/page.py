"""Pages: the unit of data flow between operators.

A :class:`Page` is a batch of rows represented as parallel columnar blocks.
Operators consume and produce pages; connectors stream pages into the
engine ("Hadoop data and MySQL data are streamed in Presto pages into the
Presto engine", section IV.A).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.blocks import Block, block_from_values
from repro.core.types import PrestoType


class Page:
    """An immutable batch of columnar blocks with equal position counts."""

    def __init__(self, blocks: list[Block], position_count: int | None = None) -> None:
        if position_count is None:
            if not blocks:
                raise ValueError("empty page needs an explicit position count")
            position_count = blocks[0].position_count
        for block in blocks:
            if block.position_count != position_count:
                raise ValueError(
                    f"block has {block.position_count} positions, page has {position_count}"
                )
        self.blocks = blocks
        self.position_count = position_count

    @classmethod
    def from_columns(
        cls, types: Sequence[PrestoType], columns: Sequence[Sequence[Any]]
    ) -> "Page":
        """Build a page from per-column Python value lists."""
        if len(types) != len(columns):
            raise ValueError("types/columns length mismatch")
        n = len(columns[0]) if columns else 0
        blocks = [block_from_values(t, c) for t, c in zip(types, columns)]
        return cls(blocks, n)

    @classmethod
    def from_rows(cls, types: Sequence[PrestoType], rows: Sequence[Sequence[Any]]) -> "Page":
        """Build a page from row tuples (convenience for tests/workloads)."""
        columns = [[row[i] for row in rows] for i in range(len(types))]
        if not rows:
            columns = [[] for _ in types]
        return cls.from_columns(types, columns)

    @property
    def channel_count(self) -> int:
        return len(self.blocks)

    def block(self, channel: int) -> Block:
        return self.blocks[channel]

    def take(self, positions: np.ndarray) -> "Page":
        """Select a subset of positions (filter result) across all blocks."""
        return Page([b.take(positions) for b in self.blocks], len(positions))

    def select_channels(self, channels: Sequence[int]) -> "Page":
        """Project to a subset/reordering of channels."""
        return Page([self.blocks[c] for c in channels], self.position_count)

    def append_block(self, block: Block) -> "Page":
        if block.position_count != self.position_count:
            raise ValueError("appended block position count mismatch")
        return Page(self.blocks + [block], self.position_count)

    def loaded(self) -> "Page":
        """Force all lazy blocks."""
        return Page([b.loaded() for b in self.blocks], self.position_count)

    def row(self, position: int) -> tuple:
        return tuple(b.get(position) for b in self.blocks)

    def rows(self) -> Iterator[tuple]:
        for i in range(self.position_count):
            yield self.row(i)

    def to_rows(self) -> list[tuple]:
        return list(self.rows())

    def size_in_bytes(self) -> int:
        return sum(b.size_in_bytes() for b in self.blocks)

    def __repr__(self) -> str:
        return f"Page(channels={self.channel_count}, positions={self.position_count})"


def concat_pages(types: Sequence[PrestoType], pages: Sequence[Page]) -> Page:
    """Concatenate pages row-wise into a single page.

    Used by final operators (Output, aggregation build) and tests.  Goes
    through Python values for simplicity; hot paths keep pages separate.
    """
    if not pages:
        return Page.from_columns(types, [[] for _ in types])
    columns: list[list[Any]] = [[] for _ in types]
    for page in pages:
        for channel in range(len(types)):
            columns[channel].extend(page.block(channel).loaded().to_list())
    return Page.from_columns(types, columns)
