"""Pages: the unit of data flow between operators.

A :class:`Page` is a batch of rows represented as parallel columnar blocks.
Operators consume and produce pages; connectors stream pages into the
engine ("Hadoop data and MySQL data are streamed in Presto pages into the
Presto engine", section IV.A).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.core.blocks import (
    Block,
    DictionaryBlock,
    PrimitiveBlock,
    VarcharBlock,
    _numpy_dtype_for,
    block_from_values,
    concat_varchar_blocks,
)
from repro.core.types import PrestoType


class Page:
    """An immutable batch of columnar blocks with equal position counts."""

    def __init__(self, blocks: list[Block], position_count: int | None = None) -> None:
        if position_count is None:
            if not blocks:
                raise ValueError("empty page needs an explicit position count")
            position_count = blocks[0].position_count
        for block in blocks:
            if block.position_count != position_count:
                raise ValueError(
                    f"block has {block.position_count} positions, page has {position_count}"
                )
        self.blocks = blocks
        self.position_count = position_count

    @classmethod
    def from_columns(
        cls, types: Sequence[PrestoType], columns: Sequence[Sequence[Any]]
    ) -> "Page":
        """Build a page from per-column Python value lists."""
        if len(types) != len(columns):
            raise ValueError("types/columns length mismatch")
        n = len(columns[0]) if columns else 0
        blocks = [block_from_values(t, c) for t, c in zip(types, columns)]
        return cls(blocks, n)

    @classmethod
    def from_rows(cls, types: Sequence[PrestoType], rows: Sequence[Sequence[Any]]) -> "Page":
        """Build a page from row tuples (convenience for tests/workloads).

        The transpose goes through one 2-D object array when the rows are
        rectangular scalars — one bulk assignment plus column slices
        instead of materializing a Python tuple per column.  Rows whose
        cells are themselves sequences (arrays/maps/structs) confuse the
        2-D assignment and fall back to ``zip``.
        """
        if not rows:
            columns: Sequence[Sequence[Any]] = [[] for _ in types]
            return cls.from_columns(types, columns)
        try:
            transposed = np.empty((len(rows), len(types)), dtype=object)
            transposed[:] = rows
        except ValueError:
            columns = list(zip(*rows))
        else:
            columns = [transposed[:, channel] for channel in range(len(types))]
        return cls.from_columns(types, columns)

    @property
    def channel_count(self) -> int:
        return len(self.blocks)

    def block(self, channel: int) -> Block:
        return self.blocks[channel]

    def take(self, positions: np.ndarray) -> "Page":
        """Select a subset of positions (filter result) across all blocks."""
        return Page([b.take(positions) for b in self.blocks], len(positions))

    def select_channels(self, channels: Sequence[int]) -> "Page":
        """Project to a subset/reordering of channels."""
        return Page([self.blocks[c] for c in channels], self.position_count)

    def append_block(self, block: Block) -> "Page":
        if block.position_count != self.position_count:
            raise ValueError("appended block position count mismatch")
        return Page(self.blocks + [block], self.position_count)

    def loaded(self) -> "Page":
        """Force all lazy blocks."""
        return Page([b.loaded() for b in self.blocks], self.position_count)

    def row(self, position: int) -> tuple:
        return tuple(b.get(position) for b in self.blocks)

    def rows(self) -> Iterator[tuple]:
        for i in range(self.position_count):
            yield self.row(i)

    def to_rows(self) -> list[tuple]:
        return list(self.rows())

    def size_in_bytes(self) -> int:
        return sum(b.size_in_bytes() for b in self.blocks)

    def __repr__(self) -> str:
        return f"Page(channels={self.channel_count}, positions={self.position_count})"


def concat_pages(types: Sequence[PrestoType], pages: Sequence[Page]) -> Page:
    """Concatenate pages row-wise into a single page.

    Used by final operators (Output, aggregation build, sort, join build)
    and tests.  Primitive columns concatenate as numpy arrays (dictionary
    blocks decode first); nested columns fall back to Python values,
    per-column, with the declared type's coercion semantics either way.
    """
    if not pages:
        return Page.from_columns(types, [[] for _ in types])
    position_count = sum(page.position_count for page in pages)
    blocks = [
        _concat_blocks(presto_type, [page.block(channel) for page in pages])
        for channel, presto_type in enumerate(types)
    ]
    return Page(blocks, position_count)


def _concat_blocks(presto_type: PrestoType, blocks: Sequence[Block]) -> Block:
    """Concatenate one column's blocks; vectorized for flat columns."""
    loaded: list[Block] = []
    for block in blocks:
        block = block.loaded()
        if isinstance(block, DictionaryBlock):
            block = block.decode()
        loaded.append(block)
    expected_dtype = _numpy_dtype_for(presto_type)
    if loaded and all(isinstance(b, VarcharBlock) for b in loaded):
        return concat_varchar_blocks(presto_type, loaded)
    if any(isinstance(b, VarcharBlock) for b in loaded):
        # Mixed representations (native pages meeting legacy object pages):
        # normalize to the permissive object lane.
        loaded = [
            b.to_primitive() if isinstance(b, VarcharBlock) else b for b in loaded
        ]
    if all(isinstance(b, PrimitiveBlock) for b in loaded) and (
        expected_dtype is object
        or all(b.values.dtype != object for b in loaded)
    ):
        values = np.concatenate([b.values for b in loaded]) if loaded else np.empty(0)
        if expected_dtype is not object and values.dtype != expected_dtype:
            values = values.astype(expected_dtype)
        nulls = None
        if any(b.nulls is not None for b in loaded):
            nulls = np.concatenate([b.null_mask() for b in loaded])
            if not nulls.any():
                nulls = None
            elif values.dtype == object:
                # Normalize padding under nulls, matching the Python path.
                values = values.copy()
                values[nulls] = None
        return PrimitiveBlock(presto_type, values, nulls)
    values_list: list[Any] = []
    for block in loaded:
        values_list.extend(block.to_list())
    return block_from_values(presto_type, values_list)
