"""Expression compiler: RowExpression trees → reusable DAGs of array kernels.

Presto generates JVM bytecode per expression once and reuses it for every
page; this module is the Python equivalent of that code generation step.
``ExpressionCompiler.compile`` turns an analyzed :class:`RowExpression`
into a :class:`CompiledExpression` — a DAG of kernel objects compiled once
per canonical expression form and cached process-wide — instead of
re-dispatching on the tree shape for every page of every operator.

The compiled lane removes the interpreter's three big bail-outs:

- **null-aware apply** — a call with any null argument no longer drops to a
  per-position Python loop.  The kernel fills null lanes of every argument
  with a type-appropriate sentinel (1 for numerics, so a null-lane divisor
  never trips the division-by-zero check; a surviving value for object
  arrays, so mixed comparisons and casts stay legal), runs the vectorized
  implementation over *all* lanes, and masks the result.
- **string/object kernels** — functions flagged ``vectorized_on_objects``
  (length, upper/lower, substr, concat, trim, LIKE, comparisons, casts) run
  over object-dtype arrays; ``LIKE <constant>`` additionally precompiles
  its anchored regex at expression-compile time.
- **offsets-native varchar kernels** — when arguments arrive as
  :class:`VarcharBlock` (bytes + offsets), the hot string functions skip
  objects entirely: ``length`` reads offset deltas (minus UTF-8
  continuation bytes), comparisons run on padded byte views, ``substr``
  is one gather, ``LIKE`` prunes by its literal byte prefix and only
  decodes surviving rows for the regex, and ``IN`` decides membership
  once per distinct string.  Functions without a native form decode the
  block to the object lane — same results, counted as vectorized.
- **dictionary-aware evaluation** — a deterministic, null-propagating
  subtree over a single variable evaluates on the *dictionary* of a
  :class:`DictionaryBlock` and re-wraps the ids, turning O(rows) work into
  O(distinct) (paper §V's dictionary optimizations applied to expressions).

Constant-foldable subtrees are evaluated once at compile time, so
``WHERE 1 = 1``-style conjuncts vanish before any page is scanned.

The row-at-a-time interpreter (:class:`repro.core.evaluator.Evaluator` in
``interpreted`` mode) stays as the differential oracle; unsupported
constructs (lambdas, non-constant IN lists) compile to a kernel that
delegates to it and counts its positions as interpreter fallback.
"""

from __future__ import annotations

import json
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.common.errors import ExecutionError
from repro.core.blocks import (
    Block,
    DictionaryBlock,
    PrimitiveBlock,
    RowBlock,
    VarcharBlock,
    _gather_slices,
    _numpy_dtype_for,
    block_from_values,
    constant_block,
    with_extra_nulls,
)
from repro.core.expressions import (
    CallExpression,
    ConstantExpression,
    LambdaDefinitionExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    VariableReferenceExpression,
)
from repro.core.functions import FunctionRegistry, ScalarFunction, like_regex
from repro.core.types import BOOLEAN, PrestoType

COMPILED = "compiled"
INTERPRETED = "interpreted"


@dataclass
class EvaluatorOptions:
    """Switch between the compiled kernel lane and the interpreter oracle.

    ``mode`` selects the lane (``"compiled"`` is the default hot path;
    ``"interpreted"`` is the retained row-at-a-time reference).  The two
    optimization toggles exist for ablation: disabling them keeps the
    compiled lane but without constant folding / dictionary evaluation.
    """

    mode: str = COMPILED
    constant_folding: bool = True
    dictionary_optimization: bool = True
    cache_size: int = 256


# ---------------------------------------------------------------------------
# Shared array helpers
# ---------------------------------------------------------------------------


def bool_arrays(block: Block) -> tuple[np.ndarray, np.ndarray]:
    """Extract (values, nulls) boolean arrays from a boolean-typed block.

    Fully array-based: dictionary blocks are evaluated on the dictionary
    and gathered through the ids; object arrays avoid per-position
    ``Block.get`` calls.
    """
    block = block.loaded()
    if isinstance(block, DictionaryBlock):
        dict_values, _ = bool_arrays(block.dictionary)
        nulls = block.null_mask()
        safe_ids = np.where(block.ids < 0, 0, block.ids)
        values = np.where(nulls, False, dict_values[safe_ids])
        return values, nulls
    nulls = block.null_mask()
    if isinstance(block, PrimitiveBlock):
        if block.values.dtype != object:
            values = block.values.astype(bool)
        else:
            values = np.fromiter(
                ((not nulls[i]) and bool(v) for i, v in enumerate(block.values)),
                dtype=bool,
                count=block.position_count,
            )
    else:
        values = np.fromiter(
            (
                (not nulls[i]) and bool(block.get(i))
                for i in range(block.position_count)
            ),
            dtype=bool,
            count=block.position_count,
        )
    values = np.where(nulls, False, values)
    return values, nulls


def _sentinel_for(values: np.ndarray, invalid: np.ndarray) -> Any:
    """A fill value for null lanes that keeps the kernel legal on all lanes.

    Numerics use 1 so a null-lane divisor never triggers the
    division-by-zero check; object arrays borrow a surviving value so
    comparisons and casts see a homogeneous, parseable element.
    """
    kind = values.dtype.kind
    if kind == "b":
        return False
    if kind in "iu":
        return 1
    if kind == "f":
        return 1.0
    valid = np.nonzero(~invalid)[0]
    return values[valid[0]] if len(valid) else ""


def _flat(block: Block) -> Block:
    block = block.loaded()
    if isinstance(block, DictionaryBlock):
        return block.decode()
    return block


# ---------------------------------------------------------------------------
# Offsets-native varchar kernels
# ---------------------------------------------------------------------------

_COMPARISON_OPS = {
    "equal": np.equal,
    "not_equal": np.not_equal,
    "less_than": np.less,
    "less_than_or_equal": np.less_equal,
    "greater_than": np.greater,
    "greater_than_or_equal": np.greater_equal,
}


def _varchar_max_width(block: VarcharBlock) -> int:
    lengths = block.byte_lengths()
    if block.nulls is not None:
        lengths = np.where(block.nulls, 0, lengths)
    return int(lengths.max()) if len(lengths) else 0


def _varchar_compare_constant(
    fn_name: str, block: VarcharBlock, const: str, flipped: bool, nulls: np.ndarray
) -> Optional[np.ndarray]:
    """Compare every row against one literal without padding the literal.

    Equality needs no byte matrix at all (length check + prefix scan);
    ordering compares the block's padded view against a bytes scalar.
    ``flipped`` means the literal was the left operand.
    """
    encoded = const.encode("utf-8")
    if b"\x00" in encoded:
        return None
    if fn_name in ("equal", "not_equal"):
        match = block.exact_match(encoded)
        return match if fn_name == "equal" else ~match
    view = block.fixed_view()
    if view is None:
        return None
    if flipped:
        return _COMPARISON_OPS[fn_name](encoded, view)
    return _COMPARISON_OPS[fn_name](view, encoded)


def _varchar_native(
    fn_name: str,
    return_type: PrestoType,
    blocks: list[Block],
    nulls: np.ndarray,
    position_count: int,
    consts: Optional[list] = None,
) -> Optional[Block]:
    """Offsets-native kernel for a hot string function, or None to fall back.

    These run directly on the VarcharBlock bytes+offsets layout: length
    from offset deltas (minus UTF-8 continuation bytes), comparisons on
    padded byte views (byte order == code-point order), substr as one
    gather over offset arithmetic.  A ``None`` return means "no native
    form": the caller decodes to the object lane, which is also the
    differential oracle.
    """
    if fn_name == "length" and len(blocks) == 1:
        block = blocks[0]
        if not isinstance(block, VarcharBlock):
            return None
        values = block.char_lengths().astype(np.int64, copy=False)
        return PrimitiveBlock(return_type, values, nulls if nulls.any() else None)
    if fn_name in _COMPARISON_OPS and len(blocks) == 2:
        left, right = blocks
        consts = consts or [None, None]
        if isinstance(left, VarcharBlock) and isinstance(consts[1], str):
            values = _varchar_compare_constant(fn_name, left, consts[1], False, nulls)
            if values is not None:
                return PrimitiveBlock(BOOLEAN, values, nulls if nulls.any() else None)
        if isinstance(right, VarcharBlock) and isinstance(consts[0], str):
            values = _varchar_compare_constant(fn_name, right, consts[0], True, nulls)
            if values is not None:
                return PrimitiveBlock(BOOLEAN, values, nulls if nulls.any() else None)
        if not (isinstance(left, VarcharBlock) and isinstance(right, VarcharBlock)):
            return None
        width = max(_varchar_max_width(left), _varchar_max_width(right))
        left_view = left.fixed_view(width)
        right_view = right.fixed_view(width)
        if left_view is None or right_view is None:
            return None  # embedded NULs or too wide: object oracle decides
        values = _COMPARISON_OPS[fn_name](left_view, right_view)
        return PrimitiveBlock(BOOLEAN, values, nulls if nulls.any() else None)
    if fn_name == "substr" and len(blocks) in (2, 3):
        block = blocks[0]
        if not isinstance(block, VarcharBlock) or not block.ascii_only():
            return None
        if not all(
            isinstance(b, PrimitiveBlock) and b.values.dtype.kind in "iu"
            for b in blocks[1:]
        ):
            return None
        starts = blocks[1].values
        valid = ~nulls
        if bool((starts[valid] < 1).any()):
            # Zero/negative starts hit Python's negative-slice semantics;
            # mirror them via the object oracle instead of byte arithmetic.
            return None
        lengths = block.byte_lengths()
        begin = np.where(nulls, 0, starts - 1)
        begin = np.minimum(begin, lengths)
        if len(blocks) == 3:
            end = np.clip(begin + blocks[2].values, begin, lengths)
        else:
            end = lengths
        data, offsets = _gather_slices(
            block.data, block.offsets[:-1] + begin, end - begin
        )
        return VarcharBlock(
            return_type, data, offsets, nulls if nulls.any() else None
        )
    return None


def _varchar_in_small(block: VarcharBlock, in_list: list) -> Optional[np.ndarray]:
    """Small IN lists: one exact-match scan per needle, OR'd together.

    Cheaper than factorizing the column when the list is short; None
    defers to the factorize path (long lists, non-string needles).
    """
    if len(in_list) > 8 or not all(isinstance(v, str) for v in in_list):
        return None
    matches = np.zeros(block.position_count, dtype=bool)
    for needle in in_list:
        matches |= block.exact_match(needle.encode("utf-8"))
    return matches


def _like_literal_prefix(pattern: str) -> tuple[str, str]:
    """Split a LIKE pattern into (literal prefix, remainder)."""
    for i, ch in enumerate(pattern):
        if ch in "%_":
            return pattern[:i], pattern[i:]
    return pattern, ""


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


class Kernel:
    """One node of a compiled expression DAG."""

    def run(
        self, bindings: dict[str, Block], position_count: int, stats
    ) -> Block:
        raise NotImplementedError


class ConstantKernel(Kernel):
    def __init__(self, value: Any, presto_type: PrestoType) -> None:
        self.value = value
        self.type = presto_type

    def run(self, bindings, position_count, stats) -> Block:
        return constant_block(self.value, self.type, position_count)


class VariableKernel(Kernel):
    def __init__(self, name: str) -> None:
        self.name = name

    def run(self, bindings, position_count, stats) -> Block:
        block = bindings.get(self.name)
        if block is None:
            raise ExecutionError(f"unbound variable {self.name}")
        return block


class CallKernel(Kernel):
    """Null-aware vectorized function application.

    Runs the vectorized implementation over all lanes with null lanes
    sentinel-filled, then masks the result — no "any null ⇒ Python loop"
    bail-out.  The per-row loop remains only for non-primitive blocks and
    functions without a (type-compatible) vectorized implementation, and
    its positions are counted as interpreter fallback.
    """

    def __init__(
        self,
        fn: ScalarFunction,
        return_type: PrestoType,
        arg_kernels: list[Kernel],
    ) -> None:
        self.fn = fn
        self.return_type = return_type
        self.arg_kernels = arg_kernels
        self._target_dtype = _numpy_dtype_for(return_type)
        self._const_args = [
            k.value if isinstance(k, ConstantKernel) else None for k in arg_kernels
        ]

    def run(self, bindings, position_count, stats) -> Block:
        blocks = [
            _flat(k.run(bindings, position_count, stats)) for k in self.arg_kernels
        ]
        nulls = np.zeros(position_count, dtype=bool)
        for b in blocks:
            nulls = nulls | b.null_mask()
        if position_count and nulls.all():
            return constant_block(None, self.return_type, position_count)
        fn = self.fn
        if any(isinstance(b, VarcharBlock) for b in blocks):
            native = _varchar_native(
                fn.name,
                self.return_type,
                blocks,
                nulls,
                position_count,
                consts=self._const_args,
            )
            if native is not None:
                if stats is not None:
                    stats.expr_positions_vectorized += position_count
                return native
            # No offsets-native form: decode to the object oracle so the
            # ``vectorized_on_objects`` kernels still run whole-array.
            blocks = [
                b.to_primitive() if isinstance(b, VarcharBlock) else b
                for b in blocks
            ]
        vector_ok = (
            fn.vectorized is not None
            and all(isinstance(b, PrimitiveBlock) for b in blocks)
            and all(
                b.values.dtype != object or fn.vectorized_on_objects for b in blocks
            )
        )
        if vector_ok:
            any_nulls = bool(nulls.any())
            arrays = []
            for b in blocks:
                values = b.values
                if any_nulls:
                    values = values.copy()
                    values[nulls] = _sentinel_for(values, nulls)
                arrays.append(values)
            result = np.asarray(fn.vectorized(*arrays))
            if self._target_dtype is not object and result.dtype != self._target_dtype:
                result = result.astype(self._target_dtype)
            if stats is not None:
                stats.expr_positions_vectorized += position_count
            return PrimitiveBlock(
                self.return_type, result, nulls if any_nulls else None
            )
        if stats is not None:
            stats.expr_positions_fallback += position_count
        values_out: list[Any] = []
        for i in range(position_count):
            if nulls[i]:
                values_out.append(None)
            else:
                values_out.append(fn.row_fn(*[b.get(i) for b in blocks]))
        return block_from_values(self.return_type, values_out)


class LikeConstantKernel(Kernel):
    """``value LIKE 'pattern'`` with the anchored regex compiled once."""

    def __init__(self, value_kernel: Kernel, pattern: str) -> None:
        self.value_kernel = value_kernel
        self.pattern = pattern
        self.regex = like_regex(pattern)
        prefix, remainder = _like_literal_prefix(pattern)
        self.prefix_bytes = prefix.encode("utf-8")
        # remainder == "" means the pattern is a literal; "%" means a pure
        # prefix pattern — both skip the regex entirely on VarcharBlocks.
        self.remainder = remainder

    def run(self, bindings, position_count, stats) -> Block:
        block = _flat(self.value_kernel.run(bindings, position_count, stats))
        nulls = block.null_mask()
        match = self.regex.match
        if isinstance(block, VarcharBlock):
            # Prune by the literal prefix first (a byte-exact startswith);
            # only surviving rows are decoded for the regex, if any.
            candidates = block.prefix_mask(self.prefix_bytes) & ~nulls
            if self.remainder == "":
                values = candidates & (
                    block.byte_lengths() == len(self.prefix_bytes)
                )
            elif self.remainder == "%":
                values = candidates
            else:
                values = np.zeros(position_count, dtype=bool)
                survivors = np.flatnonzero(candidates)
                if len(survivors):
                    decoded = block.take(survivors).to_object_array()
                    values[survivors] = np.fromiter(
                        (match(v) is not None for v in decoded),
                        dtype=bool,
                        count=len(survivors),
                    )
            if stats is not None:
                stats.expr_positions_vectorized += position_count
            return PrimitiveBlock(
                BOOLEAN, values, nulls.copy() if nulls.any() else None
            )
        if isinstance(block, PrimitiveBlock):
            values = np.fromiter(
                (
                    isinstance(v, str) and match(v) is not None
                    for v in block.values
                ),
                dtype=bool,
                count=position_count,
            )
            if stats is not None:
                stats.expr_positions_vectorized += position_count
        else:
            values = np.fromiter(
                (
                    (not nulls[i])
                    and isinstance(block.get(i), str)
                    and match(block.get(i)) is not None
                    for i in range(position_count)
                ),
                dtype=bool,
                count=position_count,
            )
            if stats is not None:
                stats.expr_positions_fallback += position_count
        values = np.where(nulls, False, values)
        return PrimitiveBlock(BOOLEAN, values, nulls.copy() if nulls.any() else None)


class KleeneKernel(Kernel):
    """AND/OR under SQL three-valued logic, whole-array."""

    def __init__(self, arg_kernels: list[Kernel], is_and: bool) -> None:
        self.arg_kernels = arg_kernels
        self.is_and = is_and

    def run(self, bindings, position_count, stats) -> Block:
        is_and = self.is_and
        result = np.full(position_count, is_and, dtype=bool)
        result_nulls = np.zeros(position_count, dtype=bool)
        for kernel in self.arg_kernels:
            block = kernel.run(bindings, position_count, stats)
            values, nulls = bool_arrays(block)
            if is_and:
                # false wins over null; null wins over true
                result_nulls = (result_nulls & (values | nulls)) | (nulls & result)
                result = result & (values | nulls)
            else:
                result_nulls = (result_nulls & ~(values & ~nulls)) | (nulls & ~result)
                result = result | (values & ~nulls)
        result = result & ~result_nulls
        if stats is not None:
            stats.expr_positions_vectorized += position_count
        return PrimitiveBlock(
            BOOLEAN, result, result_nulls if result_nulls.any() else None
        )


class NotKernel(Kernel):
    def __init__(self, arg_kernel: Kernel) -> None:
        self.arg_kernel = arg_kernel

    def run(self, bindings, position_count, stats) -> Block:
        block = self.arg_kernel.run(bindings, position_count, stats)
        values, nulls = bool_arrays(block)
        if stats is not None:
            stats.expr_positions_vectorized += position_count
        return PrimitiveBlock(BOOLEAN, ~values, nulls if nulls.any() else None)


class IsNullKernel(Kernel):
    def __init__(self, arg_kernel: Kernel) -> None:
        self.arg_kernel = arg_kernel

    def run(self, bindings, position_count, stats) -> Block:
        block = self.arg_kernel.run(bindings, position_count, stats).loaded()
        if stats is not None:
            stats.expr_positions_vectorized += position_count
        return PrimitiveBlock(BOOLEAN, block.null_mask().copy())


class InConstantKernel(Kernel):
    """``value IN (constants...)`` via array membership."""

    def __init__(
        self, value_kernel: Kernel, in_list: list[Any], has_null_candidate: bool
    ) -> None:
        self.value_kernel = value_kernel
        self.in_list = in_list
        self.in_set = set(in_list)
        self.in_array = np.array(in_list) if in_list else np.array([], dtype=object)
        self.has_null_candidate = has_null_candidate

    def run(self, bindings, position_count, stats) -> Block:
        block = _flat(self.value_kernel.run(bindings, position_count, stats))
        nulls = block.null_mask().copy()
        if isinstance(block, PrimitiveBlock) and block.values.dtype != object:
            matches = np.isin(block.values, self.in_array)
        elif isinstance(block, VarcharBlock):
            matches = _varchar_in_small(block, self.in_list)
            if matches is None:
                # Larger lists: membership decided once per *distinct*
                # string, then gathered.
                codes, uniques = block.factorize()
                in_set = self.in_set
                table = np.zeros(len(uniques) + 1, dtype=bool)
                for code, unique in enumerate(uniques):
                    table[code] = unique in in_set
                matches = table[np.where(codes < 0, len(uniques), codes)]
        elif isinstance(block, PrimitiveBlock):
            in_set = self.in_set
            matches = np.fromiter(
                (
                    (not nulls[i]) and v in in_set
                    for i, v in enumerate(block.values)
                ),
                dtype=bool,
                count=position_count,
            )
        else:
            in_set = self.in_set
            matches = np.fromiter(
                (
                    (not nulls[i]) and block.get(i) in in_set
                    for i in range(position_count)
                ),
                dtype=bool,
                count=position_count,
            )
        if self.has_null_candidate:
            # value NOT IN (..., NULL) is null when no match
            nulls = nulls | (~matches)
        matches = matches & ~nulls
        if stats is not None:
            stats.expr_positions_vectorized += position_count
        return PrimitiveBlock(BOOLEAN, matches, nulls if nulls.any() else None)


class IfKernel(Kernel):
    def __init__(
        self,
        condition: Kernel,
        then_kernel: Kernel,
        else_kernel: Kernel,
        return_type: PrestoType,
    ) -> None:
        self.condition = condition
        self.then_kernel = then_kernel
        self.else_kernel = else_kernel
        self.return_type = return_type
        self._target_dtype = _numpy_dtype_for(return_type)

    def run(self, bindings, position_count, stats) -> Block:
        condition = self.condition.run(bindings, position_count, stats)
        cond_values, cond_nulls = bool_arrays(condition)
        take_then = cond_values & ~cond_nulls
        then_block = _flat(self.then_kernel.run(bindings, position_count, stats))
        else_block = _flat(self.else_kernel.run(bindings, position_count, stats))
        if isinstance(then_block, VarcharBlock):
            then_block = then_block.to_primitive()
        if isinstance(else_block, VarcharBlock):
            else_block = else_block.to_primitive()
        if isinstance(then_block, PrimitiveBlock) and isinstance(
            else_block, PrimitiveBlock
        ):
            then_values, else_values = then_block.values, else_block.values
            if self._target_dtype is object:
                if then_values.dtype != object:
                    then_values = then_values.astype(object)
                if else_values.dtype != object:
                    else_values = else_values.astype(object)
            values = np.where(take_then, then_values, else_values)
            if self._target_dtype is not object and values.dtype != self._target_dtype:
                values = values.astype(self._target_dtype)
            nulls = np.where(take_then, then_block.null_mask(), else_block.null_mask())
            if stats is not None:
                stats.expr_positions_vectorized += position_count
            return PrimitiveBlock(
                self.return_type, values, nulls if nulls.any() else None
            )
        if stats is not None:
            stats.expr_positions_fallback += position_count
        values_out = [
            then_block.get(i) if take_then[i] else else_block.get(i)
            for i in range(position_count)
        ]
        return block_from_values(self.return_type, values_out)


class CoalesceKernel(Kernel):
    def __init__(self, arg_kernels: list[Kernel], return_type: PrestoType) -> None:
        self.arg_kernels = arg_kernels
        self.return_type = return_type
        self._target_dtype = _numpy_dtype_for(return_type)

    def run(self, bindings, position_count, stats) -> Block:
        blocks = [
            _flat(k.run(bindings, position_count, stats)) for k in self.arg_kernels
        ]
        blocks = [
            b.to_primitive() if isinstance(b, VarcharBlock) else b for b in blocks
        ]
        if all(isinstance(b, PrimitiveBlock) for b in blocks):
            target = self._target_dtype
            values: Optional[np.ndarray] = None
            nulls: Optional[np.ndarray] = None
            for block in blocks:
                block_values = block.values
                if target is object and block_values.dtype != object:
                    block_values = block_values.astype(object)
                elif target is not object and block_values.dtype != target:
                    block_values = block_values.astype(target)
                block_nulls = block.null_mask()
                if values is None:
                    values = block_values.copy()
                    nulls = block_nulls.copy()
                else:
                    fill = nulls & ~block_nulls
                    values[fill] = block_values[fill]
                    nulls = nulls & block_nulls
            if stats is not None:
                stats.expr_positions_vectorized += position_count
            return PrimitiveBlock(
                self.return_type, values, nulls if nulls is not None and nulls.any() else None
            )
        if stats is not None:
            stats.expr_positions_fallback += position_count
        values_out: list[Any] = [None] * position_count
        remaining = np.ones(position_count, dtype=bool)
        for block in blocks:
            if not remaining.any():
                break
            block_nulls = block.null_mask()
            for i in np.nonzero(remaining)[0]:
                if not block_nulls[i]:
                    values_out[int(i)] = block.get(int(i))
                    remaining[i] = False
        return block_from_values(self.return_type, values_out)


class DereferenceKernel(Kernel):
    """Struct field access; O(1) on RowBlocks via the child block."""

    def __init__(
        self, base_kernel: Kernel, field_name: str, return_type: PrestoType
    ) -> None:
        self.base_kernel = base_kernel
        self.field_name = field_name
        self.return_type = return_type

    def run(self, bindings, position_count, stats) -> Block:
        base = self.base_kernel.run(bindings, position_count, stats).loaded()
        if isinstance(base, RowBlock):
            if base.has_field(self.field_name):
                field_block = base.field(self.field_name)
                return with_extra_nulls(field_block, base.null_mask())
            # Schema evolution: newly added field absent from old data → null.
            return constant_block(None, self.return_type, position_count)
        values = []
        for i in range(position_count):
            row_value = base.get(i)
            values.append(None if row_value is None else row_value.get(self.field_name))
        return block_from_values(self.return_type, values)


class DictionaryKernel(Kernel):
    """Evaluate a single-variable subtree on the dictionary, keep the ids.

    Only wrapped around null-propagating deterministic subtrees, so a null
    id (< 0) or a null dictionary entry stays null through the rewrap.
    """

    def __init__(self, variable_name: str, inner: Kernel) -> None:
        self.variable_name = variable_name
        self.inner = inner

    def run(self, bindings, position_count, stats) -> Block:
        block = bindings.get(self.variable_name)
        if block is not None:
            block = block.loaded()
        if isinstance(block, DictionaryBlock):
            dictionary = block.dictionary
            inner_block = self.inner.run(
                {self.variable_name: dictionary}, dictionary.position_count, stats
            )
            inner_block = _flat(inner_block)
            if isinstance(inner_block, (PrimitiveBlock, VarcharBlock)):
                if stats is not None:
                    stats.expr_positions_dictionary_saved += max(
                        0, position_count - dictionary.position_count
                    )
                return DictionaryBlock(inner_block, block.ids)
        return self.inner.run(bindings, position_count, stats)


class InterpreterKernel(Kernel):
    """Fallback: delegate an unsupported subtree to the interpreter oracle."""

    def __init__(self, expression: RowExpression, compiler: "ExpressionCompiler") -> None:
        self.expression = expression
        self._compiler = compiler

    def run(self, bindings, position_count, stats) -> Block:
        if stats is not None:
            stats.expr_positions_fallback += position_count
        return self._compiler.interpreter().evaluate_interpreted(
            self.expression, bindings, position_count
        )


# ---------------------------------------------------------------------------
# Compiled expression + compiler
# ---------------------------------------------------------------------------


class CompiledExpression:
    """A RowExpression compiled to a kernel DAG, reusable across pages."""

    def __init__(
        self,
        expression: RowExpression,
        kernel: Kernel,
        interpreter_nodes: int,
    ) -> None:
        self.expression = expression  # post-folding form
        self.kernel = kernel
        # Compile-time count of subtrees that delegate to the interpreter;
        # 0 means the whole DAG is kernel-evaluated (runtime row-loop
        # bail-outs for odd block shapes can still occur and are counted
        # in QueryStats.expr_positions_fallback).
        self.interpreter_nodes = interpreter_nodes

    def evaluate(
        self, bindings: dict[str, Block], position_count: int, stats=None
    ) -> Block:
        return self.kernel.run(bindings, position_count, stats)

    def constant_value(self) -> tuple[bool, Any]:
        """(is_constant, value) after folding."""
        if isinstance(self.kernel, ConstantKernel):
            return True, self.kernel.value
        return False, None

    def is_always_true(self) -> bool:
        constant, value = self.constant_value()
        return constant and value is True


class ExpressionCompiler:
    """Compiles RowExpressions for one FunctionRegistry."""

    def __init__(self, registry: FunctionRegistry, options: EvaluatorOptions) -> None:
        self._registry = registry
        self._options = options
        self._interpreter = None
        self._interpreter_nodes = 0

    def interpreter(self):
        """The row-at-a-time oracle used for folding and fallback kernels."""
        if self._interpreter is None:
            from repro.core.evaluator import Evaluator

            self._interpreter = Evaluator(
                self._registry, options=EvaluatorOptions(mode=INTERPRETED)
            )
        return self._interpreter

    def compile(self, expression: RowExpression) -> CompiledExpression:
        if self._options.constant_folding:
            expression = self.fold(expression)
        self._interpreter_nodes = 0
        kernel = self._compile(expression, self._options.dictionary_optimization)
        return CompiledExpression(expression, kernel, self._interpreter_nodes)

    # -- constant folding ---------------------------------------------------

    def fold(self, expression: RowExpression) -> RowExpression:
        """Evaluate literal-only subtrees once; prune trivial AND/OR terms."""
        if isinstance(
            expression,
            (ConstantExpression, VariableReferenceExpression, LambdaDefinitionExpression),
        ):
            return expression
        if isinstance(expression, CallExpression):
            arguments = tuple(self.fold(a) for a in expression.arguments)
            folded = CallExpression(
                expression.display_name,
                expression.function_handle,
                expression.type,
                arguments,
            )
            return self._fold_whole(folded)
        if isinstance(expression, SpecialFormExpression):
            arguments = tuple(self.fold(a) for a in expression.arguments)
            form = expression.form
            if form is SpecialForm.AND or form is SpecialForm.OR:
                is_and = form is SpecialForm.AND
                absorbing, identity = (False, True) if is_and else (True, False)
                kept: list[RowExpression] = []
                for argument in arguments:
                    if isinstance(argument, ConstantExpression):
                        if argument.value is identity:
                            continue  # `WHERE 1 = 1` conjuncts vanish here
                        if argument.value is absorbing:
                            return ConstantExpression(absorbing, expression.type)
                        # a NULL constant cannot be pruned under Kleene logic
                    kept.append(argument)
                if not kept:
                    return ConstantExpression(identity, expression.type)
                if len(kept) == 1 and kept[0].type == expression.type:
                    return kept[0]
                return SpecialFormExpression(form, expression.type, tuple(kept))
            if form is SpecialForm.IF and isinstance(arguments[0], ConstantExpression):
                if arguments[0].value is True:
                    return arguments[1]
                if len(arguments) > 2:
                    return arguments[2]
                return ConstantExpression(None, expression.type)
            if form is SpecialForm.COALESCE:
                kept = []
                for argument in arguments:
                    if isinstance(argument, ConstantExpression):
                        if argument.value is None:
                            continue
                        kept.append(argument)
                        break  # later arguments are unreachable
                    kept.append(argument)
                if not kept:
                    return ConstantExpression(None, expression.type)
                if len(kept) == 1 and kept[0].type == expression.type:
                    return kept[0]
                return SpecialFormExpression(form, expression.type, tuple(kept))
            folded = SpecialFormExpression(form, expression.type, arguments)
            return self._fold_whole(folded)
        return expression

    def _fold_whole(self, expression: RowExpression) -> RowExpression:
        """Replace a variable-free deterministic subtree with its value."""
        if not self._literal_only(expression):
            return expression
        try:
            value = self.interpreter().evaluate_scalar(expression)
        except Exception:
            # Errors (division by zero, bad casts) must surface at run
            # time with interpreter-identical behaviour; leave unfolded.
            return expression
        return ConstantExpression(value, expression.type)

    def _literal_only(self, expression: RowExpression) -> bool:
        for node in expression.walk():
            if isinstance(node, (VariableReferenceExpression, LambdaDefinitionExpression)):
                return False
            if isinstance(node, CallExpression):
                try:
                    fn = self._registry.implementation_for(node.function_handle)
                except Exception:
                    return False
                if not fn.deterministic:
                    return False
        return True

    # -- kernel construction ------------------------------------------------

    def _compile(self, expression: RowExpression, allow_dictionary: bool) -> Kernel:
        if isinstance(expression, ConstantExpression):
            return ConstantKernel(expression.value, expression.type)
        if isinstance(expression, VariableReferenceExpression):
            return VariableKernel(expression.name)
        if allow_dictionary and self._dictionary_candidate(expression):
            variables = expression.variables()
            inner = self._compile_node(expression, allow_dictionary=False)
            return DictionaryKernel(variables[0].name, inner)
        return self._compile_node(expression, allow_dictionary)

    def _compile_node(self, expression: RowExpression, allow_dictionary: bool) -> Kernel:
        if isinstance(expression, CallExpression):
            return self._compile_call(expression, allow_dictionary)
        if isinstance(expression, SpecialFormExpression):
            return self._compile_special(expression, allow_dictionary)
        if isinstance(expression, LambdaDefinitionExpression):
            raise ExecutionError("lambda must appear as a function argument")
        raise ExecutionError(f"cannot compile {type(expression).__name__}")

    def _compile_call(self, call: CallExpression, allow_dictionary: bool) -> Kernel:
        if any(isinstance(a, LambdaDefinitionExpression) for a in call.arguments):
            return self._interpreter_kernel(call)
        try:
            fn = self._registry.implementation_for(call.function_handle)
        except Exception:
            return self._interpreter_kernel(call)
        if (
            call.function_handle.name == "like"
            and len(call.arguments) == 2
            and isinstance(call.arguments[1], ConstantExpression)
            and isinstance(call.arguments[1].value, str)
        ):
            return LikeConstantKernel(
                self._compile(call.arguments[0], allow_dictionary),
                call.arguments[1].value,
            )
        return CallKernel(
            fn,
            call.type,
            [self._compile(a, allow_dictionary) for a in call.arguments],
        )

    def _compile_special(
        self, expression: SpecialFormExpression, allow_dictionary: bool
    ) -> Kernel:
        form = expression.form
        arguments = expression.arguments
        compile_ = lambda e: self._compile(e, allow_dictionary)  # noqa: E731
        if form is SpecialForm.AND:
            return KleeneKernel([compile_(a) for a in arguments], is_and=True)
        if form is SpecialForm.OR:
            return KleeneKernel([compile_(a) for a in arguments], is_and=False)
        if form is SpecialForm.NOT:
            return NotKernel(compile_(arguments[0]))
        if form is SpecialForm.IS_NULL:
            return IsNullKernel(compile_(arguments[0]))
        if form is SpecialForm.IN:
            candidates = arguments[1:]
            if all(isinstance(c, ConstantExpression) for c in candidates):
                in_list = [c.value for c in candidates if c.value is not None]
                try:
                    return InConstantKernel(
                        compile_(arguments[0]),
                        in_list,
                        has_null_candidate=any(c.value is None for c in candidates),
                    )
                except TypeError:
                    pass  # unhashable candidate values: leave to the oracle
            return self._interpreter_kernel(expression)
        if form is SpecialForm.IF:
            else_kernel: Kernel
            if len(arguments) > 2:
                else_kernel = compile_(arguments[2])
            else:
                else_kernel = ConstantKernel(None, expression.type)
            return IfKernel(
                compile_(arguments[0]),
                compile_(arguments[1]),
                else_kernel,
                expression.type,
            )
        if form is SpecialForm.COALESCE:
            return CoalesceKernel([compile_(a) for a in arguments], expression.type)
        if form is SpecialForm.DEREFERENCE:
            if isinstance(arguments[1], ConstantExpression):
                return DereferenceKernel(
                    compile_(arguments[0]), arguments[1].value, expression.type
                )
            return self._interpreter_kernel(expression)
        return self._interpreter_kernel(expression)

    def _interpreter_kernel(self, expression: RowExpression) -> Kernel:
        self._interpreter_nodes += 1
        return InterpreterKernel(expression, self)

    # -- dictionary candidates ----------------------------------------------

    def _dictionary_candidate(self, expression: RowExpression) -> bool:
        if len(expression.variables()) != 1:
            return False
        safe, has_work = self._dictionary_safe(expression)
        return safe and has_work

    def _dictionary_safe(self, expression: RowExpression) -> tuple[bool, bool]:
        """(safe, has_work): safe ⇔ deterministic and null-propagating."""
        if isinstance(expression, VariableReferenceExpression):
            return True, False
        if isinstance(expression, ConstantExpression):
            return expression.value is not None, False
        if isinstance(expression, CallExpression):
            if any(isinstance(a, LambdaDefinitionExpression) for a in expression.arguments):
                return False, False
            try:
                fn = self._registry.implementation_for(expression.function_handle)
            except Exception:
                return False, False
            if not fn.deterministic:
                return False, False
            for argument in expression.arguments:
                safe, _ = self._dictionary_safe(argument)
                if not safe:
                    return False, False
            return True, True
        if isinstance(expression, SpecialFormExpression):
            if expression.form is SpecialForm.NOT:
                safe, has_work = self._dictionary_safe(expression.arguments[0])
                return safe, has_work
            if expression.form is SpecialForm.IN and all(
                isinstance(c, ConstantExpression) for c in expression.arguments[1:]
            ):
                safe, _ = self._dictionary_safe(expression.arguments[0])
                return safe, True
            # IS_NULL / COALESCE / IF / AND / OR map null inputs to non-null
            # outputs and must see the real per-position null mask.
            return False, False
        return False, False


# ---------------------------------------------------------------------------
# Process-wide compile cache (per registry, keyed on canonical form)
# ---------------------------------------------------------------------------


_SHARED_CACHE: "weakref.WeakKeyDictionary[FunctionRegistry, OrderedDict]" = (
    weakref.WeakKeyDictionary()
)


def canonical_form(expression: RowExpression) -> str:
    """Stable serialization used as the compile-cache key."""
    return json.dumps(
        expression.to_dict(), sort_keys=True, separators=(",", ":"), default=repr
    )


def compile_cached(
    registry: FunctionRegistry,
    options: EvaluatorOptions,
    expression: RowExpression,
) -> CompiledExpression:
    """Compile ``expression`` once per canonical form and registry."""
    cache = _SHARED_CACHE.get(registry)
    if cache is None:
        cache = OrderedDict()
        _SHARED_CACHE[registry] = cache
    key = (
        canonical_form(expression),
        options.constant_folding,
        options.dictionary_optimization,
    )
    compiled = cache.get(key)
    if compiled is not None:
        cache.move_to_end(key)
        return compiled
    compiled = ExpressionCompiler(registry, options).compile(expression)
    cache[key] = compiled
    while len(cache) > max(options.cache_size, 1):
        cache.popitem(last=False)
    return compiled
