"""RowExpression: the self-contained expression representation of Table I.

Section IV.B: "We replaced Presto's old Abstract Syntax Tree (AST) based
expression representation with a new representation called RowExpression.
RowExpression is completely self-contained and can be shared across multiple
systems."

The five subtypes reproduce the paper's Table I exactly:

===========================  ==============================================
ExpressionType               Represents
===========================  ==============================================
ConstantExpression           Literal values such as (1, BIGINT)
VariableReferenceExpression  Reference to an input column / previous output
CallExpression               Function calls: arithmetic, casts, UDFs
SpecialFormExpression        Built-ins: IN, IF, IS_NULL, AND, OR, NOT,
                             COALESCE, DEREFERENCE
LambdaDefinitionExpression   Anonymous lambda functions
===========================  ==============================================

Every expression serializes to/from plain dicts (JSON-compatible) so it can
cross the connector boundary; ``CallExpression`` carries a resolved
:class:`~repro.core.functions.FunctionHandle`, which is what lets a
connector consistently re-resolve the function on its side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

from repro.core.functions import FunctionHandle
from repro.core.types import PrestoType, parse_type


class RowExpression:
    """Base class; every expression knows its result type."""

    type: PrestoType

    def to_dict(self) -> dict:
        raise NotImplementedError

    def children(self) -> Sequence["RowExpression"]:
        return ()

    def walk(self) -> Iterator["RowExpression"]:
        """Yield self and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def variables(self) -> list["VariableReferenceExpression"]:
        """All column references in this tree, in first-appearance order."""
        seen: dict[str, VariableReferenceExpression] = {}
        for node in self.walk():
            if isinstance(node, VariableReferenceExpression) and node.name not in seen:
                seen[node.name] = node
        return list(seen.values())

    def __repr__(self) -> str:
        return self.display()

    def display(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantExpression(RowExpression):
    """A literal value with its type, e.g. ``(1, BIGINT)``."""

    value: Any
    type: PrestoType

    def to_dict(self) -> dict:
        return {
            "@type": "constant",
            "value": self.value,
            "type": self.type.display(),
        }

    def display(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __hash__(self) -> int:
        value = self.value
        if isinstance(value, (list, dict)):
            value = repr(value)
        return hash(("constant", value, self.type))


@dataclass(frozen=True)
class VariableReferenceExpression(RowExpression):
    """A reference to an input column or an upstream relation's output."""

    name: str
    type: PrestoType

    def to_dict(self) -> dict:
        return {"@type": "variable", "name": self.name, "type": self.type.display()}

    def display(self) -> str:
        return self.name


@dataclass(frozen=True)
class CallExpression(RowExpression):
    """A function call with a resolved, serializable FunctionHandle."""

    display_name: str
    function_handle: FunctionHandle
    type: PrestoType
    arguments: tuple[RowExpression, ...]

    def children(self) -> Sequence[RowExpression]:
        return self.arguments

    def to_dict(self) -> dict:
        return {
            "@type": "call",
            "displayName": self.display_name,
            "functionHandle": self.function_handle.to_dict(),
            "type": self.type.display(),
            "arguments": [a.to_dict() for a in self.arguments],
        }

    def display(self) -> str:
        infix = {
            "equal": "=",
            "not_equal": "<>",
            "less_than": "<",
            "less_than_or_equal": "<=",
            "greater_than": ">",
            "greater_than_or_equal": ">=",
            "add": "+",
            "subtract": "-",
            "multiply": "*",
            "divide": "/",
            "modulus": "%",
        }
        name = self.function_handle.name
        if name in infix and len(self.arguments) == 2:
            return f"({self.arguments[0].display()} {infix[name]} {self.arguments[1].display()})"
        args = ", ".join(a.display() for a in self.arguments)
        return f"{self.display_name}({args})"


class SpecialForm(enum.Enum):
    """Built-in forms with non-function evaluation semantics."""

    AND = "AND"
    OR = "OR"
    NOT = "NOT"
    IN = "IN"
    IF = "IF"
    IS_NULL = "IS_NULL"
    COALESCE = "COALESCE"
    DEREFERENCE = "DEREFERENCE"


@dataclass(frozen=True)
class SpecialFormExpression(RowExpression):
    """Special built-in calls: IN, IF, IS_NULL, AND, DEREFERENCE, ...

    ``DEREFERENCE(struct_expr, ConstantExpression(field_name))`` is the form
    behind nested field access like ``base.city_id``.
    """

    form: SpecialForm
    type: PrestoType
    arguments: tuple[RowExpression, ...]

    def children(self) -> Sequence[RowExpression]:
        return self.arguments

    def to_dict(self) -> dict:
        return {
            "@type": "special",
            "form": self.form.value,
            "type": self.type.display(),
            "arguments": [a.to_dict() for a in self.arguments],
        }

    def display(self) -> str:
        if self.form is SpecialForm.DEREFERENCE:
            return f"{self.arguments[0].display()}.{self.arguments[1].value}"
        if self.form is SpecialForm.AND:
            return "(" + " AND ".join(a.display() for a in self.arguments) + ")"
        if self.form is SpecialForm.OR:
            return "(" + " OR ".join(a.display() for a in self.arguments) + ")"
        if self.form is SpecialForm.NOT:
            return f"(NOT {self.arguments[0].display()})"
        if self.form is SpecialForm.IS_NULL:
            return f"({self.arguments[0].display()} IS NULL)"
        if self.form is SpecialForm.IN:
            values = ", ".join(a.display() for a in self.arguments[1:])
            return f"({self.arguments[0].display()} IN ({values}))"
        args = ", ".join(a.display() for a in self.arguments)
        return f"{self.form.value}({args})"


@dataclass(frozen=True)
class LambdaDefinitionExpression(RowExpression):
    """An anonymous function, e.g. ``(x, y) -> x + y``."""

    argument_names: tuple[str, ...]
    argument_types: tuple[PrestoType, ...]
    body: RowExpression
    type: PrestoType  # the lambda's return type

    def children(self) -> Sequence[RowExpression]:
        return (self.body,)

    def to_dict(self) -> dict:
        return {
            "@type": "lambda",
            "argumentNames": list(self.argument_names),
            "argumentTypes": [t.display() for t in self.argument_types],
            "body": self.body.to_dict(),
            "type": self.type.display(),
        }

    def display(self) -> str:
        args = ", ".join(self.argument_names)
        return f"({args}) -> {self.body.display()}"


def expression_from_dict(data: dict) -> RowExpression:
    """Deserialize any RowExpression.  Inverse of ``to_dict``.

    This is the entry point connectors use to reconstitute pushed-down
    expressions — the "completely self-contained" property of Table I.
    """
    kind = data["@type"]
    if kind == "constant":
        return ConstantExpression(data["value"], parse_type(data["type"]))
    if kind == "variable":
        return VariableReferenceExpression(data["name"], parse_type(data["type"]))
    if kind == "call":
        return CallExpression(
            data["displayName"],
            FunctionHandle.from_dict(data["functionHandle"]),
            parse_type(data["type"]),
            tuple(expression_from_dict(a) for a in data["arguments"]),
        )
    if kind == "special":
        return SpecialFormExpression(
            SpecialForm(data["form"]),
            parse_type(data["type"]),
            tuple(expression_from_dict(a) for a in data["arguments"]),
        )
    if kind == "lambda":
        return LambdaDefinitionExpression(
            tuple(data["argumentNames"]),
            tuple(parse_type(t) for t in data["argumentTypes"]),
            expression_from_dict(data["body"]),
            parse_type(data["type"]),
        )
    raise ValueError(f"unknown RowExpression kind {kind!r}")


# -- convenience constructors used across the planner ----------------------


def constant(value: Any, presto_type: PrestoType) -> ConstantExpression:
    return ConstantExpression(value, presto_type)


def variable(name: str, presto_type: PrestoType) -> VariableReferenceExpression:
    return VariableReferenceExpression(name, presto_type)


def and_(*terms: RowExpression) -> RowExpression:
    from repro.core.types import BOOLEAN

    flattened: list[RowExpression] = []
    for term in terms:
        if isinstance(term, SpecialFormExpression) and term.form is SpecialForm.AND:
            flattened.extend(term.arguments)
        else:
            flattened.append(term)
    if len(flattened) == 1:
        return flattened[0]
    return SpecialFormExpression(SpecialForm.AND, BOOLEAN, tuple(flattened))


def or_(*terms: RowExpression) -> RowExpression:
    from repro.core.types import BOOLEAN

    if len(terms) == 1:
        return terms[0]
    return SpecialFormExpression(SpecialForm.OR, BOOLEAN, tuple(terms))


def not_(term: RowExpression) -> RowExpression:
    from repro.core.types import BOOLEAN

    return SpecialFormExpression(SpecialForm.NOT, BOOLEAN, (term,))


def dereference(base: RowExpression, field_name: str, field_type: PrestoType) -> RowExpression:
    from repro.core.types import VARCHAR

    return SpecialFormExpression(
        SpecialForm.DEREFERENCE,
        field_type,
        (base, ConstantExpression(field_name, VARCHAR)),
    )


def conjuncts(expression: Optional[RowExpression]) -> list[RowExpression]:
    """Split a predicate into its top-level AND terms."""
    if expression is None:
        return []
    if isinstance(expression, SpecialFormExpression) and expression.form is SpecialForm.AND:
        result: list[RowExpression] = []
        for arg in expression.arguments:
            result.extend(conjuncts(arg))
        return result
    return [expression]


def combine_conjuncts(terms: Sequence[RowExpression]) -> Optional[RowExpression]:
    """Rebuild a predicate from AND terms; ``None`` when empty."""
    terms = list(terms)
    if not terms:
        return None
    return and_(*terms)


def substitute(
    expression: RowExpression, mapping: dict[str, RowExpression]
) -> RowExpression:
    """Replace variable references by name according to ``mapping``.

    Used by the optimizer to push predicates through projections and to
    rewrite plan expressions in terms of connector column names.
    """
    if isinstance(expression, VariableReferenceExpression):
        return mapping.get(expression.name, expression)
    if isinstance(expression, ConstantExpression):
        return expression
    if isinstance(expression, CallExpression):
        return CallExpression(
            expression.display_name,
            expression.function_handle,
            expression.type,
            tuple(substitute(a, mapping) for a in expression.arguments),
        )
    if isinstance(expression, SpecialFormExpression):
        return SpecialFormExpression(
            expression.form,
            expression.type,
            tuple(substitute(a, mapping) for a in expression.arguments),
        )
    if isinstance(expression, LambdaDefinitionExpression):
        inner = {
            k: v for k, v in mapping.items() if k not in expression.argument_names
        }
        return LambdaDefinitionExpression(
            expression.argument_names,
            expression.argument_types,
            substitute(expression.body, inner),
            expression.type,
        )
    return expression
