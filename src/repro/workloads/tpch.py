"""TPC-H LINEITEM generator and the writer benchmark datasets.

Figures 18-20 measure writer throughput on "a list of pages with millions
of rows" across twelve datasets: all LINEITEM columns, sequential and
random bigints, small/large/dictionary varchars, four map variants, and an
array-of-varchar column.  All generation is seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.core.page import Page
from repro.core.types import (
    ArrayType,
    BIGINT,
    DOUBLE,
    MapType,
    PrestoType,
    VARCHAR,
)
from repro.formats.parquet.schema import ParquetSchema

LINEITEM_COLUMNS: list[tuple[str, PrestoType]] = [
    ("orderkey", BIGINT),
    ("partkey", BIGINT),
    ("suppkey", BIGINT),
    ("linenumber", BIGINT),
    ("quantity", DOUBLE),
    ("extendedprice", DOUBLE),
    ("discount", DOUBLE),
    ("tax", DOUBLE),
    ("returnflag", VARCHAR),
    ("linestatus", VARCHAR),
    ("shipdate", VARCHAR),
    ("commitdate", VARCHAR),
    ("receiptdate", VARCHAR),
    ("shipinstruct", VARCHAR),
    ("shipmode", VARCHAR),
    ("comment", VARCHAR),
]

_RETURN_FLAGS = ["R", "A", "N"]
_LINE_STATUS = ["O", "F"]
_SHIP_INSTRUCT = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]
_SHIP_MODES = ["TRUCK", "MAIL", "SHIP", "AIR", "RAIL", "REG AIR", "FOB"]
_COMMENT_WORDS = (
    "carefully final deposits boost quickly regular packages haggle furiously "
    "ironic accounts sleep blithely express requests nag slyly"
).split()


def _date(rng: np.random.Generator) -> str:
    year = int(rng.integers(1992, 1999))
    month = int(rng.integers(1, 13))
    day = int(rng.integers(1, 29))
    return f"{year:04d}-{month:02d}-{day:02d}"


def generate_lineitem(rows: int, seed: int = 7) -> list[tuple]:
    """Deterministic LINEITEM-shaped rows."""
    rng = np.random.default_rng(seed)
    result = []
    for i in range(rows):
        quantity = float(rng.integers(1, 51))
        price = round(float(rng.uniform(900, 105000)), 2)
        comment_len = int(rng.integers(2, 7))
        comment = " ".join(
            _COMMENT_WORDS[int(k)]
            for k in rng.integers(0, len(_COMMENT_WORDS), comment_len)
        )
        result.append(
            (
                i // 4 + 1,
                int(rng.integers(1, 200_001)),
                int(rng.integers(1, 10_001)),
                i % 7 + 1,
                quantity,
                price,
                round(float(rng.uniform(0.0, 0.1)), 2),
                round(float(rng.uniform(0.0, 0.08)), 2),
                _RETURN_FLAGS[int(rng.integers(0, 3))],
                _LINE_STATUS[int(rng.integers(0, 2))],
                _date(rng),
                _date(rng),
                _date(rng),
                _SHIP_INSTRUCT[int(rng.integers(0, 4))],
                _SHIP_MODES[int(rng.integers(0, 7))],
                comment,
            )
        )
    return result


def lineitem_page(rows: int, seed: int = 7) -> Page:
    return Page.from_rows(
        [t for _, t in LINEITEM_COLUMNS], generate_lineitem(rows, seed)
    )


def _random_string(rng: np.random.Generator, length: int) -> str:
    letters = "abcdefghijklmnopqrstuvwxyz"
    return "".join(letters[int(i)] for i in rng.integers(0, 26, length))


def _builders() -> list[tuple[str, list[tuple[str, PrestoType]], object]]:
    """(name, columns, builder(rng, rows) -> column value lists)."""

    def lineitem(rng, rows):
        return [list(column) for column in zip(*generate_lineitem(rows, int(rng.integers(1, 2**31))))]

    def bigint_sequential(rng, rows):
        return [list(range(rows))]

    def bigint_random(rng, rows):
        return [[int(v) for v in rng.integers(0, 2**62, rows)]]

    def small_varchar(rng, rows):
        return [[_random_string(rng, 8) for _ in range(rows)]]

    def large_varchar(rng, rows):
        return [[_random_string(rng, 200) for _ in range(rows)]]

    def varchar_dictionary(rng, rows):
        values = [_random_string(rng, 12) for _ in range(16)]
        return [[values[int(i)] for i in rng.integers(0, 16, rows)]]

    def map_varchar_double(rng, rows):
        return [[{_random_string(rng, 6): float(rng.uniform()) for _ in range(3)} for _ in range(rows)]]

    def large_map_varchar_double(rng, rows):
        return [[{_random_string(rng, 6): float(rng.uniform()) for _ in range(20)} for _ in range(rows)]]

    def map_int_double(rng, rows):
        return [[{int(k): float(rng.uniform()) for k in rng.integers(0, 1000, 3)} for _ in range(rows)]]

    def large_map_int_double(rng, rows):
        return [[{int(k): float(rng.uniform()) for k in rng.integers(0, 10_000, 20)} for _ in range(rows)]]

    def array_varchar(rng, rows):
        return [[[_random_string(rng, 10) for _ in range(int(rng.integers(0, 6)))] for _ in range(rows)]]

    v = "v"
    return [
        ("All Lineitem columns", LINEITEM_COLUMNS, lineitem),
        ("Bigint Sequential", [(v, BIGINT)], bigint_sequential),
        ("Bigint Random", [(v, BIGINT)], bigint_random),
        ("Small Varchar", [(v, VARCHAR)], small_varchar),
        ("Large Varchar", [(v, VARCHAR)], large_varchar),
        ("Varchar Dictionary", [(v, VARCHAR)], varchar_dictionary),
        ("Map Varchar To Double", [(v, MapType(VARCHAR, DOUBLE))], map_varchar_double),
        ("Large Map Varchar To Double", [(v, MapType(VARCHAR, DOUBLE))], large_map_varchar_double),
        ("Map Int To Double", [(v, MapType(BIGINT, DOUBLE))], map_int_double),
        ("Large Map Int To Double", [(v, MapType(BIGINT, DOUBLE))], large_map_int_double),
        ("Array Varchar", [(v, ArrayType(VARCHAR))], array_varchar),
    ]


WRITER_DATASET_NAMES = [name for name, _, _ in _builders()]


def writer_benchmark_dataset(name: str, rows: int, seed: int = 11):
    """Build one figure 18-20 dataset: (name, ParquetSchema, Page)."""
    for candidate, columns, builder in _builders():
        if candidate == name:
            rng = np.random.default_rng(seed)
            values = builder(rng, rows)
            page = Page.from_columns([t for _, t in columns], values)
            return name, ParquetSchema(columns), page
    raise KeyError(f"unknown writer benchmark dataset {name!r}")


def writer_benchmark_datasets(rows: int, seed: int = 11):
    """All figure 18-20 datasets at a uniform row count."""
    return [
        writer_benchmark_dataset(name, rows, seed) for name in WRITER_DATASET_NAMES
    ]
