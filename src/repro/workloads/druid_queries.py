"""The figure 16 Druid workload.

"20 druid production queries are used in the experiment.  14 of them have
predicates, 5 of them have limits, and 12 of them are aggregation
queries."  This module builds a synthetic datasource plus exactly that mix,
with each query in two equivalent forms: SQL (executed through the
Presto-Druid connector) and a native query (executed directly on the
simulated Druid cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.connectors.realtime.druid import DruidCluster
from repro.connectors.realtime.store import NativeQuery
from repro.connectors.spi import AggregationFunction
from repro.core.expressions import (
    CallExpression,
    RowExpression,
    SpecialForm,
    SpecialFormExpression,
    and_,
    constant,
    variable,
)
from repro.core.functions import default_registry
from repro.core.types import BIGINT, DOUBLE, VARCHAR

DATASOURCE = "events"

COLUMNS = [
    ("ts", BIGINT),
    ("city", VARCHAR),
    ("product", VARCHAR),
    ("status", VARCHAR),
    ("value", DOUBLE),
    ("clicks", BIGINT),
]

_CITIES = [f"city{i}" for i in range(12)]
_PRODUCTS = ["rides", "eats", "freight", "ads"]
_STATUSES = ["ok", "error", "timeout"]


@dataclass(frozen=True)
class Fig16Query:
    """One workload query in both execution forms."""

    query_id: str
    sql: str
    native: NativeQuery
    has_predicate: bool
    has_limit: bool
    is_aggregation: bool


@dataclass
class DruidWorkload:
    cluster: DruidCluster
    queries: list[Fig16Query]


def _scalar(name: str, column: str, column_type, value) -> CallExpression:
    handle, _ = default_registry().resolve_scalar(name, [column_type, column_type])
    return CallExpression(
        name,
        handle,
        handle.resolved_return_type(),
        (variable(column, column_type), constant(value, column_type)),
    )


def _in(column: str, column_type, values) -> SpecialFormExpression:
    from repro.core.types import BOOLEAN

    return SpecialFormExpression(
        SpecialForm.IN,
        BOOLEAN,
        tuple([variable(column, column_type)] + [constant(v, column_type) for v in values]),
    )


def _agg(name: str, inputs: tuple, input_types, output: str) -> dict:
    handle, _ = default_registry().resolve_aggregate(name, list(input_types))
    return AggregationFunction(handle, inputs, output).to_dict()


def build_druid_workload(
    segments: int = 20,
    rows_per_segment: int = 20_000,
    nodes: int = 100,
    clock=None,
    seed: int = 41,
) -> DruidWorkload:
    """Load the datasource and build the 20-query mix."""
    cluster = DruidCluster(nodes=nodes, clock=clock)
    cluster.create_datasource(DATASOURCE, COLUMNS)
    rng = np.random.default_rng(seed)
    for s in range(segments):
        rows = []
        for i in range(rows_per_segment):
            rows.append(
                (
                    s * rows_per_segment + i,
                    _CITIES[int(rng.integers(0, len(_CITIES)))],
                    _PRODUCTS[int(rng.integers(0, len(_PRODUCTS)))],
                    _STATUSES[int(rng.choice(3, p=[0.9, 0.07, 0.03]))],
                    round(float(rng.gamma(2.0, 10.0)), 3),
                    int(rng.integers(0, 100)),
                )
            )
        cluster.add_segment(DATASOURCE, rows)

    queries = _build_queries()
    assert len(queries) == 20
    assert sum(q.has_predicate for q in queries) == 14
    assert sum(q.has_limit for q in queries) == 5
    assert sum(q.is_aggregation for q in queries) == 12
    return DruidWorkload(cluster, queries)


def _build_queries() -> list[Fig16Query]:
    queries: list[Fig16Query] = []

    def agg_query(
        index: int,
        group: str,
        aggregations: list[tuple[str, str, Optional[str]]],
        predicate_sql: Optional[str],
        predicate: Optional[RowExpression],
    ) -> None:
        select_aggs = []
        native_aggs = []
        column_types = dict(COLUMNS)
        for name, column, alias in aggregations:
            if column:
                select_aggs.append(f"{name}({column}) AS {alias}")
                native_aggs.append(
                    _agg(name, (column,), (column_types[column],), alias)
                )
            else:
                select_aggs.append(f"count(*) AS {alias}")
                native_aggs.append(_agg("count", (), (), alias))
        where = f" WHERE {predicate_sql}" if predicate_sql else ""
        sql = (
            f"SELECT {group}, {', '.join(select_aggs)} FROM {DATASOURCE}"
            f"{where} GROUP BY {group}"
        )
        native = NativeQuery(
            DATASOURCE,
            grouping=(group,),
            aggregations=tuple(native_aggs),
            filter=predicate.to_dict() if predicate is not None else None,
        )
        queries.append(
            Fig16Query(
                f"Q{index}", sql, native, predicate is not None, False, True
            )
        )

    # -- 12 aggregation queries, 8 with predicates --------------------------
    agg_query(1, "city", [("count", "", "cnt")], None, None)
    agg_query(2, "product", [("sum", "value", "total")], None, None)
    agg_query(
        3, "city", [("count", "", "cnt")],
        "status = 'error'", _scalar("equal", "status", VARCHAR, "error"),
    )
    agg_query(
        4, "product", [("sum", "clicks", "clicks")],
        "status = 'ok'", _scalar("equal", "status", VARCHAR, "ok"),
    )
    agg_query(5, "city", [("max", "value", "peak")], None, None)
    agg_query(
        6, "status", [("count", "", "cnt"), ("sum", "value", "total")],
        "city IN ('city1', 'city2')", _in("city", VARCHAR, ["city1", "city2"]),
    )
    agg_query(7, "product", [("min", "value", "low"), ("max", "value", "high")], None, None)
    agg_query(
        8, "city", [("sum", "value", "total")],
        "product IN ('eats', 'ads')", _in("product", VARCHAR, ["eats", "ads"]),
    )
    agg_query(
        9, "city", [("count", "", "cnt")],
        "status = 'timeout'", _scalar("equal", "status", VARCHAR, "timeout"),
    )
    agg_query(
        10, "product", [("count", "", "cnt")],
        "city = 'city7'", _scalar("equal", "city", VARCHAR, "city7"),
    )
    agg_query(
        11, "status", [("sum", "clicks", "clicks")],
        "city IN ('city0', 'city3', 'city5')",
        _in("city", VARCHAR, ["city0", "city3", "city5"]),
    )
    agg_query(
        12, "city", [("max", "clicks", "peak")],
        "product = 'freight'", _scalar("equal", "product", VARCHAR, "freight"),
    )

    # -- 5 limit queries, 3 with predicates ---------------------------------
    def limit_query(index, columns, limit, predicate_sql, predicate):
        where = f" WHERE {predicate_sql}" if predicate_sql else ""
        sql = f"SELECT {', '.join(columns)} FROM {DATASOURCE}{where} LIMIT {limit}"
        native = NativeQuery(
            DATASOURCE,
            columns=tuple(columns),
            filter=predicate.to_dict() if predicate is not None else None,
            limit=limit,
        )
        queries.append(
            Fig16Query(f"Q{index}", sql, native, predicate is not None, True, False)
        )

    limit_query(13, ["city", "value"], 100, None, None)
    limit_query(
        14, ["ts", "value"], 50,
        "status = 'error'", _scalar("equal", "status", VARCHAR, "error"),
    )
    limit_query(15, ["product", "clicks"], 200, None, None)
    limit_query(
        16, ["city", "status"], 20,
        "product = 'ads'", _scalar("equal", "product", VARCHAR, "ads"),
    )
    limit_query(
        17, ["ts", "city"], 10,
        "city = 'city4'", _scalar("equal", "city", VARCHAR, "city4"),
    )

    # -- 3 filtered scans (predicates, no limit, no aggregation) -------------
    def scan_query(index, columns, predicate_sql, predicate):
        sql = f"SELECT {', '.join(columns)} FROM {DATASOURCE} WHERE {predicate_sql}"
        native = NativeQuery(
            DATASOURCE, columns=tuple(columns), filter=predicate.to_dict()
        )
        queries.append(Fig16Query(f"Q{index}", sql, native, True, False, False))

    scan_query(
        18, ["ts", "value"],
        "status = 'timeout'", _scalar("equal", "status", VARCHAR, "timeout"),
    )
    scan_query(
        19, ["city", "value"],
        "product = 'freight' AND status = 'error'",
        and_(
            _scalar("equal", "product", VARCHAR, "freight"),
            _scalar("equal", "status", VARCHAR, "error"),
        ),
    )
    scan_query(
        20, ["ts", "clicks"],
        "city IN ('city9', 'city10')", _in("city", VARCHAR, ["city9", "city10"]),
    )
    return queries
