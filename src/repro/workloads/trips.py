"""Uber-style nested trips data (sections II.A, V).

Production shape: "users define one high level column with struct type.
The struct consists of 20 or sometimes up to 50 fields.  Each field could
be another struct, which has subfields inside.  It is not uncommon to see
more than 5 levels of nesting."  The ``base`` struct here has 20 fields
with 5 levels of nesting, partitioned by ``datestr`` like
``rawdata.schemaless_mezzanine_trips_rows``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.page import Page
from repro.core.types import (
    ArrayType,
    BIGINT,
    BOOLEAN,
    DOUBLE,
    PrestoType,
    RowType,
    VARCHAR,
)
from repro.connectors.hive.writer import write_hive_partition
from repro.metastore.metastore import HiveMetastore
from repro.storage.filesystem import FileSystem

# Level 5: deep-nested geo accuracy detail.
_GPS_META = RowType.of(("provider", VARCHAR), ("accuracy_m", DOUBLE))
# Level 4: address detail.
_ADDRESS = RowType.of(
    ("street", VARCHAR), ("city", VARCHAR), ("zip", VARCHAR), ("gps", _GPS_META)
)
# Level 3: a location.
_LOCATION = RowType.of(("lat", DOUBLE), ("lng", DOUBLE), ("address", _ADDRESS))
# Level 3: fare breakdown.
_FARE_BREAKDOWN = RowType.of(
    ("base_amount", DOUBLE), ("surge", DOUBLE), ("tolls", DOUBLE), ("tip", DOUBLE)
)
# Level 2: fare.
_FARE = RowType.of(
    ("amount", DOUBLE), ("currency", VARCHAR), ("breakdown", _FARE_BREAKDOWN)
)

# The high-level struct: 20 top fields, ≥5 levels of nesting in places.
TRIPS_BASE_TYPE = RowType.of(
    ("driver_uuid", VARCHAR),
    ("client_uuid", VARCHAR),
    ("city_id", BIGINT),
    ("vehicle_id", BIGINT),
    ("status", VARCHAR),
    ("product", VARCHAR),
    ("fare", _FARE),
    ("pickup", _LOCATION),
    ("dropoff", _LOCATION),
    ("rating", DOUBLE),
    ("eta_seconds", BIGINT),
    ("distance_km", DOUBLE),
    ("duration_seconds", BIGINT),
    ("is_pool", BOOLEAN),
    ("surge_multiplier", DOUBLE),
    ("payment_method", VARCHAR),
    ("promo_code", VARCHAR),
    ("tags", ArrayType(VARCHAR)),
    ("request_uuid", VARCHAR),
    ("session_uuid", VARCHAR),
)

TRIPS_COLUMNS: list[tuple[str, PrestoType]] = [
    ("base", TRIPS_BASE_TYPE),
    ("fare_usd", DOUBLE),
    ("completed", BOOLEAN),
]

TRIPS_PARTITION_KEYS: list[tuple[str, PrestoType]] = [("datestr", VARCHAR)]

_STATUSES = ["completed", "canceled", "driver_canceled", "fraud"]
_PRODUCTS = ["uberx", "pool", "black", "eats"]
_PAYMENTS = ["card", "cash", "wallet"]
_CITIES = ["San Francisco", "New York", "Chicago", "Delhi", "Nairobi"]


def _location(rng: np.random.Generator) -> dict:
    return {
        "lat": round(float(rng.uniform(-37, 51)), 6),
        "lng": round(float(rng.uniform(-122, 77)), 6),
        "address": {
            "street": f"{int(rng.integers(1, 2000))} Market St",
            "city": _CITIES[int(rng.integers(0, len(_CITIES)))],
            "zip": f"{int(rng.integers(10000, 99999))}",
            "gps": {
                "provider": "fused" if rng.uniform() < 0.8 else "gps",
                "accuracy_m": round(float(rng.uniform(1, 50)), 1),
            },
        },
    }


def generate_trips_rows(
    rows: int,
    num_cities: int = 200,
    seed: int = 23,
) -> list[tuple]:
    """Trips rows: (base struct, fare_usd, completed)."""
    rng = np.random.default_rng(seed)
    result = []
    for i in range(rows):
        status = _STATUSES[int(rng.choice(len(_STATUSES), p=[0.85, 0.09, 0.05, 0.01]))]
        fare_amount = round(float(rng.gamma(3.0, 7.0)), 2)
        base = {
            "driver_uuid": f"driver-{int(rng.integers(0, max(rows // 20, 1)))}",
            "client_uuid": f"client-{int(rng.integers(0, max(rows // 5, 1)))}",
            "city_id": int(rng.integers(1, num_cities + 1)),
            "vehicle_id": int(rng.integers(1, 100_000)),
            "status": status,
            "product": _PRODUCTS[int(rng.integers(0, len(_PRODUCTS)))],
            "fare": {
                "amount": fare_amount,
                "currency": "USD",
                "breakdown": {
                    "base_amount": round(fare_amount * 0.7, 2),
                    "surge": round(fare_amount * 0.2, 2),
                    "tolls": round(fare_amount * 0.05, 2),
                    "tip": round(fare_amount * 0.05, 2),
                },
            },
            "pickup": _location(rng),
            "dropoff": _location(rng),
            "rating": round(float(rng.uniform(1, 5)), 1) if rng.uniform() < 0.6 else None,
            "eta_seconds": int(rng.integers(30, 1200)),
            "distance_km": round(float(rng.gamma(2.0, 3.0)), 2),
            "duration_seconds": int(rng.integers(120, 5400)),
            "is_pool": bool(rng.uniform() < 0.2),
            "surge_multiplier": round(float(rng.choice([1.0, 1.0, 1.0, 1.2, 1.5, 2.1])), 1),
            "payment_method": _PAYMENTS[int(rng.integers(0, len(_PAYMENTS)))],
            "promo_code": f"PROMO{int(rng.integers(0, 50))}" if rng.uniform() < 0.1 else None,
            "tags": ["airport"] if rng.uniform() < 0.15 else [],
            "request_uuid": f"req-{i}",
            "session_uuid": f"sess-{int(rng.integers(0, max(rows // 3, 1)))}",
        }
        result.append((base, fare_amount, status == "completed"))
    return result


def load_trips_table(
    metastore: HiveMetastore,
    filesystem: FileSystem,
    dates: Sequence[str],
    rows_per_date: int = 1000,
    files_per_partition: int = 2,
    row_group_size: int = 1000,
    database: str = "rawdata",
    table: str = "schemaless_mezzanine_trips_rows",
    num_cities: int = 200,
    seed: int = 23,
) -> None:
    """Create and populate the trips table across partitions."""
    metastore.create_table(
        database, table, TRIPS_COLUMNS, partition_keys=TRIPS_PARTITION_KEYS
    )
    types = [t for _, t in TRIPS_COLUMNS]
    for index, date in enumerate(dates):
        rows = generate_trips_rows(rows_per_date, num_cities=num_cities, seed=seed + index)
        write_hive_partition(
            metastore,
            filesystem,
            database,
            table,
            [date],
            [Page.from_rows(types, rows)],
            files=files_per_partition,
            row_group_size=row_group_size,
        )
