"""Deterministic event stream for the streaming-lakehouse benchmarks.

Stands in for the paper's realtime feeds (section XI): an append-only
order-event topic with a handful of hot cities, skewed amounts, and
timestamps pacing out at a fixed event rate.  Generation is driven by
:func:`repro.common.hashing.stable_hash`, never ``random`` or builtin
``hash``, so the same parameters produce byte-identical streams in every
interpreter process — the property the determinism and differential
suites rely on.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.hashing import stable_hash
from repro.core.types import BIGINT, DOUBLE, PrestoType, VARCHAR

EVENT_FIELDS: list[tuple[str, PrestoType]] = [
    ("order_id", BIGINT),
    ("city", VARCHAR),
    ("amount", DOUBLE),
]

_CITIES = ["sf", "nyc", "la", "chi", "sea", "mia", "aus", "den"]


def event_stream(
    count: int,
    seed: int = 0,
    events_per_second: float = 200.0,
    start_ms: int = 0,
    start_id: int = 0,
) -> Iterator[tuple[tuple[int, str, float], int]]:
    """Yield ``(values, timestamp_ms)`` pairs for ``count`` events.

    City choice is Zipf-flavoured (earlier cities are hotter) and amounts
    spread over [1, 201) with two decimal places, both keyed off
    ``(seed, order_id)`` so distinct seeds give distinct streams.  Pass
    ``start_id`` to continue the same stream across multiple calls (the
    pacing benchmarks produce it in small ticks).
    """
    interval_ms = 1000.0 / events_per_second
    for position in range(count):
        order_id = start_id + position
        coin = stable_hash(f"evt:{seed}:{order_id}")
        # Squaring the unit draw skews mass toward index 0 (hot cities).
        unit = (coin % 10_000) / 10_000.0
        city = _CITIES[int(unit * unit * len(_CITIES))]
        amount = 1.0 + (stable_hash(f"amt:{seed}:{order_id}") % 20_000) / 100.0
        timestamp_ms = start_ms + int(position * interval_ms)
        yield (order_id, city, amount), timestamp_ms


def produce_events(
    lakehouse,
    count: int,
    seed: int = 0,
    events_per_second: float = 200.0,
    start_ms: int = 0,
    start_id: int = 0,
) -> int:
    """Feed ``count`` generated events into a :class:`StreamingLakehouse`.

    Returns the number of events produced.  Partition assignment is left
    to the broker's stable key-hash partitioner.
    """
    produced = 0
    for values, timestamp_ms in event_stream(
        count,
        seed=seed,
        events_per_second=events_per_second,
        start_ms=start_ms,
        start_id=start_id,
    ):
        lakehouse.produce(values, timestamp_ms=timestamp_ms)
        produced += 1
    return produced
