"""Synthetic geofences and trip points (section VI).

"For a real city, it is not uncommon to see its geofence composed of
hundreds or thousands of points."  Cities here are irregular polygons with
a configurable vertex count laid out on a grid, and trip points are drawn
so a controlled fraction lands inside some city.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.geo.geometry import Point, Polygon


def _irregular_polygon(
    center_x: float,
    center_y: float,
    mean_radius: float,
    vertices: int,
    rng: np.random.Generator,
) -> Polygon:
    """A closed, star-convex polygon with ``vertices`` distinct points."""
    angles = np.sort(rng.uniform(0, 2 * math.pi, vertices))
    radii = rng.uniform(0.6 * mean_radius, 1.4 * mean_radius, vertices)
    ring = [
        (center_x + float(r) * math.cos(float(a)), center_y + float(r) * math.sin(float(a)))
        for a, r in zip(angles, radii)
    ]
    ring.append(ring[0])
    return Polygon(ring)


def generate_cities(
    count: int,
    vertices_per_city: int = 300,
    city_radius: float = 0.5,
    grid_spacing: float = 2.0,
    seed: int = 31,
) -> list[tuple[int, Polygon]]:
    """(city_id, geofence) pairs laid out on a sparse grid.

    Grid spacing > 2×radius keeps cities disjoint, matching real geofences.
    """
    rng = np.random.default_rng(seed)
    side = math.ceil(math.sqrt(count))
    cities = []
    for city_id in range(1, count + 1):
        gx = (city_id - 1) % side
        gy = (city_id - 1) // side
        cities.append(
            (
                city_id,
                _irregular_polygon(
                    gx * grid_spacing,
                    gy * grid_spacing,
                    city_radius,
                    vertices_per_city,
                    rng,
                ),
            )
        )
    return cities


def generate_trip_points(
    count: int,
    cities: list[tuple[int, Polygon]],
    in_city_fraction: float = 0.7,
    seed: int = 37,
) -> list[Point]:
    """Trip destination points; ~``in_city_fraction`` land inside a city."""
    rng = np.random.default_rng(seed)
    points: list[Point] = []
    bounds = cities[0][1].bounding_box()
    for _, polygon in cities[1:]:
        bounds = bounds.union(polygon.bounding_box())
    while len(points) < count:
        if rng.uniform() < in_city_fraction:
            _, polygon = cities[int(rng.integers(0, len(cities)))]
            box = polygon.bounding_box()
            # Rejection-sample inside the city's bounding box.
            for _ in range(50):
                candidate = Point(
                    float(rng.uniform(box.min_x, box.max_x)),
                    float(rng.uniform(box.min_y, box.max_y)),
                )
                if polygon.contains_point(candidate):
                    points.append(candidate)
                    break
            else:
                points.append(Point(box.min_x, box.min_y))
        else:
            points.append(
                Point(
                    float(rng.uniform(bounds.min_x - 5, bounds.max_x + 5)),
                    float(rng.uniform(bounds.min_y - 5, bounds.max_y + 5)),
                )
            )
    return points
