"""Zipfian multi-user traffic storm for the concurrent serving layer.

Production interactive traffic (the paper's real-time analytics story,
and the Twitter serving-layer follow-up in PAPERS.md) is not a queue of
equal queries: arrivals are bursty, a few heavy users dominate (zipfian
skew), and everyone runs variations of the same dashboard templates.
This module generates that shape deterministically — a fixed seed always
produces the same users, arrival times, and SQL sequence — so the
concurrency benchmarks and differential tests replay identical storms.

All randomness flows through one ``numpy`` PCG64 generator; no global
RNG state is touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.workloads.tpch import LINEITEM_COLUMNS, generate_lineitem

# Dashboard-style templates over LINEITEM: the mix leans on aggregation
# (interactive analytics), with a couple of cheaper filters in between.
QUERY_TEMPLATES: list[tuple[str, str]] = [
    (
        "pricing_summary",
        "SELECT returnflag, linestatus, sum(quantity), avg(extendedprice), count(*) "
        "FROM lineitem GROUP BY returnflag, linestatus "
        "ORDER BY returnflag, linestatus",
    ),
    (
        "revenue_filter",
        "SELECT sum(extendedprice), avg(discount), count(*) "
        "FROM lineitem WHERE discount >= 0.03",
    ),
    (
        "mode_breakdown",
        "SELECT shipmode, count(*), sum(quantity) "
        "FROM lineitem GROUP BY shipmode ORDER BY shipmode",
    ),
    (
        "quick_count",
        "SELECT count(*) FROM lineitem WHERE quantity < 24",
    ),
]


@dataclass(frozen=True)
class StormQuery:
    """One arrival in the storm."""

    arrival_ms: float
    user: str
    template: str
    sql: str


@dataclass
class TrafficStorm:
    """A deterministic replayable burst of multi-user queries."""

    seed: int
    users: list[str]
    queries: list[StormQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def arrivals_by_user(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for query in self.queries:
            counts[query.user] = counts.get(query.user, 0) + 1
        return counts


def build_traffic_storm(
    queries: int = 1000,
    users: int = 20,
    seed: int = 11,
    mean_interarrival_ms: float = 5.0,
    zipf_s: float = 1.2,
) -> TrafficStorm:
    """Generate a storm: Poisson arrivals, zipfian users, template mix.

    ``zipf_s`` sets the user skew (P(rank r) ∝ r^-s): at the default,
    the top user submits roughly a third of all traffic, mirroring the
    few-dashboards-dominate pattern of production fleets.
    """
    if queries < 1 or users < 1:
        raise ValueError("queries and users must be positive")
    rng = np.random.Generator(np.random.PCG64(seed))
    ranks = np.arange(1, users + 1, dtype=np.float64)
    weights = ranks ** -zipf_s
    weights /= weights.sum()
    user_names = [f"user{index:02d}" for index in range(users)]
    storm = TrafficStorm(seed=seed, users=user_names)
    arrival = 0.0
    for _ in range(queries):
        arrival += float(rng.exponential(mean_interarrival_ms))
        user = user_names[int(rng.choice(users, p=weights))]
        name, sql = QUERY_TEMPLATES[int(rng.integers(len(QUERY_TEMPLATES)))]
        storm.queries.append(
            StormQuery(
                arrival_ms=round(arrival, 3), user=user, template=name, sql=sql
            )
        )
    return storm


@dataclass(frozen=True)
class KeyAccess:
    """One data-key read in a cache storm."""

    arrival_ms: float
    key: str
    size_bytes: int


@dataclass
class CacheStorm:
    """A deterministic key-access trace for the worker data cache."""

    seed: int
    accesses: list[KeyAccess] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.accesses)

    def unique_keys(self) -> int:
        return len({access.key for access in self.accesses})


def build_cache_storm(
    accesses: int = 5000,
    keys: int = 400,
    seed: int = 11,
    mean_interarrival_ms: float = 2.0,
    zipf_s: float = 1.1,
    scan_fraction: float = 0.2,
    mean_entry_bytes: int = 1 << 20,
) -> CacheStorm:
    """Generate a data-cache storm: zipfian row-group reads plus scans.

    The popular keys follow the same P(rank r) ∝ r^-s skew as the query
    storm — a few hot row groups dominate (dashboards re-reading the
    same partitions).  ``scan_fraction`` of accesses instead read a
    fresh never-repeated key, modeling large batch scans streaming cold
    data through the cache; these one-hit wonders are exactly what a
    TinyLFU admission filter exists to keep out.  Entry sizes are
    deterministic per key (hash-derived around ``mean_entry_bytes``), so
    a key always costs the same bytes.
    """
    if accesses < 1 or keys < 1:
        raise ValueError("accesses and keys must be positive")
    if not 0.0 <= scan_fraction < 1.0:
        raise ValueError("scan_fraction must be in [0, 1)")
    rng = np.random.Generator(np.random.PCG64(seed))
    ranks = np.arange(1, keys + 1, dtype=np.float64)
    weights = ranks ** -zipf_s
    weights /= weights.sum()
    storm = CacheStorm(seed=seed)
    arrival = 0.0
    scans = 0

    def size_of(key: str) -> int:
        # Deterministic per-key size in [0.5x, 1.5x] of the mean.
        from repro.common.hashing import stable_hash

        spread = (stable_hash(f"size:{key}") % 1024) / 1024.0  # [0, 1)
        return int(mean_entry_bytes * (0.5 + spread))

    for _ in range(accesses):
        arrival += float(rng.exponential(mean_interarrival_ms))
        if float(rng.random()) < scan_fraction:
            key = f"scan/part-{scans}"
            scans += 1
        else:
            key = f"warehouse/part-{int(rng.choice(keys, p=weights))}"
        storm.accesses.append(
            KeyAccess(
                arrival_ms=round(arrival, 3), key=key, size_bytes=size_of(key)
            )
        )
    return storm


def make_storm_engine(
    rows: int = 250, split_size: int = 31, data_seed: int = 7, **engine_kwargs
):
    """A fresh engine over a seeded LINEITEM table, for storm replays.

    Kept here (rather than in each benchmark) so the storm bench, the
    differential tests, and the CI trace-invariant check all run the
    exact same engine construction.
    """
    from repro.connectors.memory import MemoryConnector
    from repro.execution.engine import PrestoEngine
    from repro.planner.analyzer import Session

    connector = MemoryConnector(split_size=split_size)
    connector.create_table(
        "db", "lineitem", LINEITEM_COLUMNS, generate_lineitem(rows, seed=data_seed)
    )
    engine = PrestoEngine(session=Session(catalog="memory", schema="db"), **engine_kwargs)
    engine.register_connector("memory", connector)
    return engine
