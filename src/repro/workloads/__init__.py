"""Synthetic workload generators standing in for production data.

The paper evaluates on proprietary traffic (Uber trips tables, Twitter
Druid queries, TPC-H LINEITEM for the writer benchmark).  These generators
produce deterministic synthetic equivalents with the same shape: deep
nesting, realistic selectivities, the stated query mixes.
"""

from repro.workloads.tpch import generate_lineitem, LINEITEM_COLUMNS, writer_benchmark_datasets
from repro.workloads.trips import TRIPS_COLUMNS, generate_trips_rows, load_trips_table
from repro.workloads.geofences import generate_cities, generate_trip_points
from repro.workloads.druid_queries import DruidWorkload, build_druid_workload
from repro.workloads.traffic_storm import (
    StormQuery,
    TrafficStorm,
    build_traffic_storm,
    make_storm_engine,
)
from repro.workloads.streaming_events import (
    EVENT_FIELDS,
    event_stream,
    produce_events,
)

__all__ = [
    "StormQuery",
    "TrafficStorm",
    "build_traffic_storm",
    "make_storm_engine",
    "generate_lineitem",
    "LINEITEM_COLUMNS",
    "writer_benchmark_datasets",
    "TRIPS_COLUMNS",
    "generate_trips_rows",
    "load_trips_table",
    "generate_cities",
    "generate_trip_points",
    "DruidWorkload",
    "build_druid_workload",
    "EVENT_FIELDS",
    "event_stream",
    "produce_events",
]
